// Concurrent service front (tentpole layer 3 of the decomposed broker).
//
// Wraps a BandwidthBroker and runs independent per-flow requests
// concurrently: the admit fast path takes an immutable PathSnapshot from
// the LinkStateStore, tests it lock-free through the stateless
// AdmissionEngine, and commits the BookingDelta optimistically (validate
// per-link state_versions under ordered shard locks, retry on conflict).
// Requests on disjoint paths never contend on anything wider than their
// shard mutexes and the flow-table mutex; overlapping requests serialize
// through version conflicts, each retry observing the fresh state — the
// final MIB state is what SOME sequential ordering of the committed
// operations produces.
//
// Every request returns its own FrontOutcome (decision + diagnostics);
// nothing reads the wrapped broker's mutable last_outcome_ concurrently.
//
// Operations outside the per-flow fast path — class-based service,
// external link reservations, path provisioning, snapshots, preemption,
// widest-residual selection — delegate to the sequential broker under the
// exclusive mode of `big_`, so their single-writer assumptions still hold.
//
// Lock hierarchy (outer to inner): big_ (shared for the fast path,
// exclusive for delegation) -> flow_mu_ (flow table, ingress counts,
// audit log) -> shard mutexes (leaves; always through ShardLockSet in
// ascending shard order). The admit path never holds shard locks while
// acquiring flow_mu_.

#ifndef QOSBB_CORE_CONCURRENT_FRONT_H_
#define QOSBB_CORE_CONCURRENT_FRONT_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/admission_engine.h"
#include "core/broker.h"
#include "core/types.h"
#include "util/status.h"
#include "util/sync.h"

namespace qosbb {

/// Fixed-size worker pool running queued closures. Deliberately built on
/// plain std::mutex / std::condition_variable rather than the annotated
/// wrappers: condition_variable::wait takes std::unique_lock<std::mutex>,
/// and threading the annotated type through that libstdc++ template only
/// manufactures thread-safety-analysis false positives. The pool's locking
/// is self-contained in this class.
class WorkerPool {
 public:
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Queue `fn` for execution on some worker; the future carries its
  /// result (or exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> g(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Decision + diagnostics of one front request — the per-request
/// replacement for BandwidthBroker::last_outcome().
struct FrontOutcome {
  Result<Reservation> result = Status::rejected("unset");
  AdmissionOutcome outcome;
};

class ConcurrentBrokerFront {
 public:
  /// Wrap `bb`. The front assumes sole ownership of the broker's mutation
  /// for its lifetime: all access (including reads from other threads)
  /// must go through the front or be externally quiesced.
  ConcurrentBrokerFront(BandwidthBroker& bb, int threads);

  ConcurrentBrokerFront(const ConcurrentBrokerFront&) = delete;
  ConcurrentBrokerFront& operator=(const ConcurrentBrokerFront&) = delete;

  // ---- Per-flow service (callable from any thread) ----
  FrontOutcome request_service(const FlowServiceRequest& request,
                               Seconds now = 0.0);
  Status release_service(FlowId flow);
  FrontOutcome renegotiate_service(FlowId flow, Seconds new_delay_req,
                                   Seconds now = 0.0);

  /// Batched admission. Executes the batch with the semantics of
  /// one-at-a-time request_service calls in batch_grouped_order, but pays
  /// the per-path costs once per GROUP instead of once per request: one
  /// PathSnapshot capture, one shard-lock acquisition for the group's OCC
  /// validate/commit (LinkStateStore::try_commit_batch), and one flow-table
  /// mutex hold for the bookkeeping of every member. Members after the
  /// first are tested against a locally EVOLVED snapshot (LinkSnapshot::
  /// apply_booking), so their verdicts are bit-identical to what they would
  /// have seen live after the earlier members committed. If the group
  /// commit loses its OCC validation, only the conflicting residue falls
  /// back to the per-request retry loop. Outcomes are indexed by submission
  /// position.
  std::vector<FrontOutcome> submit_batch(
      std::span<const FlowServiceRequest> requests, Seconds now = 0.0);

  /// submit_batch dispatched onto the worker pool.
  std::future<std::vector<FrontOutcome>> submit_batch_request(
      std::vector<FlowServiceRequest> requests, Seconds now = 0.0) {
    return pool_.submit([this, requests = std::move(requests), now] {
      return submit_batch(requests, now);
    });
  }

  // ---- Same, dispatched onto the worker pool ----
  std::future<FrontOutcome> submit_request(FlowServiceRequest request,
                                           Seconds now = 0.0) {
    return pool_.submit(
        [this, request = std::move(request), now]() mutable {
          return request_service(request, now);
        });
  }
  std::future<Status> submit_release(FlowId flow) {
    return pool_.submit([this, flow] { return release_service(flow); });
  }
  std::future<FrontOutcome> submit_renegotiate(FlowId flow,
                                               Seconds new_delay_req,
                                               Seconds now = 0.0) {
    return pool_.submit([this, flow, new_delay_req, now] {
      return renegotiate_service(flow, new_delay_req, now);
    });
  }

  /// Run `fn(broker)` with the domain quiesced (exclusive big_ lock): class
  /// service, external link reservations, provisioning, snapshot/restore,
  /// policy edits — anything relying on the broker's sequential-control
  /// assumptions. Path caches are re-warmed afterwards in case `fn`
  /// provisioned new paths.
  template <typename F>
  auto exclusive(F&& fn) -> std::invoke_result_t<F&, BandwidthBroker&> {
    using R = std::invoke_result_t<F&, BandwidthBroker&>;
    ExclusiveLock guard(big_);
    if constexpr (std::is_void_v<R>) {
      fn(bb_);
      warm_path_caches();
    } else {
      R out = fn(bb_);
      warm_path_caches();
      return out;
    }
  }

  BandwidthBroker& broker() { return bb_; }
  int threads() const { return pool_.size(); }
  WorkerPool& pool() { return pool_; }

  /// Optimistic-commit conflicts observed (each one is a retried admit —
  /// evidence of genuine concurrency on overlapping paths, and of its
  /// absence on disjoint ones).
  std::uint64_t occ_conflicts() const { return occ_conflicts_.load(); }

  /// Counters of the lock-free admission pre-filter (relaxed-atomic
  /// utilization mirrors on each link). The pre-filter is a verified hint:
  /// its prediction never replaces the full §3.1/§3.2 test — the engine
  /// verdict is always computed and always wins. `checked` counts requests
  /// where the pre-filter committed to a verdict (fast-accept or
  /// fast-reject), `agreed` how many of those matched the authoritative
  /// test. Against quiescent state (every prior operation fully committed,
  /// as in the barrier-sequentialized fuzz harness) the mirrors equal the
  /// locked state bit-for-bit and the pre-filter replicates the admission
  /// comparisons exactly, so agreed == checked is an invariant there; under
  /// live concurrency the mirrors may lag and a disagreement just means the
  /// hint was stale.
  struct PrefilterStats {
    std::uint64_t checked = 0;
    std::uint64_t predicted_admit = 0;
    std::uint64_t predicted_reject = 0;
    std::uint64_t agreed = 0;
  };
  PrefilterStats prefilter_stats() const {
    return {prefilter_checked_.load(), prefilter_predicted_admit_.load(),
            prefilter_predicted_reject_.load(), prefilter_agreed_.load()};
  }

 private:
  /// The optimistic admit fast path, under shared big_. Returns false when
  /// the pair has no provisioned path yet (caller escalates to exclusive).
  bool try_request_fast(const FlowServiceRequest& request, Seconds now,
                        FrontOutcome* out);
  FrontOutcome request_exclusive(const FlowServiceRequest& request,
                                 Seconds now);
  /// Resolve every provisioned path's link-pointer cache so the concurrent
  /// fast path only ever reads it. Caller holds big_ exclusively.
  void warm_path_caches() REQUIRES(big_);
  /// Minimal live residual over `links` — caller must hold the covering
  /// shard locks.
  static BitsPerSecond residual_over(
      const std::vector<const LinkQosState*>& links);
  /// The single-snapshot group path of submit_batch: all of `members` share
  /// one (ingress, egress) pair. Returns false when the group shape is not
  /// handled (no / multiple provisioned candidates) and the caller should
  /// fall back to per-member request_service in grouped order.
  bool try_group_fast(std::span<const std::size_t> members,
                      std::span<const FlowServiceRequest> requests,
                      Seconds now, std::vector<FrontOutcome>* outs);
  /// Record one committed pre-filter prediction against the authoritative
  /// verdict.
  void record_prefilter(bool predicted_admit, bool actual_admit) {
    prefilter_checked_.fetch_add(1, std::memory_order_relaxed);
    (predicted_admit ? prefilter_predicted_admit_ : prefilter_predicted_reject_)
        .fetch_add(1, std::memory_order_relaxed);
    if (predicted_admit == actual_admit) {
      prefilter_agreed_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  BandwidthBroker& bb_;
  /// Fast-path eligibility, fixed by the wrapped broker's options: min-hop
  /// selection without preemption. Anything else falls back to exclusive
  /// delegation (trivially serialization-equivalent).
  const bool fast_eligible_;
  SharedMutex big_;
  /// Protects the flow table, ingress counts, and audit log of the wrapped
  /// broker during fast-path operation.
  Mutex flow_mu_ ACQUIRED_AFTER(big_);
  std::atomic<std::uint64_t> occ_conflicts_{0};
  std::atomic<std::uint64_t> prefilter_checked_{0};
  std::atomic<std::uint64_t> prefilter_predicted_admit_{0};
  std::atomic<std::uint64_t> prefilter_predicted_reject_{0};
  std::atomic<std::uint64_t> prefilter_agreed_{0};
  WorkerPool pool_;
};

}  // namespace qosbb

#endif  // QOSBB_CORE_CONCURRENT_FRONT_H_
