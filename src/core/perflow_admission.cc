#include "core/perflow_admission.h"

#include "core/admission_core.h"

// The algorithm bodies live in core/admission_core.h as templates over the
// view/link representation; this translation unit instantiates them for the
// live-MIB PathView (the sequential broker's zero-copy fast path). The
// AdmissionEngine instantiates the SAME templates for immutable
// PathSnapshots, which is what makes the two paths bit-identical.

namespace qosbb {

AdmissionOutcome admit_rate_only(const PathView& view,
                                 const TrafficProfile& profile,
                                 Seconds d_req) {
  return admission_impl::admit_rate_only_impl(view, profile, d_req);
}

AdmissionOutcome admit_mixed(const PathView& view,
                             const TrafficProfile& profile, Seconds d_req,
                             AdmissionScratch* scratch) {
  return admission_impl::admit_mixed_impl(view, profile, d_req, scratch);
}

AdmissionOutcome admit_per_flow(const PathView& view,
                                const TrafficProfile& profile, Seconds d_req,
                                AdmissionScratch* scratch) {
  return admission_impl::admit_per_flow_impl(view, profile, d_req, scratch);
}

}  // namespace qosbb
