// Path-oriented admission control for per-flow guaranteed services
// (Section 3).
//
// Unlike hop-by-hop (RSVP-style) admission, these algorithms examine the
// resource constraints of the ENTIRE path simultaneously against the BB's
// path/node MIBs, and return the MINIMAL feasible reserved rate:
//
//  * admit_rate_only (§3.1) — rate-based-only paths. O(1) given the path
//    parameters D_tot^P and C_res^P: feasible range
//    R*_fea = [max{ρ, r_min}, min{P, C_res}] with
//    r_min = [T_on·P + (h+1)·L] / [D_req − D_tot + T_on].
//
//  * admit_mixed (§3.2, Figure 4) — mixed rate/delay-based paths. Scans the
//    distinct delay values d^1 < ... < d^M of flows at the path's
//    delay-based (VT-EDF) schedulers from the right-most candidate interval
//    leftwards, intersecting the end-to-end-feasibility rate range R_fea^m
//    (eq. 10) with the schedulability rate range R_del^m (eq. 11). The
//    monotonicity of the two ranges (Theorem 1) lets the scan stop early
//    and guarantees the returned rate is globally minimal. We derive
//    R_del^m from the exact VT-EDF constraints (eq. 8 plus the new flow's
//    own-deadline knot) per delay-based hop, and re-validate the final
//    ⟨r, d⟩ against eq. (5) exactly — defense in depth.

#ifndef QOSBB_CORE_PERFLOW_ADMISSION_H_
#define QOSBB_CORE_PERFLOW_ADMISSION_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/node_mib.h"
#include "core/path_mib.h"
#include "core/types.h"

namespace qosbb {

/// The outcome of an admissibility test. No MIB state is modified by the
/// test itself; bookkeeping is the broker's second phase (Section 2.2).
struct AdmissionOutcome {
  bool admitted = false;
  RejectReason reason = RejectReason::kNone;
  RateDelayPair params;     ///< minimal-rate reservation when admitted
  Seconds e2e_bound = 0.0;  ///< resulting end-to-end delay bound (eq. 4)
  int intervals_scanned = 0;  ///< Figure-4 loop iterations (diagnostics)
  std::string detail;
};

/// Read-only view of one path's QoS state, assembled by the broker from the
/// path and node MIBs at test time. The spans alias the path MIB's cached
/// link-pointer arrays — assembling a view allocates nothing and copies two
/// pointers per span.
struct PathView {
  const PathRecord* record = nullptr;
  BitsPerSecond c_res = 0.0;  ///< C_res^P
  /// The path's delay-based links, in path order (empty on rate-only paths).
  std::span<const LinkQosState* const> edf_links;
  /// ALL links of the path in hop order (aligned with record->abstract.hops);
  /// used for the per-hop buffer feasibility check.
  std::span<const LinkQosState* const> links;
};

/// Reusable scratch buffers for the §3.2 Figure-4 scan (the merged global
/// knot array d^1..d^M with its S^k values, and the per-link merge
/// cursors). Owned by the caller — the broker keeps one per instance — so
/// the steady-state admission test performs no heap allocation.
///
/// merge_knots publishes the merged arrays through the `knots`/`s_vals`
/// SPANS: with a single delay-based hop they alias the link's own KnotArray
/// columns directly (zero copies), otherwise they alias the owned merge
/// buffers below. The spans stay valid until the next merge or the next
/// mutation of the underlying link cache.
struct AdmissionScratch {
  std::span<const Seconds> knots;
  std::span<const double> s_vals;
  std::vector<Seconds> knots_buf;
  std::vector<double> s_buf;
  /// Per-link merge cursor over a cached knot array (index into the
  /// struct-of-arrays columns) during the k-way merge.
  struct KnotCursor {
    const KnotArray* ka = nullptr;
    std::size_t i = 0;
  };
  std::vector<KnotCursor> heads;
};

/// §3.1 test. Requires a path with no delay-based hops.
AdmissionOutcome admit_rate_only(const PathView& view,
                                 const TrafficProfile& profile,
                                 Seconds d_req);

/// §3.2 Figure-4 test. Requires at least one delay-based hop. `scratch`
/// buffers are reused across calls when provided (nullptr falls back to
/// function-local buffers).
AdmissionOutcome admit_mixed(const PathView& view,
                             const TrafficProfile& profile, Seconds d_req,
                             AdmissionScratch* scratch = nullptr);

/// Dispatcher: picks the §3.1 or §3.2 test by path composition.
AdmissionOutcome admit_per_flow(const PathView& view,
                                const TrafficProfile& profile, Seconds d_req,
                                AdmissionScratch* scratch = nullptr);

}  // namespace qosbb

#endif  // QOSBB_CORE_PERFLOW_ADMISSION_H_
