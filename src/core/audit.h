// Admission audit log.
//
// Operators of a production bandwidth broker need to answer "why was this
// flow rejected at 14:02?" without re-running the request. The broker
// records every decision — admitted or not — into a bounded ring with the
// inputs, the outcome, and the MIB headroom at decision time.

#ifndef QOSBB_CORE_AUDIT_H_
#define QOSBB_CORE_AUDIT_H_

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>

#include "core/types.h"

namespace qosbb {

enum class AuditKind : std::uint8_t {
  kPerFlowRequest,
  kPerFlowRelease,
  kMicroflowJoin,
  kMicroflowLeave,
};

const char* audit_kind_name(AuditKind k);

struct AuditEntry {
  Seconds time = 0.0;
  AuditKind kind = AuditKind::kPerFlowRequest;
  bool admitted = false;
  RejectReason reason = RejectReason::kNone;
  FlowId flow = kInvalidFlowId;   ///< granted id (or microflow id)
  PathId path = kInvalidPathId;
  std::string ingress;
  std::string egress;
  BitsPerSecond requested_rho = 0.0;
  Seconds requested_delay = 0.0;      ///< D^req (0 for releases)
  BitsPerSecond granted_rate = 0.0;   ///< r (0 on reject/release)
  Seconds granted_delay = 0.0;        ///< d
  BitsPerSecond path_residual = 0.0;  ///< C_res^P at decision time
  std::string detail;
};

class AuditLog {
 public:
  explicit AuditLog(std::size_t capacity = 4096);

  void record(AuditEntry entry);

  std::size_t size() const { return entries_.size(); }
  std::uint64_t total_recorded() const { return total_; }
  const std::deque<AuditEntry>& entries() const { return entries_; }
  const AuditEntry& last() const;

  /// Count of recorded rejections with the given reason.
  std::uint64_t rejections(RejectReason reason) const;

  /// CSV: time,kind,admitted,reason,flow,path,ingress,egress,rho,
  ///      delay_req,rate,delay,residual,detail
  void dump_csv(std::ostream& os) const;
  void clear();

 private:
  std::size_t capacity_;
  std::deque<AuditEntry> entries_;
  std::uint64_t total_ = 0;
};

}  // namespace qosbb

#endif  // QOSBB_CORE_AUDIT_H_
