// Two-level (hierarchical) bandwidth broker architecture.
//
// The paper manages a domain with ONE centralized BB and names a
// distributed/hierarchical organization as explicit future work (footnote 2,
// Section 6: "a distributed or hierarchical architecture consisting of
// multiple BBs can be employed to improve reliability and scalability").
// This module implements the natural two-level design the paper sketches:
//
//   * a CentralBroker owns the authoritative domain MIBs (it embeds the
//     full BandwidthBroker);
//   * per-ingress EdgeBrokers admit per-flow requests LOCALLY against
//     bandwidth quotas leased from the central broker path by path,
//     contacting the center only when the local quota runs dry (lease) or
//     accumulates excess (restore, with hysteresis).
//
// The admission arithmetic at an edge broker is exactly the Section-3.1
// path-oriented test — it needs only the path's static parameters
// (h, D_tot^P) plus the locally leased bandwidth, so an edge decision costs
// no central interaction at all in the common case. Requests the edge
// cannot decide locally (paths with delay-based hops, whose VT-EDF knot
// state is inherently global) are proxied to the center.
//
// The price of decentralization is quota fragmentation: bandwidth parked at
// one edge is invisible to the others, so a hierarchical domain may block a
// flow a centralized BB would admit. bench_hierarchical quantifies both the
// central-contact reduction and this utilization loss.

#ifndef QOSBB_CORE_HIERARCHICAL_H_
#define QOSBB_CORE_HIERARCHICAL_H_

#include <map>
#include <string>
#include <unordered_map>

#include "core/broker.h"

namespace qosbb {

/// The authoritative broker plus the quota ledger.
class CentralBroker {
 public:
  explicit CentralBroker(const DomainSpec& spec, BrokerOptions options = {});

  CentralBroker(const CentralBroker&) = delete;
  CentralBroker& operator=(const CentralBroker&) = delete;

  /// The underlying domain broker (authoritative MIBs; also serves
  /// requests the edges proxy up).
  BandwidthBroker& domain() { return bb_; }
  const BandwidthBroker& domain() const { return bb_; }

  /// Lease up to `amount` b/s on `path` to edge broker `edge`. Returns the
  /// granted amount — `amount` when the path has that much residual, else
  /// whatever is left (possibly 0). Leased bandwidth is reserved on every
  /// link of the path in the central node MIB.
  BitsPerSecond lease(const std::string& edge, PathId path,
                      BitsPerSecond amount);
  /// Return previously leased bandwidth.
  void restore(const std::string& edge, PathId path, BitsPerSecond amount);

  BitsPerSecond leased_to(const std::string& edge, PathId path) const;
  BitsPerSecond total_leased() const;
  std::uint64_t ledger_calls() const { return ledger_calls_; }

 private:
  BandwidthBroker bb_;
  std::map<std::pair<std::string, PathId>, BitsPerSecond> ledger_;
  std::uint64_t ledger_calls_ = 0;
};

/// A per-ingress admission front end holding leased quotas.
class EdgeBroker {
 public:
  /// `chunk`: lease granularity (b/s). Larger chunks mean fewer central
  /// contacts but coarser fragmentation.
  EdgeBroker(std::string name, CentralBroker& central, BitsPerSecond chunk);

  EdgeBroker(const EdgeBroker&) = delete;
  EdgeBroker& operator=(const EdgeBroker&) = delete;

  /// Per-flow admission. Rate-based-only paths are decided locally against
  /// the leased quota (leasing more on demand); mixed paths are proxied to
  /// the central broker.
  Result<Reservation> request_service(const FlowServiceRequest& request);
  Status release_service(FlowId flow);

  const std::string& name() const { return name_; }
  /// Requests decided purely from local state (no central interaction).
  std::uint64_t local_decisions() const { return local_decisions_; }
  /// Central interactions: leases, restores, and proxied requests.
  std::uint64_t central_contacts() const { return central_contacts_; }
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t rejected() const { return rejected_; }
  BitsPerSecond quota_held(PathId path) const;
  BitsPerSecond quota_used(PathId path) const;

 private:
  struct PathQuota {
    BitsPerSecond leased = 0.0;
    BitsPerSecond used = 0.0;
  };
  struct LocalFlow {
    PathId path = kInvalidPathId;
    BitsPerSecond rate = 0.0;
    bool proxied = false;  // lives in the central broker instead
    FlowId central_flow = kInvalidFlowId;  // set when proxied
  };

  /// Shrink the held quota when it exceeds used + 2 chunks (hysteresis).
  void maybe_restore(PathId path);

  std::string name_;
  CentralBroker& central_;
  BitsPerSecond chunk_;
  std::unordered_map<PathId, PathQuota> quotas_;
  std::unordered_map<FlowId, LocalFlow> flows_;
  FlowId next_local_id_ = 1;
  std::uint64_t local_decisions_ = 0;
  std::uint64_t central_contacts_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace qosbb

#endif  // QOSBB_CORE_HIERARCHICAL_H_
