#include "core/link_store.h"

#include <algorithm>
#include <limits>

#include "util/status.h"

namespace qosbb {

void LinkStateStore::snapshot_path_locked(
    const PathRecord& rec, std::span<const LinkQosState* const> links,
    PathSnapshot* out) {
  QOSBB_REQUIRE(out != nullptr, "snapshot_path: null output");
  QOSBB_REQUIRE(links.size() == rec.link_names.size(),
                "snapshot_path: link list does not match path");
  out->clear();
  out->record = &rec;
  out->storage.resize(links.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    out->storage[i].capture(*links[i]);
  }
  // Pointer arrays only after storage stopped reallocating.
  out->links.reserve(links.size());
  BitsPerSecond res = std::numeric_limits<BitsPerSecond>::infinity();
  for (const LinkSnapshot& s : out->storage) {
    out->links.push_back(&s);
    if (s.delay_based()) out->edf_links.push_back(&s);
    res = std::min(res, s.residual());
  }
  out->c_res = res;
}

bool LinkStateStore::try_commit(const BookingDelta& delta) {
  ShardLockSet guard(*this, delta);
  for (const LinkBooking& b : delta.items) {
    if (b.link->state_version() != b.expected_version) return false;
  }
  apply(delta);
  return true;
}

bool LinkStateStore::try_commit_batch(
    std::span<const BookingDelta* const> deltas) {
  ShardLockSet guard(*this, deltas);
  // Whole-group validation against the base versions: every member's
  // expected_version comes from the one group snapshot, so a link touched
  // by several members compares against the same base each time — one
  // unchanged live version proves the premise for all of them.
  for (const BookingDelta* delta : deltas) {
    for (const LinkBooking& b : delta->items) {
      if (b.link->state_version() != b.expected_version) return false;
    }
  }
  // Apply in member order — the exact mutation sequence one-at-a-time
  // execution in grouped order would have produced.
  for (const BookingDelta* delta : deltas) apply(*delta);
  return true;
}

void LinkStateStore::apply(const BookingDelta& delta) {
  for (const LinkBooking& b : delta.items) {
    // The node MIB keys links const through the path caches; bookkeeping is
    // the one mutating consumer (same idiom the monolithic broker used).
    auto& link = const_cast<LinkQosState&>(*b.link);
    const Status rate_ok = link.reserve(b.rate);
    QOSBB_REQUIRE(rate_ok.is_ok(), "bookkeeping raced admissibility: rate");
    link.note_flow_added();
    const Status buf_ok = link.reserve_buffer(b.buffer);
    QOSBB_REQUIRE(buf_ok.is_ok(), "bookkeeping raced admissibility: buffer");
    if (b.edf) link.add_edf_entry(b.rate, b.delay, b.l_max);
  }
}

void LinkStateStore::revert(const BookingDelta& delta) {
  for (const LinkBooking& b : delta.items) {
    auto& link = const_cast<LinkQosState&>(*b.link);
    link.release(b.rate);
    link.note_flow_removed();
    link.release_buffer(b.buffer);
    if (b.edf) link.remove_edf_entry(b.rate, b.delay, b.l_max);
  }
}

}  // namespace qosbb
