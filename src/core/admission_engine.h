// Stateless admission engine (tentpole layer 2 of the decomposed broker).
//
// The engine owns the §3.1/§3.2 (Figure-4) admissibility algorithms and the
// translation of an admitted ⟨r, d⟩ into per-link bookkeeping, but holds NO
// link state and takes NO locks. It computes over either
//
//   * a live PathView (the sequential broker's zero-copy fast path), or
//   * an immutable PathSnapshot captured from the LinkStateStore — the
//     concurrent front's optimistic-concurrency protocol: snapshot under
//     brief shard locks, test lock-free on the snapshot, then commit the
//     BookingDelta under ordered shard locks after validating that every
//     link's state_version still matches the snapshot.
//
// Both paths instantiate the SAME templates (core/admission_core.h), so a
// snapshot test returns the bit-identical verdict the live test would have
// returned against the same state.

#ifndef QOSBB_CORE_ADMISSION_ENGINE_H_
#define QOSBB_CORE_ADMISSION_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/node_mib.h"
#include "core/path_mib.h"
#include "core/perflow_admission.h"
#include "core/types.h"
#include "traffic/profile.h"

namespace qosbb {

/// Immutable copy of one link's admission-relevant state. The knot array is
/// SHARED with the live link (shared_ptr to the copy-on-write buffer the
/// link publishes), so capturing a snapshot copies a handful of doubles and
/// one pointer — no per-knot work. Exposes the same read API the admission
/// templates use on LinkQosState, evaluating the same expressions over the
/// copied values.
class LinkSnapshot {
 public:
  LinkSnapshot() = default;

  /// Capture `link`'s current state. In concurrent mode the caller must
  /// hold the link's shard lock (knots_shared() may rebuild the cache).
  void capture(const LinkQosState& link) {
    live_ = &link;
    version_ = link.state_version();
    capacity_ = link.capacity();
    reserved_ = link.reserved();
    buffer_capacity_ = link.buffer_capacity();
    buffer_reserved_ = link.buffer_reserved();
    error_term_ = link.error_term();
    delay_based_ = link.delay_based();
    knots_ = link.knots_shared();
    owned_knots_.reset();
  }

  /// The live link this snapshot was taken from (commit target).
  const LinkQosState* live() const { return live_; }
  /// state_version() at capture time (commit-time validation token).
  std::uint64_t version() const { return version_; }

  // --- Read API mirroring LinkQosState (what the admission templates and
  // delta construction consume). ---
  BitsPerSecond capacity() const { return capacity_; }
  BitsPerSecond reserved() const { return reserved_; }
  BitsPerSecond residual() const { return capacity_ - reserved_; }
  Bits buffer_residual() const { return buffer_capacity_ - buffer_reserved_; }
  Seconds error_term() const { return error_term_; }
  bool delay_based() const { return delay_based_; }
  const KnotArray& knot_prefixes() const {
    return owned_knots_ ? *owned_knots_ : *knots_;
  }
  bool edf_schedulable_with(BitsPerSecond r, Seconds d, Bits l_max) const {
    return edf_schedulable_over(knot_prefixes(), capacity_, r, d, l_max);
  }

  /// Evolve the snapshot by one committed booking WITHOUT touching the live
  /// link — the batch path's way of testing member k+1 against the state
  /// member k will create. Mirrors the live mutators exactly: the rate and
  /// buffer adds are the same double operations, and an EDF insert updates
  /// a lazily-owned copy of the knot array through the same per-bucket sums
  /// and the same full prefix re-walk as rebuild_knot_cache, so the evolved
  /// snapshot is bit-identical to the post-commit live state. version()
  /// intentionally stays at the CAPTURE value: commit-time validation
  /// checks the whole batch against the base versions.
  void apply_booking(BitsPerSecond rate, Bits buffer, bool edf, Seconds delay,
                     Bits l_max) {
    reserved_ += rate;
    buffer_reserved_ += buffer;
    if (edf) {
      if (!owned_knots_) {
        owned_knots_ = std::make_unique<KnotArray>(*knots_);
      }
      owned_knots_->insert_entry(capacity_, rate, delay, l_max);
    }
  }

  /// Drop the shared knot array (lets the live link reuse its spare
  /// buffer once no snapshot references it).
  void reset() {
    live_ = nullptr;
    knots_.reset();
    owned_knots_.reset();
  }

 private:
  const LinkQosState* live_ = nullptr;
  std::uint64_t version_ = 0;
  BitsPerSecond capacity_ = 0.0;
  BitsPerSecond reserved_ = 0.0;
  Bits buffer_capacity_ = 0.0;
  Bits buffer_reserved_ = 0.0;
  Seconds error_term_ = 0.0;
  bool delay_based_ = false;
  std::shared_ptr<const KnotArray> knots_;
  /// Batch evolution only: copy-on-write private knot array, created on the
  /// first EDF booking applied to this snapshot (apply_booking).
  std::unique_ptr<KnotArray> owned_knots_;
};

/// Immutable per-request view of one path: the path record, C_res^P, and a
/// LinkSnapshot per hop. Reusable — the concurrent front keeps one per
/// thread and clear()s it between requests so the steady state allocates
/// nothing once the vectors reach path length.
struct PathSnapshot {
  const PathRecord* record = nullptr;
  BitsPerSecond c_res = 0.0;  ///< C_res^P over the snapshot, hop order
  std::vector<LinkSnapshot> storage;          ///< one per hop, hop order
  std::vector<const LinkSnapshot*> links;     ///< aliases storage
  std::vector<const LinkSnapshot*> edf_links; ///< delay-based subset

  void clear() {
    record = nullptr;
    c_res = 0.0;
    for (LinkSnapshot& s : storage) s.reset();
    storage.clear();
    links.clear();
    edf_links.clear();
  }
};

/// One link's share of an admitted reservation: exactly what the broker's
/// bookkeeping phase writes (rate, buffer bound, EDF entry), plus the
/// commit-time validation token.
struct LinkBooking {
  const LinkQosState* link = nullptr;
  std::uint64_t expected_version = 0;  ///< state_version at test time
  BitsPerSecond rate = 0.0;
  Bits buffer = 0.0;     ///< per-hop backlog bound for ⟨rate, delay⟩
  bool edf = false;      ///< install ⟨rate, delay, l_max⟩ on this link
  Seconds delay = 0.0;
  Bits l_max = 0.0;
};

/// The full bookkeeping delta of one reservation — the engine's output in
/// place of mutating MIBs itself. Applied (or reverted) atomically by the
/// LinkStateStore.
struct BookingDelta {
  std::vector<LinkBooking> items;
  void clear() { items.clear(); }
};

/// The stateless engine. All methods are static and side-effect-free on
/// shared state; every input arrives as an argument.
class AdmissionEngine {
 public:
  /// Admissibility test over the live MIB (sequential fast path).
  static AdmissionOutcome test(const PathView& view,
                               const TrafficProfile& profile, Seconds d_req,
                               AdmissionScratch* scratch = nullptr);

  /// Admissibility test over an immutable snapshot (lock-free OCC phase).
  /// Bit-identical to the live test against the same state.
  static AdmissionOutcome test(const PathSnapshot& snap,
                               const TrafficProfile& profile, Seconds d_req,
                               AdmissionScratch* scratch = nullptr);

  /// Translate an admitted ⟨r, d⟩ into the per-link bookkeeping delta, from
  /// a snapshot (expected versions = snapshot versions). `out` is reused.
  static void make_delta(const PathSnapshot& snap, const RateDelayPair& params,
                         const TrafficProfile& profile, BookingDelta* out);

  /// Same, from the live links (expected versions = current versions; used
  /// by the sequential broker where no concurrent validation is needed).
  static void make_delta(const PathRecord& rec,
                         std::span<const LinkQosState* const> live_links,
                         const RateDelayPair& params,
                         const TrafficProfile& profile, BookingDelta* out);
};

}  // namespace qosbb

#endif  // QOSBB_CORE_ADMISSION_ENGINE_H_
