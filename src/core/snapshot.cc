// Broker state checkpoint / recovery (declared in broker.h).
//
// Footnote 2 of the paper argues that moving QoS control out of the routers
// lets reliability be solved in the control plane alone; this file is that
// argument made concrete: the broker's entire QoS state serializes into one
// frame, and a replacement broker rebuilds every MIB from it — core routers
// notice nothing, because they never held any of this state.
//
// Frame layout (wire.h primitives, kBrokerSnapshot envelope):
//   u32 path_count      { str... nodes }            per provisioned path
//   u32 perflow_count   { flow fields }             per per-flow record
//   u32 class_count     { class fields }            per service class
//   u32 macroflow_count { state + members }         per settled macroflow
//   u32 external_count  { str link, f64 amount }    out-of-band reservations
// Snapshot requires quiescence (no live contingency grants; kUnavailable
// otherwise): transients reference wall-clock timers that cannot be
// checkpointed consistently. Before returning, the frame is verified by a
// scratch restore — link state the records cannot explain (e.g. leases
// booked directly on the node MIB) fails loudly with kFailedPrecondition
// instead of silently emitting a partial snapshot.

#include <algorithm>
#include <cmath>

#include "core/broker.h"
#include "core/wire.h"

namespace qosbb {
namespace {

void put_profile(WireWriter& w, const TrafficProfile& p) {
  w.f64(p.sigma);
  w.f64(p.rho);
  w.f64(p.peak);
  w.f64(p.l_max);
}

Result<TrafficProfile> get_profile(WireReader& r) {
  auto sigma = r.f64();
  auto rho = r.f64();
  auto peak = r.f64();
  auto l_max = r.f64();
  for (const Status& s : {sigma.status(), rho.status(), peak.status(),
                          l_max.status()}) {
    if (!s.is_ok()) return s;
  }
  if (!(l_max.value() > 0.0) || sigma.value() < l_max.value() ||
      !(rho.value() > 0.0) || peak.value() < rho.value()) {
    return Status::invalid_argument("snapshot: corrupt traffic profile");
  }
  return TrafficProfile::make(sigma.value(), rho.value(), peak.value(),
                              l_max.value());
}

void put_nodes(WireWriter& w, const std::vector<std::string>& nodes) {
  w.u32(static_cast<std::uint32_t>(nodes.size()));
  for (const auto& n : nodes) w.str(n);
}

Result<std::vector<std::string>> get_nodes(WireReader& r) {
  auto count = r.u32();
  if (!count.is_ok()) return count.status();
  if (count.value() > 4096) {
    return Status::invalid_argument("snapshot: absurd node count");
  }
  std::vector<std::string> nodes;
  nodes.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto n = r.str();
    if (!n.is_ok()) return n.status();
    nodes.push_back(n.value());
  }
  return nodes;
}

}  // namespace

Result<std::vector<std::uint8_t>> BandwidthBroker::snapshot() const {
  if (classes_.active_grants() != 0) {
    // kUnavailable, not kFailedPrecondition: the condition is transient —
    // the caller should settle/expire the grants and retry, nothing about
    // the request itself is wrong.
    return Status::unavailable(
        "snapshot requires a quiescent broker (active contingency grants); "
        "retry after the grants settle");
  }
  WireWriter w;
  // Paths (by id order; ids are dense).
  w.u32(static_cast<std::uint32_t>(paths_.path_count()));
  for (PathId id = 0; id < static_cast<PathId>(paths_.path_count()); ++id) {
    put_nodes(w, paths_.record(id).nodes);
  }
  // Per-flow reservations (sorted by id for determinism).
  std::vector<const FlowRecord*> per_flow;
  std::vector<const FlowRecord*> micro;
  for (const auto& [id, rec] : flows_.all()) {
    (rec.kind == FlowKind::kPerFlow ? per_flow : micro).push_back(&rec);
  }
  auto by_id = [](const FlowRecord* a, const FlowRecord* b) {
    return a->id < b->id;
  };
  std::sort(per_flow.begin(), per_flow.end(), by_id);
  std::sort(micro.begin(), micro.end(), by_id);
  w.u32(static_cast<std::uint32_t>(per_flow.size()));
  for (const FlowRecord* rec : per_flow) {
    w.i64(rec->id);
    put_profile(w, rec->profile);
    w.f64(rec->e2e_delay_req);
    w.i64(rec->path);
    w.f64(rec->reservation.rate);
    w.f64(rec->reservation.delay);
    w.f64(rec->admitted_at);
    w.i64(rec->priority);
  }
  // Service classes.
  w.u32(static_cast<std::uint32_t>(classes_.all_classes().size()));
  for (const auto& [id, cls] : classes_.all_classes()) {
    w.i64(cls.id);
    w.f64(cls.e2e_delay);
    w.f64(cls.delay_param);
    w.str(cls.name);
  }
  // Macroflows with their member microflows.
  w.u32(static_cast<std::uint32_t>(classes_.all_macroflows().size()));
  for (const auto& [id, mf] : classes_.all_macroflows()) {
    w.i64(mf.id);
    w.i64(mf.service_class);
    w.i64(mf.path);
    put_profile(w, mf.aggregate);
    w.f64(mf.base_rate);
    w.f64(mf.core_bound_in_effect);
    std::vector<const FlowRecord*> members;
    for (const FlowRecord* rec : micro) {
      if (rec->service_class == mf.service_class && rec->path == mf.path) {
        members.push_back(rec);
      }
    }
    w.u32(static_cast<std::uint32_t>(members.size()));
    for (const FlowRecord* rec : members) {
      w.i64(rec->id);
      put_profile(w, rec->profile);
      w.f64(rec->reservation.rate);
      w.f64(rec->admitted_at);
    }
  }

  // Out-of-band link reservations (reserve_link_external).
  w.u32(static_cast<std::uint32_t>(external_.size()));
  for (const auto& [link, amount] : external_) {
    w.str(link);
    w.f64(amount);
  }

  WireWriter head;
  head.u16(kWireMagic);
  head.u8(kWireVersion);
  head.u8(static_cast<std::uint8_t>(MessageType::kBrokerSnapshot));
  head.u32(static_cast<std::uint32_t>(w.buffer().size()));
  WireBuffer out = head.take();
  const WireBuffer& body = w.buffer();
  out.insert(out.end(), body.begin(), body.end());

  // Self-verification: the frame must explain ALL live link state. State
  // booked behind the broker's back (e.g. hierarchical leases placed
  // directly on the node MIB) is invisible to the flow/class/external
  // records above; emitting the frame anyway would silently lose it on
  // recovery. Restore into a scratch broker and compare.
  auto check = restore(spec_, options_, out);
  if (!check.is_ok()) {
    return Status::internal("snapshot failed self-restore: " +
                            check.status().to_string());
  }
  constexpr double kResumTol = 1e-6;  // float re-summation slack
  for (const auto& l : spec_.links) {
    const std::string name = l.from + "->" + l.to;
    const LinkQosState& live = store_.nodes().link(name);
    const LinkQosState& redo = check.value()->nodes().link(name);
    if (std::abs(live.reserved() - redo.reserved()) > kResumTol ||
        std::abs(live.buffer_reserved() - redo.buffer_reserved()) >
            kResumTol) {
      return Status::failed_precondition(
          "snapshot would lose state on link " + name +
          ": live reservation not explained by the flow/class/external "
          "records (out-of-band booking?)");
    }
  }
  return out;
}

Result<std::unique_ptr<BandwidthBroker>> BandwidthBroker::restore(
    const DomainSpec& spec, BrokerOptions options,
    const std::vector<std::uint8_t>& frame) {
  auto type = peek_type(frame);
  if (!type.is_ok()) return type.status();
  if (type.value() != MessageType::kBrokerSnapshot) {
    return Status::invalid_argument("not a broker snapshot frame");
  }
  WireReader r(frame);
  (void)r.u16();
  (void)r.u8();
  (void)r.u8();
  auto body_len = r.u32();
  if (!body_len.is_ok() ||
      static_cast<std::size_t>(body_len.value()) + 8 != frame.size()) {
    return Status::invalid_argument("snapshot length mismatch");
  }

  auto bb = std::make_unique<BandwidthBroker>(spec, options);

  // Paths, in original id order (provision() assigns dense ids).
  auto path_count = r.u32();
  if (!path_count.is_ok()) return path_count.status();
  for (std::uint32_t i = 0; i < path_count.value(); ++i) {
    auto nodes = get_nodes(r);
    if (!nodes.is_ok()) return nodes.status();
    const PathId id = bb->paths_.provision(nodes.value());
    if (id != static_cast<PathId>(i)) {
      return Status::invalid_argument("snapshot: path id drift");
    }
  }
  // Per-flow reservations.
  auto pf_count = r.u32();
  if (!pf_count.is_ok()) return pf_count.status();
  for (std::uint32_t i = 0; i < pf_count.value(); ++i) {
    auto id = r.i64();
    auto profile = get_profile(r);
    auto d_req = r.f64();
    auto path = r.i64();
    auto rate = r.f64();
    auto delay = r.f64();
    auto admitted_at = r.f64();
    auto priority = r.i64();
    for (const Status& s :
         {id.status(), profile.status(), d_req.status(), path.status(),
          rate.status(), delay.status(), admitted_at.status(),
          priority.status()}) {
      if (!s.is_ok()) return s;
    }
    if (path.value() < 0 ||
        path.value() >= static_cast<PathId>(bb->paths_.path_count()) ||
        !(rate.value() > 0.0) || delay.value() < 0.0) {
      return Status::invalid_argument("snapshot: corrupt flow record");
    }
    const PathRecord& rec = bb->paths_.record(path.value());
    FlowRecord flow;
    flow.id = id.value();
    flow.kind = FlowKind::kPerFlow;
    flow.profile = profile.value();
    flow.e2e_delay_req = d_req.value();
    flow.path = path.value();
    flow.reservation = RateDelayPair{rate.value(), delay.value()};
    flow.admitted_at = admitted_at.value();
    flow.priority = static_cast<FlowPriority>(priority.value());
    bb->book_reservation(rec, flow.reservation, flow.profile);
    bb->flows_.add(flow);
    bb->flows_.bump_next_id(flow.id);
    ++bb->ingress_flows_[rec.ingress()];
  }
  // Service classes.
  auto cls_count = r.u32();
  if (!cls_count.is_ok()) return cls_count.status();
  for (std::uint32_t i = 0; i < cls_count.value(); ++i) {
    auto id = r.i64();
    auto e2e = r.f64();
    auto cd = r.f64();
    auto name = r.str();
    for (const Status& s :
         {id.status(), e2e.status(), cd.status(), name.status()}) {
      if (!s.is_ok()) return s;
    }
    bb->classes_.restore_class(
        ServiceClass{id.value(), e2e.value(), cd.value(), name.value()});
  }
  // Macroflows.
  auto mf_count = r.u32();
  if (!mf_count.is_ok()) return mf_count.status();
  for (std::uint32_t i = 0; i < mf_count.value(); ++i) {
    auto id = r.i64();
    auto cls = r.i64();
    auto path = r.i64();
    auto aggregate = get_profile(r);
    auto base = r.f64();
    auto core_bound = r.f64();
    auto member_count = r.u32();
    for (const Status& s :
         {id.status(), cls.status(), path.status(), aggregate.status(),
          base.status(), core_bound.status(), member_count.status()}) {
      if (!s.is_ok()) return s;
    }
    if (member_count.value() > 1 << 20) {
      return Status::invalid_argument("snapshot: absurd member count");
    }
    MacroflowState state;
    state.id = id.value();
    state.service_class = cls.value();
    state.path = path.value();
    state.aggregate = aggregate.value();
    state.microflows = static_cast<int>(member_count.value());
    state.base_rate = base.value();
    state.core_bound_in_effect = core_bound.value();
    std::vector<FlowRecord> members;
    members.reserve(member_count.value());
    const Seconds class_delay =
        bb->classes_.service_class(cls.value()).e2e_delay;
    for (std::uint32_t k = 0; k < member_count.value(); ++k) {
      auto mid = r.i64();
      auto profile = get_profile(r);
      auto rate = r.f64();
      auto admitted_at = r.f64();
      for (const Status& s : {mid.status(), profile.status(), rate.status(),
                              admitted_at.status()}) {
        if (!s.is_ok()) return s;
      }
      FlowRecord rec;
      rec.id = mid.value();
      rec.kind = FlowKind::kMicroflow;
      rec.profile = profile.value();
      rec.e2e_delay_req = class_delay;
      rec.path = path.value();
      rec.reservation =
          RateDelayPair{rate.value(),
                        bb->classes_.service_class(cls.value()).delay_param};
      rec.service_class = cls.value();
      rec.admitted_at = admitted_at.value();
      bb->flows_.bump_next_id(rec.id);
      members.push_back(std::move(rec));
    }
    bb->flows_.bump_next_id(state.id);
    bb->classes_.restore_macroflow(state, members);
  }
  // Out-of-band link reservations.
  auto ext_count = r.u32();
  if (!ext_count.is_ok()) return ext_count.status();
  if (ext_count.value() > 1 << 20) {
    return Status::invalid_argument("snapshot: absurd external count");
  }
  for (std::uint32_t i = 0; i < ext_count.value(); ++i) {
    auto link = r.str();
    auto amount = r.f64();
    if (!link.is_ok()) return link.status();
    if (!amount.is_ok()) return amount.status();
    if (Status s = bb->reserve_link_external(link.value(), amount.value());
        !s.is_ok()) {
      return Status::invalid_argument(
          "snapshot: cannot re-book external reservation on " + link.value() +
          ": " + s.to_string());
    }
  }
  if (!r.exhausted()) {
    return Status::invalid_argument("snapshot: trailing bytes");
  }
  return bb;
}

}  // namespace qosbb
