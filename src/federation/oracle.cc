#include "federation/oracle.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "core/concurrent_front.h"
#include "core/oracle.h"
#include "topo/routing.h"

namespace qosbb {

namespace {

std::string fmt_rate(BitsPerSecond r) {
  std::ostringstream os;
  os.precision(17);
  os << r;
  return os.str();
}

}  // namespace

FederationOracle::FederationOracle(FederationPlan plan, BrokerOptions options)
    : plan_(std::move(plan)),
      graph_(plan_.global.to_graph()),
      bb_(std::make_unique<BandwidthBroker>(plan_.global, options)) {}

Status FederationOracle::observe_admit(const FlowServiceRequest& request,
                                       const FederatedOutcome& outcome) {
  const bool fed_admitted = outcome.result.is_ok();
  if (!outcome.inter_domain) {
    // Intra-domain: bit-identity against the flat broker's own pipeline.
    auto mirror = bb_->request_service(request);
    if (mirror.is_ok() != fed_admitted) {
      return Status::internal(
          std::string("intra bit-identity broken: federation ") +
          (fed_admitted ? "admitted" : "rejected") + ", flat mirror " +
          (mirror.is_ok() ? "admitted" : "rejected") + " (" +
          (fed_admitted ? mirror.status().message()
                        : outcome.result.status().message()) +
          ")");
    }
    if (!fed_admitted) return Status::ok();
    const Reservation& fed = outcome.result.value();
    const Reservation& flat = mirror.value();
    if (fed.params.rate != flat.params.rate ||
        fed.params.delay != flat.params.delay ||
        fed.e2e_bound != flat.e2e_bound) {
      return Status::internal(
          "intra bit-identity broken: federation rate " +
          fmt_rate(fed.params.rate) + " bound " + fmt_rate(fed.e2e_bound) +
          " vs flat rate " + fmt_rate(flat.params.rate) + " bound " +
          fmt_rate(flat.e2e_bound));
    }
    mirror_flows_[fed.flow] = {flat.flow};
    return Status::ok();
  }

  // Inter-domain: rejects are trivially conservative; nothing to mirror.
  if (!fed_admitted) return Status::ok();

  // Conservativeness: the flat broker, at the SAME link state, must admit
  // the original request. Decision only — the mirror's booking below uses
  // the federation's pinned segments so the link states stay in lockstep.
  // (Provisioning is lazy and decision-free; the probe needs the global
  // endpoint pair provisioned on the mirror first.)
  if (auto p = bb_->provision_path(request.ingress, request.egress);
      !p.is_ok()) {
    return Status::internal("oracle: cannot provision the flat path for an "
                            "admitted flow: " + p.status().message());
  }
  const OracleDecision decision = oracle_decide_request(*bb_, request);
  if (!decision.outcome.admitted) {
    return Status::internal(
        "conservativeness broken: federation admitted an inter-domain flow "
        "the flat oracle rejects (" +
        std::string(reject_reason_name(decision.outcome.reason)) + ": " +
        decision.outcome.detail + ")");
  }

  const auto routes =
      k_shortest_paths(graph_, request.ingress, request.egress, 1);
  if (routes.empty()) {
    return Status::internal("oracle: no flat route for an admitted flow");
  }
  const auto segments = segment_path(plan_, routes.front());
  if (static_cast<int>(segments.size()) != outcome.segments) {
    return Status::internal("oracle: segmentation mismatch (" +
                            std::to_string(segments.size()) + " vs " +
                            std::to_string(outcome.segments) + ")");
  }
  std::vector<FlowId> booked;
  for (const PathSegment& seg : segments) {
    auto res = bb_->request_service(pinned_segment_request(
        seg.nodes.front(), seg.nodes.back(), outcome.segment_rate,
        plan_.global.l_max));
    if (!res.is_ok()) {
      return Status::internal(
          "oracle: mirror refused a pinned segment the member booked (" +
          seg.nodes.front() + " -> " + seg.nodes.back() + ": " +
          res.status().message() + ")");
    }
    if (res.value().params.rate != outcome.segment_rate) {
      return Status::internal("oracle: mirror pinned rate " +
                              fmt_rate(res.value().params.rate) +
                              " != segment rate " +
                              fmt_rate(outcome.segment_rate));
    }
    booked.push_back(res.value().flow);
  }
  mirror_flows_[outcome.result.value().flow] = std::move(booked);
  return Status::ok();
}

Status FederationOracle::observe_release(FlowId fed_flow) {
  auto it = mirror_flows_.find(fed_flow);
  if (it == mirror_flows_.end()) {
    return Status::internal("oracle: release of unknown federated flow " +
                            std::to_string(fed_flow));
  }
  for (FlowId flow : it->second) {
    if (Status s = bb_->release_service(flow); !s.is_ok()) {
      return Status::internal("oracle: mirror release failed: " +
                              s.message());
    }
  }
  mirror_flows_.erase(it);
  return Status::ok();
}

Status FederationOracle::check_member_links(const BandwidthBroker& member,
                                            int domain) const {
  if (domain < 0 || domain >= static_cast<int>(plan_.members.size())) {
    return Status::invalid_argument("check_member_links: bad domain");
  }
  for (const LinkSpec& link : plan_.members[domain].links) {
    const std::string name = link.from + "->" + link.to;
    if (!member.nodes().has_link(name)) {
      return Status::internal("member " + std::to_string(domain) +
                              " is missing owned link " + name);
    }
    const BitsPerSecond member_reserved = member.nodes().link(name).reserved();
    const BitsPerSecond mirror_reserved = bb_->nodes().link(name).reserved();
    // reserved() is a running float sum, and only the member executes the
    // transient 2PC bookings (boundary contingency, rolled-back prepares):
    // its +r/−r pairs cancel only up to one ulp each. Admission decisions
    // are unaffected (capacity checks carry kRateTolerance), so the audit
    // allows exactly that rounding envelope and nothing more.
    const double tol = 1e-6 * std::max(1.0, std::abs(mirror_reserved));
    if (std::abs(member_reserved - mirror_reserved) > tol) {
      return Status::internal(
          "link-state divergence on " + name + ": member reserved " +
          fmt_rate(member_reserved) + " vs flat mirror " +
          fmt_rate(mirror_reserved));
    }
  }
  return Status::ok();
}

Status FederationOracle::check_state() const {
  const OracleStateReport report = oracle_check_state(*bb_);
  if (report.ok) return Status::ok();
  return Status::internal("mirror state audit failed: " + report.to_string());
}

MemberReplayReport replay_member_ops(const DomainSpec& spec,
                                     const BrokerOptions& options,
                                     const std::vector<RecordedOp>& ops) {
  MemberReplayReport report;
  BandwidthBroker bb(spec, options);
  ConcurrentBrokerFront front(bb, /*threads=*/1);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const RecordedOp& op = ops[i];
    switch (op.kind) {
      case RecordedOp::Kind::kProvision: {
        auto s = front.exclusive([&](BandwidthBroker& b) {
          return b.provision_path(op.ingress, op.egress);
        });
        if (!s.is_ok()) {
          report.detail = "op " + std::to_string(i) +
                          ": provision failed: " + s.status().message();
          return report;
        }
        break;
      }
      case RecordedOp::Kind::kAdmit: {
        FrontOutcome out = front.request_service(op.request);
        if (out.result.is_ok() != op.admitted) {
          report.detail = "op " + std::to_string(i) +
                          ": replay decision diverged (recorded " +
                          (op.admitted ? "admit" : "reject") +
                          ", replay " +
                          (out.result.is_ok() ? "admit" : "reject") + ")";
          return report;
        }
        if (op.admitted && out.result.value().flow != op.assigned_flow) {
          report.detail = "op " + std::to_string(i) + ": replay flow id " +
                          std::to_string(out.result.value().flow) +
                          " != recorded " +
                          std::to_string(op.assigned_flow);
          return report;
        }
        break;
      }
      case RecordedOp::Kind::kRelease: {
        if (Status s = front.release_service(op.flow); !s.is_ok()) {
          report.detail = "op " + std::to_string(i) +
                          ": replay release of flow " +
                          std::to_string(op.flow) +
                          " failed: " + s.message();
          return report;
        }
        break;
      }
    }
    ++report.ops_replayed;
  }
  auto digest = front.exclusive(
      [](BandwidthBroker& b) { return broker_state_digest(b); });
  if (!digest.is_ok()) {
    report.detail = "replay digest failed: " + digest.status().message();
    return report;
  }
  report.digest = digest.value();
  report.live_flows = bb.flows().count();
  report.ok = true;
  return report;
}

}  // namespace qosbb
