// Differential oracle for the federated control plane.
//
// Ground truth is a FLAT single broker over the same global topology. The
// oracle mirrors every federated operation against it and checks the
// federation's two-sided contract:
//
//   * intra-domain ops are BIT-IDENTICAL — the owning member sees exactly
//     the link state the flat broker would see (partitions are
//     route-closed; inter-domain bookings land on both sides with the same
//     pinned rates), so admit bit, reserved rate, and delay bound must
//     match exactly (== on doubles, no tolerance);
//   * inter-domain admits are CONSERVATIVE — whenever the federation
//     admits, a from-scratch §3 oracle decision on the flat mirror must
//     also admit the original request (the federation never grants what
//     the flat broker would refuse; extra federation rejects are fine).
//
// After every federated admit the oracle re-books the SAME pinned segment
// reservations on the mirror, which keeps the two link-state views in
// lockstep: check_member_links then asserts per-link reserved bandwidth is
// equal up to the float-rounding envelope of the member's transient 2PC
// bookings (boundary contingencies and rolled-back prepares add +r/−r
// pairs the mirror never executes; each cancels only to within one ulp),
// and check_state runs the §3 state audit (core/oracle.h
// oracle_check_state) over the mirror.
//
// replay_member_ops closes the loop for socket members, where the mirror
// cannot reach into the remote broker: the coordinator's per-member sub-op
// log is replayed through a fresh in-process broker and the resulting
// snapshot digest must equal the member's live FederatedDigest — proving
// the member executed exactly the coordinator's op sequence, once each,
// even across crash/retry.

#ifndef QOSBB_FEDERATION_ORACLE_H_
#define QOSBB_FEDERATION_ORACLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/broker.h"
#include "federation/federated_front.h"
#include "federation/partition.h"
#include "net/server.h"
#include "topo/graph.h"

namespace qosbb {

class FederationOracle {
 public:
  FederationOracle(FederationPlan plan, BrokerOptions options);

  /// Mirror one federated admission attempt. `request` is the ORIGINAL
  /// request as submitted to the FederatedFront, `outcome` the front's
  /// decision. Returns an error describing the first violated invariant.
  Status observe_admit(const FlowServiceRequest& request,
                       const FederatedOutcome& outcome);
  /// Mirror a federated release (by the FEDERATION flow id).
  Status observe_release(FlowId fed_flow);

  /// Per-link reserved bandwidth of one member must equal the mirror's on
  /// every link the member owns (up to the transient-booking ulp envelope;
  /// see the file comment).
  Status check_member_links(const BandwidthBroker& member, int domain) const;
  /// Full §3 state audit of the mirror (oracle_check_state).
  Status check_state() const;

  BandwidthBroker& mirror() { return *bb_; }
  const BandwidthBroker& mirror() const { return *bb_; }

 private:
  FederationPlan plan_;
  Graph graph_;
  std::unique_ptr<BandwidthBroker> bb_;
  /// Federation flow id -> the mirror flows booked for it (1 for intra,
  /// one per segment for inter).
  std::map<FlowId, std::vector<FlowId>> mirror_flows_;
};

/// Replay one member's coordinator-recorded sub-op log through a fresh
/// in-process broker built from the member's sub-spec, checking every
/// recorded decision (admit bit + assigned flow id, releases succeed) and
/// returning the replayed state's digest for comparison against the live
/// member's FederatedDigestReply.
struct MemberReplayReport {
  bool ok = false;
  std::string detail;
  std::size_t ops_replayed = 0;
  std::uint32_t digest = 0;
  std::uint64_t live_flows = 0;
};
MemberReplayReport replay_member_ops(const DomainSpec& spec,
                                     const BrokerOptions& options,
                                     const std::vector<RecordedOp>& ops);

}  // namespace qosbb

#endif  // QOSBB_FEDERATION_ORACLE_H_
