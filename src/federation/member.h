// The federation's member transport seam.
//
// A FederationMember is one domain-scoped broker as the federation
// coordinator sees it: plain admit/release for intra-domain flows, the 2PC
// segment ops for inter-domain flows, and a digest probe for audits. Two
// transports implement it:
//
//   * InProcessMember — a BandwidthBroker + ConcurrentBrokerFront embedded
//     in the coordinator's process. Calls are plain function calls; intra
//     admissions ride the front's optimistic fast path. Supports
//     snapshot/restore, so an in-process federation can checkpoint
//     consistently (FederatedFront::snapshot quiesces every member).
//   * SocketMember — a RetryingClient speaking the wire protocol to a
//     qosbbd member (net/server.cc handles kPrepareSegment & co). Retries
//     re-send the same bytes/rids, so against a durable (journaled) qosbbd
//     every op is exactly-once even across a member crash + restart.
//     Snapshot/restore is not transported — a durable member's journal IS
//     its persistence; audits use digest() instead.

#ifndef QOSBB_FEDERATION_MEMBER_H_
#define QOSBB_FEDERATION_MEMBER_H_

#include <memory>
#include <string>

#include "core/broker.h"
#include "core/concurrent_front.h"
#include "core/wire.h"
#include "net/client.h"
#include "topo/fig8.h"

namespace qosbb {

class FederationMember {
 public:
  virtual ~FederationMember() = default;

  virtual int domain() const = 0;

  /// Intra-domain admission, delegated whole (the member routes locally).
  virtual Result<Reservation> admit(const FlowServiceRequest& request,
                                    RequestId rid) = 0;
  virtual Status release(FlowId flow, RequestId rid) = 0;

  // ---- 2PC segment ops (inter-domain flows) ----
  virtual Result<PrepareReply> prepare(const PrepareSegment& request) = 0;
  virtual Result<SegmentAck> commit(const CommitSegment& request) = 0;
  virtual Result<SegmentAck> abort(const AbortSegment& request) = 0;

  virtual Result<FederatedDigestReply> digest() = 0;

  /// Consistent checkpointing (in-process members only; a socket member
  /// returns kFailedPrecondition — its journal is its persistence).
  virtual Result<WireBuffer> snapshot() = 0;
  virtual Status restore(const WireBuffer& frame) = 0;
};

class InProcessMember : public FederationMember {
 public:
  InProcessMember(int domain, DomainSpec spec, BrokerOptions options,
                  int threads = 1);

  int domain() const override { return domain_; }
  Result<Reservation> admit(const FlowServiceRequest& request,
                            RequestId rid) override;
  Status release(FlowId flow, RequestId rid) override;
  Result<PrepareReply> prepare(const PrepareSegment& request) override;
  Result<SegmentAck> commit(const CommitSegment& request) override;
  Result<SegmentAck> abort(const AbortSegment& request) override;
  Result<FederatedDigestReply> digest() override;
  Result<WireBuffer> snapshot() override;
  Status restore(const WireBuffer& frame) override;

  BandwidthBroker& broker() { return *bb_; }
  ConcurrentBrokerFront& front() { return *front_; }
  const DomainSpec& spec() const { return spec_; }

 private:
  int domain_;
  DomainSpec spec_;
  BrokerOptions options_;
  int threads_;
  std::unique_ptr<BandwidthBroker> bb_;
  std::unique_ptr<ConcurrentBrokerFront> front_;
};

class SocketMember : public FederationMember {
 public:
  SocketMember(int domain, RetryingClientOptions options);

  int domain() const override { return domain_; }
  Result<Reservation> admit(const FlowServiceRequest& request,
                            RequestId rid) override;
  Status release(FlowId flow, RequestId rid) override;
  Result<PrepareReply> prepare(const PrepareSegment& request) override;
  Result<SegmentAck> commit(const CommitSegment& request) override;
  Result<SegmentAck> abort(const AbortSegment& request) override;
  Result<FederatedDigestReply> digest() override;
  Result<WireBuffer> snapshot() override;
  Status restore(const WireBuffer& frame) override;

  const RetryingClientStats& transport_stats() const {
    return client_.stats();
  }

 private:
  int domain_;
  RetryingClient client_;
};

}  // namespace qosbb

#endif  // QOSBB_FEDERATION_MEMBER_H_
