#include "federation/member.h"

#include <utility>

#include "net/server.h"

namespace qosbb {

// ---- InProcessMember ----

InProcessMember::InProcessMember(int domain, DomainSpec spec,
                                 BrokerOptions options, int threads)
    : domain_(domain),
      spec_(std::move(spec)),
      options_(options),
      threads_(threads),
      bb_(std::make_unique<BandwidthBroker>(spec_, options_)),
      front_(std::make_unique<ConcurrentBrokerFront>(*bb_, threads_)) {}

Result<Reservation> InProcessMember::admit(const FlowServiceRequest& request,
                                           RequestId /*rid*/) {
  // In-process calls never retry, so the rid has nothing to deduplicate.
  return front_->request_service(request).result;
}

Status InProcessMember::release(FlowId flow, RequestId /*rid*/) {
  return front_->release_service(flow);
}

Result<PrepareReply> InProcessMember::prepare(const PrepareSegment& request) {
  PrepareReply reply;
  reply.txn = request.txn;
  FrontOutcome seg = front_->request_service(pinned_segment_request(
      request.ingress, request.egress, request.rate, request.l_max));
  if (!seg.result.is_ok()) {
    reply.reason = seg.outcome.reason;
    reply.detail = seg.outcome.detail.empty() ? seg.result.status().message()
                                              : seg.outcome.detail;
    return reply;
  }
  reply.segment_flow = seg.result.value().flow;
  if (request.contingency_rate > 0.0) {
    FrontOutcome cont = front_->request_service(
        pinned_segment_request(request.boundary_from, request.boundary_to,
                               request.contingency_rate, request.l_max));
    if (!cont.result.is_ok()) {
      reply.reason = cont.outcome.reason;
      reply.detail =
          "contingency: " + (cont.outcome.detail.empty()
                                 ? cont.result.status().message()
                                 : cont.outcome.detail);
      return reply;
    }
    reply.contingency_flow = cont.result.value().flow;
  }
  reply.prepared = true;
  return reply;
}

Result<SegmentAck> InProcessMember::commit(const CommitSegment& request) {
  SegmentAck ack;
  ack.txn = request.txn;
  ack.ok = true;
  if (request.contingency_flow != kInvalidFlowId) {
    const Status s = front_->release_service(request.contingency_flow);
    if (!s.is_ok()) {
      ack.ok = false;
      ack.detail = s.message();
    }
  }
  return ack;
}

Result<SegmentAck> InProcessMember::abort(const AbortSegment& request) {
  SegmentAck ack;
  ack.txn = request.txn;
  ack.ok = true;
  if (request.segment_flow != kInvalidFlowId) {
    const Status s = front_->release_service(request.segment_flow);
    if (!s.is_ok()) {
      ack.ok = false;
      ack.detail = "segment: " + s.message();
    }
  }
  if (request.contingency_flow != kInvalidFlowId) {
    const Status s = front_->release_service(request.contingency_flow);
    if (!s.is_ok()) {
      ack.ok = false;
      if (!ack.detail.empty()) ack.detail += "; ";
      ack.detail += "contingency: " + s.message();
    }
  }
  return ack;
}

Result<FederatedDigestReply> InProcessMember::digest() {
  return front_->exclusive(
      [](BandwidthBroker& bb) -> Result<FederatedDigestReply> {
        auto digest = broker_state_digest(bb);
        if (!digest.is_ok()) return digest.status();
        FederatedDigestReply reply;
        reply.digest = digest.value();
        reply.live_flows = bb.flows().count();
        reply.journal_lsn = 0;
        return reply;
      });
}

Result<WireBuffer> InProcessMember::snapshot() {
  return front_->exclusive(
      [](BandwidthBroker& bb) -> Result<WireBuffer> { return bb.snapshot(); });
}

Status InProcessMember::restore(const WireBuffer& frame) {
  auto restored = BandwidthBroker::restore(spec_, options_, frame);
  if (!restored.is_ok()) return restored.status();
  front_.reset();  // drops the reference into the old broker first
  bb_ = std::move(restored).value();
  front_ = std::make_unique<ConcurrentBrokerFront>(*bb_, threads_);
  return Status::ok();
}

// ---- SocketMember ----

SocketMember::SocketMember(int domain, RetryingClientOptions options)
    : domain_(domain), client_(std::move(options)) {}

Result<Reservation> SocketMember::admit(const FlowServiceRequest& request,
                                        RequestId rid) {
  return client_.admit(request, rid);
}

Status SocketMember::release(FlowId flow, RequestId rid) {
  return client_.teardown(flow, rid);
}

Result<PrepareReply> SocketMember::prepare(const PrepareSegment& request) {
  return client_.prepare(request);
}

Result<SegmentAck> SocketMember::commit(const CommitSegment& request) {
  return client_.commit_segment(request);
}

Result<SegmentAck> SocketMember::abort(const AbortSegment& request) {
  return client_.abort_segment(request);
}

Result<FederatedDigestReply> SocketMember::digest() {
  return client_.federated_digest();
}

Result<WireBuffer> SocketMember::snapshot() {
  return Status::failed_precondition(
      "socket members persist via their journal; snapshot is not transported");
}

Status SocketMember::restore(const WireBuffer&) {
  return Status::failed_precondition(
      "socket members recover from their journal; restore is not transported");
}

}  // namespace qosbb
