#include "federation/federated_front.h"

#include <cmath>
#include <limits>
#include <utility>

#include "topo/routing.h"

namespace qosbb {

namespace {

/// Locks a dynamic set of mutexes in the order given; unlocks in reverse on
/// scope exit. (MutexLock cannot express a runtime-sized set, and clang's
/// thread-safety analysis cannot track one either — the acquisition order
/// is the member-index order required by the lock hierarchy.)
class OrderedLockSet {
 public:
  OrderedLockSet() = default;
  OrderedLockSet(const OrderedLockSet&) = delete;
  OrderedLockSet& operator=(const OrderedLockSet&) = delete;
  ~OrderedLockSet() NO_THREAD_SAFETY_ANALYSIS {
    for (auto it = held_.rbegin(); it != held_.rend(); ++it) (*it)->unlock();
  }
  void lock(Mutex& mu) NO_THREAD_SAFETY_ANALYSIS {
    mu.lock();
    held_.push_back(&mu);
  }

 private:
  std::vector<Mutex*> held_;
};

/// Magic word of a cross-federation snapshot frame ("FSNP").
constexpr std::uint32_t kFederationSnapshotMagic = 0x46534e50u;

/// A transport-level failure leaves the member's state unknown to the
/// coordinator (the op may or may not have executed). Clean rejections and
/// structural errors are NOT transport failures.
bool transport_failure(const Status& s) {
  return s.code() == StatusCode::kUnavailable ||
         s.code() == StatusCode::kDataLoss;
}

FederatedOutcome local_reject(RejectReason reason, std::string detail,
                              bool inter) {
  FederatedOutcome out;
  out.inter_domain = inter;
  out.reason = reason;
  out.detail = detail;
  out.result = Status::rejected(std::string(reject_reason_name(reason)) +
                                ": " + std::move(detail));
  return out;
}

}  // namespace

FederatedFront::FederatedFront(FederationPlan plan,
                               std::vector<FederationMember*> members,
                               FederatedFrontOptions options)
    : plan_(std::move(plan)),
      global_graph_(plan_.global.to_graph()),
      options_(options),
      next_rid_(options.first_rid) {
  QOSBB_REQUIRE(members.size() == plan_.members.size(),
                "FederatedFront: one member per plan domain");
  for (std::size_t i = 0; i < members.size(); ++i) {
    QOSBB_REQUIRE(members[i] != nullptr, "FederatedFront: null member");
    QOSBB_REQUIRE(members[i]->domain() == static_cast<int>(i),
                  "FederatedFront: member order must match plan domains");
    slots_.push_back(std::make_unique<MemberSlot>(members[i]));
  }
}

BitsPerSecond FederatedFront::inter_domain_segment_rate(
    const PathAbstract& path, const TrafficProfile& p, Seconds d_req,
    int num_segments) {
  const Seconds t_on = p.t_on();
  const Seconds denom = d_req - path.total_error_and_prop() + t_on;
  if (denom <= 0.0) return std::numeric_limits<double>::infinity();
  const double extra_hops =
      static_cast<double>(path.hop_count() + num_segments);
  const BitsPerSecond r_min = (t_on * p.peak + extra_hops * p.l_max) / denom;
  // Beyond the peak no rate helps (the edge bound is already L/P-tight);
  // with num_segments == 1 this is exactly the flat §3.1 infeasibility.
  if (r_min > p.peak) return std::numeric_limits<double>::infinity();
  return std::max(p.rho, r_min);
}

// ---- per-member wrappers (slot mutex held across call + log append) ----

Result<Reservation> FederatedFront::member_admit(
    MemberSlot& slot, const FlowServiceRequest& request, RequestId rid) {
  MutexLock lock(slot.member_mu_);
  auto res = slot.member->admit(request, rid);
  if (options_.record_member_ops &&
      (res.is_ok() || res.status().code() == StatusCode::kRejected)) {
    RecordedOp op;
    op.kind = RecordedOp::Kind::kAdmit;
    op.request = request;
    op.admitted = res.is_ok();
    op.assigned_flow = res.is_ok() ? res.value().flow : kInvalidFlowId;
    slot.ops.push_back(std::move(op));
  }
  return res;
}

Status FederatedFront::member_release(MemberSlot& slot, FlowId flow,
                                      RequestId rid) {
  MutexLock lock(slot.member_mu_);
  const Status s = slot.member->release(flow, rid);
  if (options_.record_member_ops && s.is_ok()) {
    RecordedOp op;
    op.kind = RecordedOp::Kind::kRelease;
    op.flow = flow;
    slot.ops.push_back(std::move(op));
  }
  return s;
}

Result<PrepareReply> FederatedFront::member_prepare(
    MemberSlot& slot, const PrepareSegment& request) {
  MutexLock lock(slot.member_mu_);
  auto res = slot.member->prepare(request);
  if (options_.record_member_ops && res.is_ok()) {
    // Mirror exactly the sub-admissions the member executed, in its order:
    // the pinned segment, then (only if the segment held and a contingency
    // was requested) the pinned boundary contingency.
    const PrepareReply& reply = res.value();
    RecordedOp seg;
    seg.kind = RecordedOp::Kind::kAdmit;
    seg.request = pinned_segment_request(request.ingress, request.egress,
                                         request.rate, request.l_max);
    seg.admitted = reply.segment_flow != kInvalidFlowId;
    seg.assigned_flow = reply.segment_flow;
    slot.ops.push_back(std::move(seg));
    if (request.contingency_rate > 0.0 &&
        reply.segment_flow != kInvalidFlowId) {
      RecordedOp cont;
      cont.kind = RecordedOp::Kind::kAdmit;
      cont.request = pinned_segment_request(
          request.boundary_from, request.boundary_to,
          request.contingency_rate, request.l_max);
      cont.admitted = reply.contingency_flow != kInvalidFlowId;
      cont.assigned_flow = reply.contingency_flow;
      slot.ops.push_back(std::move(cont));
    }
  }
  return res;
}

Result<SegmentAck> FederatedFront::member_commit(MemberSlot& slot,
                                                 const CommitSegment& request) {
  MutexLock lock(slot.member_mu_);
  auto res = slot.member->commit(request);
  if (options_.record_member_ops && res.is_ok() && res.value().ok &&
      request.contingency_flow != kInvalidFlowId) {
    RecordedOp op;
    op.kind = RecordedOp::Kind::kRelease;
    op.flow = request.contingency_flow;
    slot.ops.push_back(std::move(op));
  }
  return res;
}

Result<SegmentAck> FederatedFront::member_abort(MemberSlot& slot,
                                                const AbortSegment& request) {
  MutexLock lock(slot.member_mu_);
  auto res = slot.member->abort(request);
  if (options_.record_member_ops && res.is_ok() && res.value().ok) {
    // Server-side abort releases segment first, then contingency.
    for (FlowId flow : {request.segment_flow, request.contingency_flow}) {
      if (flow == kInvalidFlowId) continue;
      RecordedOp op;
      op.kind = RecordedOp::Kind::kRelease;
      op.flow = flow;
      slot.ops.push_back(std::move(op));
    }
  }
  return res;
}

// ---- classification + admission ----

FederatedOutcome FederatedFront::request_service(
    const FlowServiceRequest& request) {
  {
    MutexLock lock(fed_mu_);
    ++stats_.requests;
  }
  if (!plan_.node_domain.contains(request.ingress) ||
      !plan_.node_domain.contains(request.egress)) {
    return local_reject(RejectReason::kNoPath,
                        "endpoint outside the federation", false);
  }
  const auto routes =
      k_shortest_paths(global_graph_, request.ingress, request.egress, 1);
  if (routes.empty()) {
    return local_reject(RejectReason::kNoPath,
                        "no route " + request.ingress + " -> " +
                            request.egress,
                        false);
  }
  const auto segments = segment_path(plan_, routes.front());
  if (segments.size() == 1) {
    return admit_intra(request, segments.front().domain);
  }
  return admit_inter(request, routes.front(), segments);
}

FederatedOutcome FederatedFront::admit_intra(const FlowServiceRequest& request,
                                             int domain) {
  RequestId rid;
  {
    MutexLock lock(fed_mu_);
    ++stats_.intra_requests;
    rid = next_rid_++;
  }
  FederatedOutcome out;
  out.inter_domain = false;
  auto res = member_admit(*slots_[domain], request, rid);
  if (!res.is_ok()) {
    out.result = res.status();
    out.detail = res.status().message();
    MutexLock lock(fed_mu_);
    if (transport_failure(res.status())) ++stats_.poisoned_txns;
    return out;
  }
  Reservation reservation = std::move(res).value();
  MutexLock lock(fed_mu_);
  const FlowId fed_id = next_flow_++;
  FedFlowRecord rec;
  rec.inter = false;
  rec.domain = domain;
  rec.member_flow = reservation.flow;
  flows_[fed_id] = std::move(rec);
  ++stats_.intra_admitted;
  reservation.flow = fed_id;
  out.result = std::move(reservation);
  return out;
}

FederatedOutcome FederatedFront::admit_inter(
    const FlowServiceRequest& request, const std::vector<std::string>& route,
    const std::vector<PathSegment>& segments) {
  {
    MutexLock lock(fed_mu_);
    ++stats_.inter_requests;
  }
  const PathAbstract abstract = path_abstract(plan_.global, route);
  if (abstract.delay_based_count() > 0) {
    {
      MutexLock lock(fed_mu_);
      ++stats_.inter_rejected_local;
    }
    return local_reject(RejectReason::kNoFeasibleRate,
                        "inter-domain path crosses a delay-based hop", true);
  }
  const int num_segments = static_cast<int>(segments.size());
  const BitsPerSecond r_star = inter_domain_segment_rate(
      abstract, request.profile, request.e2e_delay_req, num_segments);
  if (!std::isfinite(r_star)) {
    MutexLock lock(fed_mu_);
    ++stats_.inter_rejected_local;
    return local_reject(RejectReason::kNoFeasibleRate,
                        "federated delay requirement unattainable", true);
  }
  const BitsPerSecond contingency =
      std::max(0.0, request.profile.peak - r_star);

  std::uint64_t txn;
  std::vector<SegmentRids> rids(segments.size());
  {
    MutexLock lock(fed_mu_);
    txn = next_txn_++;
    for (auto& r : rids) {
      r.prepare_segment = next_rid_++;
      r.prepare_contingency = next_rid_++;
      r.commit = next_rid_++;
      r.abort_segment = next_rid_++;
      r.abort_contingency = next_rid_++;
    }
  }

  // Phase 1: prepare every segment in path order. Stop at the first
  // failure and roll back everything already held.
  std::vector<PrepareSegment> sent;
  std::vector<PrepareReply> replies;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const PathSegment& seg = segments[i];
    PrepareSegment prep;
    prep.txn = txn;
    prep.rid_segment = rids[i].prepare_segment;
    prep.rid_contingency = rids[i].prepare_contingency;
    prep.ingress = seg.nodes.front();
    prep.egress = seg.nodes.back();
    prep.rate = r_star;
    prep.l_max = plan_.global.l_max;
    prep.contingency_rate = seg.has_boundary ? contingency : 0.0;
    prep.boundary_from = seg.boundary_from;
    prep.boundary_to = seg.boundary_to;
    {
      MutexLock lock(fed_mu_);
      ++stats_.prepares;
    }
    auto reply = member_prepare(*slots_[seg.domain], prep);
    sent.push_back(prep);
    if (!reply.is_ok()) {
      // Transport-dead mid-prepare: this member's holdings are unknown
      // (poisoned); everything before it is known and rolled back.
      sent.pop_back();
      {
        MutexLock lock(fed_mu_);
        if (transport_failure(reply.status())) ++stats_.poisoned_txns;
        ++stats_.aborts;
      }
      abort_prepared(txn, sent, replies, rids);
      FederatedOutcome out;
      out.inter_domain = true;
      out.detail = reply.status().message();
      out.result = reply.status();
      return out;
    }
    replies.push_back(reply.value());
    if (!reply.value().prepared) {
      {
        MutexLock lock(fed_mu_);
        ++stats_.prepare_failures;
        ++stats_.aborts;
      }
      abort_prepared(txn, sent, replies, rids);
      return local_reject(reply.value().reason,
                          "segment " + std::to_string(i) + " (domain " +
                              std::to_string(seg.domain) + "): " +
                              reply.value().detail,
                          true);
    }
  }

  // Phase 2: commit — release each boundary contingency. The admission is
  // already safe (every segment holds); a commit transport failure can
  // only leak contingency bandwidth, which we count as poisoned.
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (replies[i].contingency_flow == kInvalidFlowId) continue;
    CommitSegment commit;
    commit.txn = txn;
    commit.rid = rids[i].commit;
    commit.contingency_flow = replies[i].contingency_flow;
    auto ack = member_commit(*slots_[segments[i].domain], commit);
    MutexLock lock(fed_mu_);
    if (!ack.is_ok()) {
      if (transport_failure(ack.status())) ++stats_.poisoned_txns;
    } else if (!ack.value().ok) {
      ++stats_.ack_failures;
    }
  }

  FederatedOutcome out;
  out.inter_domain = true;
  out.segment_rate = r_star;
  out.segments = num_segments;

  Reservation reservation;
  reservation.params = RateDelayPair{r_star, 0.0};
  const Seconds t_on = request.profile.t_on();
  reservation.e2e_bound =
      t_on * (request.profile.peak - r_star) / r_star +
      static_cast<double>(abstract.hop_count() + num_segments) *
          plan_.global.l_max / r_star +
      abstract.total_error_and_prop();

  MutexLock lock(fed_mu_);
  const FlowId fed_id = next_flow_++;
  FedFlowRecord rec;
  rec.inter = true;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    rec.segments.push_back(
        SegmentBooking{segments[i].domain, replies[i].segment_flow});
  }
  flows_[fed_id] = std::move(rec);
  ++stats_.inter_admitted;
  reservation.flow = fed_id;
  out.result = std::move(reservation);
  return out;
}

void FederatedFront::abort_prepared(std::uint64_t txn,
                                    const std::vector<PrepareSegment>& sent,
                                    const std::vector<PrepareReply>& replies,
                                    const std::vector<SegmentRids>& rids) {
  // `replies` may hold one more entry than fully-prepared segments: the
  // failing prepare's reply still names the flows it partially holds.
  for (std::size_t i = 0; i < replies.size() && i < sent.size(); ++i) {
    const PrepareReply& reply = replies[i];
    if (reply.segment_flow == kInvalidFlowId &&
        reply.contingency_flow == kInvalidFlowId) {
      continue;
    }
    AbortSegment ab;
    ab.txn = txn;
    ab.rid_segment = rids[i].abort_segment;
    ab.rid_contingency = rids[i].abort_contingency;
    ab.segment_flow = reply.segment_flow;
    ab.contingency_flow = reply.contingency_flow;
    const int domain = plan_.domain_of(sent[i].ingress);
    auto ack = member_abort(*slots_[domain], ab);
    MutexLock lock(fed_mu_);
    if (!ack.is_ok()) {
      if (transport_failure(ack.status())) ++stats_.poisoned_txns;
    } else if (!ack.value().ok) {
      ++stats_.ack_failures;
    }
  }
}

Status FederatedFront::release_service(FlowId flow) {
  FedFlowRecord rec;
  std::vector<RequestId> rids;
  {
    MutexLock lock(fed_mu_);
    auto it = flows_.find(flow);
    if (it == flows_.end()) {
      return Status::not_found("unknown federated flow " +
                               std::to_string(flow));
    }
    rec = it->second;
    flows_.erase(it);
    const std::size_t n = rec.inter ? rec.segments.size() : 1;
    for (std::size_t i = 0; i < n; ++i) rids.push_back(next_rid_++);
    ++stats_.releases;
  }
  Status failure = Status::ok();
  auto release_one = [&](int domain, FlowId member_flow, RequestId rid) {
    const Status s = member_release(*slots_[domain], member_flow, rid);
    if (!s.is_ok()) {
      if (failure.is_ok()) failure = s;
      MutexLock lock(fed_mu_);
      if (transport_failure(s)) ++stats_.poisoned_txns;
    }
  };
  if (!rec.inter) {
    release_one(rec.domain, rec.member_flow, rids[0]);
  } else {
    for (std::size_t i = 0; i < rec.segments.size(); ++i) {
      release_one(rec.segments[i].domain, rec.segments[i].flow, rids[i]);
    }
  }
  return failure;
}

// ---- audits & checkpointing ----

Result<std::vector<FederatedDigestReply>> FederatedFront::digests() {
  std::vector<FederatedDigestReply> out;
  for (auto& slot : slots_) {
    MutexLock lock(slot->member_mu_);
    auto d = slot->member->digest();
    if (!d.is_ok()) return d.status();
    out.push_back(d.value());
  }
  return out;
}

Result<WireBuffer> FederatedFront::snapshot() {
  // Quiesce the whole federation: coordinator lock, then every member lock
  // in index order (fed_mu_ ranks above the member mutexes).
  MutexLock fed_lock(fed_mu_);
  OrderedLockSet member_locks;
  for (auto& slot : slots_) member_locks.lock(slot->member_mu_);

  WireWriter w;
  w.u32(kFederationSnapshotMagic);
  w.u32(static_cast<std::uint32_t>(slots_.size()));
  w.u64(next_rid_);
  w.u64(next_txn_);
  w.i64(next_flow_);
  for (auto& slot : slots_) {
    auto frame = slot->member->snapshot();
    if (!frame.is_ok()) return frame.status();
    w.bytes(frame.value());
  }
  w.u32(static_cast<std::uint32_t>(flows_.size()));
  for (const auto& [fed_id, rec] : flows_) {
    w.i64(fed_id);
    w.u8(rec.inter ? 1 : 0);
    if (!rec.inter) {
      w.i64(rec.domain);
      w.i64(rec.member_flow);
    } else {
      w.u32(static_cast<std::uint32_t>(rec.segments.size()));
      for (const auto& seg : rec.segments) {
        w.i64(seg.domain);
        w.i64(seg.flow);
      }
    }
  }
  return w.take();
}

Status FederatedFront::restore(const WireBuffer& frame) {
  WireReader r(frame);
  auto magic = r.u32();
  if (!magic.is_ok()) return magic.status();
  if (magic.value() != kFederationSnapshotMagic) {
    return Status::invalid_argument("not a federation snapshot frame");
  }
  auto count = r.u32();
  if (!count.is_ok()) return count.status();
  if (count.value() != slots_.size()) {
    return Status::invalid_argument(
        "federation snapshot member count mismatch");
  }
  auto rid = r.u64();
  auto txn = r.u64();
  auto flow = r.i64();
  if (!rid.is_ok()) return rid.status();
  if (!txn.is_ok()) return txn.status();
  if (!flow.is_ok()) return flow.status();

  std::vector<WireBuffer> member_frames;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    auto bytes = r.bytes();
    if (!bytes.is_ok()) return bytes.status();
    member_frames.push_back(std::move(bytes).value());
  }
  auto nflows = r.u32();
  if (!nflows.is_ok()) return nflows.status();
  std::map<FlowId, FedFlowRecord> flows;
  for (std::uint32_t i = 0; i < nflows.value(); ++i) {
    auto fed_id = r.i64();
    auto inter = r.u8();
    if (!fed_id.is_ok()) return fed_id.status();
    if (!inter.is_ok()) return inter.status();
    if (inter.value() > 1) {
      return Status::invalid_argument("federation snapshot: bad inter flag");
    }
    FedFlowRecord rec;
    rec.inter = inter.value() == 1;
    if (!rec.inter) {
      auto domain = r.i64();
      auto member_flow = r.i64();
      if (!domain.is_ok()) return domain.status();
      if (!member_flow.is_ok()) return member_flow.status();
      if (domain.value() < 0 ||
          domain.value() >= static_cast<std::int64_t>(slots_.size())) {
        return Status::invalid_argument("federation snapshot: bad domain");
      }
      rec.domain = static_cast<int>(domain.value());
      rec.member_flow = member_flow.value();
    } else {
      auto nseg = r.u32();
      if (!nseg.is_ok()) return nseg.status();
      for (std::uint32_t s = 0; s < nseg.value(); ++s) {
        auto domain = r.i64();
        auto seg_flow = r.i64();
        if (!domain.is_ok()) return domain.status();
        if (!seg_flow.is_ok()) return seg_flow.status();
        if (domain.value() < 0 ||
            domain.value() >= static_cast<std::int64_t>(slots_.size())) {
          return Status::invalid_argument(
              "federation snapshot: bad segment domain");
        }
        rec.segments.push_back(SegmentBooking{
            static_cast<int>(domain.value()), seg_flow.value()});
      }
    }
    flows[fed_id.value()] = std::move(rec);
  }
  if (!r.exhausted()) {
    return Status::invalid_argument(
        "federation snapshot: trailing bytes after flow table");
  }

  MutexLock fed_lock(fed_mu_);
  OrderedLockSet member_locks;
  for (auto& slot : slots_) member_locks.lock(slot->member_mu_);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (Status s = slots_[i]->member->restore(member_frames[i]); !s.is_ok()) {
      return s;
    }
  }
  next_rid_ = rid.value();
  next_txn_ = txn.value();
  next_flow_ = flow.value();
  flows_ = std::move(flows);
  return Status::ok();
}

FederationStats FederatedFront::stats() const {
  MutexLock lock(fed_mu_);
  return stats_;
}

std::uint64_t FederatedFront::live_flows() const {
  MutexLock lock(fed_mu_);
  return flows_.size();
}

std::vector<RecordedOp> FederatedFront::member_ops(int domain) const {
  QOSBB_REQUIRE(domain >= 0 && domain < static_cast<int>(slots_.size()),
                "member_ops: domain out of range");
  MutexLock lock(slots_[domain]->member_mu_);
  return slots_[domain]->ops;
}

}  // namespace qosbb
