#include "federation/partition.h"

#include <algorithm>
#include <set>

#include "topo/builders.h"
#include "util/status.h"

namespace qosbb {

int FederationPlan::domain_of(const std::string& node) const {
  auto it = node_domain.find(node);
  QOSBB_REQUIRE(it != node_domain.end(),
                "FederationPlan: unknown node " + node);
  return it->second;
}

FederationPlan partition_topology(
    const DomainSpec& global, int num_domains,
    const std::function<int(const std::string&)>& domain_of_node) {
  QOSBB_REQUIRE(num_domains >= 1, "partition_topology: need >= 1 domain");
  FederationPlan plan;
  plan.global = global;
  plan.num_domains = num_domains;
  plan.members.resize(static_cast<std::size_t>(num_domains));
  for (auto& member : plan.members) member.l_max = global.l_max;

  for (const auto& node : global.nodes) {
    const int d = domain_of_node(node);
    QOSBB_REQUIRE(d >= 0 && d < num_domains,
                  "partition_topology: node " + node + " maps to domain " +
                      std::to_string(d) + " outside [0, " +
                      std::to_string(num_domains) + ")");
    plan.node_domain[node] = d;
  }

  // Links go to the home domain of their tail; cross-domain links also
  // become edges of the aggregate graph.
  for (const auto& link : global.links) {
    const int owner = plan.domain_of(link.from);
    const int head = plan.domain_of(link.to);
    plan.members[static_cast<std::size_t>(owner)].links.push_back(link);
    if (head != owner) {
      plan.boundaries.push_back(BoundaryLink{link.from, link.to, owner, head});
    }
  }

  // Member node lists: home nodes first (in global order), then mirrors —
  // nodes homed elsewhere that an owned link touches.
  for (int d = 0; d < num_domains; ++d) {
    auto& member = plan.members[static_cast<std::size_t>(d)];
    std::set<std::string> touched;
    for (const auto& link : member.links) {
      touched.insert(link.from);
      touched.insert(link.to);
    }
    QOSBB_REQUIRE(!member.links.empty(),
                  "partition_topology: domain " + std::to_string(d) +
                      " owns no links");
    for (const auto& node : global.nodes) {
      if (plan.node_domain.at(node) == d) member.nodes.push_back(node);
    }
    for (const auto& node : global.nodes) {
      if (plan.node_domain.at(node) != d && touched.count(node) != 0) {
        member.nodes.push_back(node);
      }
    }
  }
  return plan;
}

FederationPlan partition_multi_domain(const DomainSpec& global,
                                      int num_domains) {
  return partition_topology(global, num_domains, multi_domain_node_domain);
}

std::vector<PathSegment> segment_path(const FederationPlan& plan,
                                      const std::vector<std::string>& path) {
  QOSBB_REQUIRE(path.size() >= 2, "segment_path: need >= 2 nodes");
  std::vector<PathSegment> segments;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const int owner = plan.domain_of(path[i]);  // link ownership: tail node
    if (segments.empty() || segments.back().domain != owner) {
      PathSegment seg;
      seg.domain = owner;
      seg.nodes.push_back(path[i]);
      segments.push_back(std::move(seg));
    }
    segments.back().nodes.push_back(path[i + 1]);
    if (plan.domain_of(path[i + 1]) != owner) {
      segments.back().has_boundary = true;
      segments.back().boundary_from = path[i];
      segments.back().boundary_to = path[i + 1];
    }
  }
  // The boundary hop, when present, must be the segment's LAST link: its
  // head starts the next domain's segment, so anything after it would have
  // switched owner. Guard against pathological routes that re-enter.
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const auto& seg = segments[s];
    QOSBB_REQUIRE(!seg.has_boundary ||
                      seg.boundary_to == seg.nodes.back(),
                  "segment_path: path re-enters domain " +
                      std::to_string(seg.domain) + " after leaving it");
    QOSBB_REQUIRE(seg.has_boundary == (s + 1 < segments.size()),
                  "segment_path: inconsistent boundary structure");
  }
  return segments;
}

}  // namespace qosbb
