// Topology partitioner for the federated control plane (ROADMAP item 2).
//
// Splits one global DomainSpec into per-domain member sub-specs plus the
// inter-domain edge-aggregate graph. The assignment is by node: every node
// has a home domain, and a link is OWNED by the home domain of its `from`
// node (so a boundary link D<d>R -> D<d+1>L belongs to the upstream domain,
// which also performs the §4 contingency reservation on it). A member
// sub-spec carries its owned links plus every node they touch — including
// "mirror" nodes homed downstream, so the member can route and admit its
// segment of an inter-domain path entirely locally.
//
// Correctness contract (documented in DESIGN.md §14): partitions must be
// route-closed — for every provisioned node pair handed to a member, the
// member's local min-hop route must equal the corresponding segment of the
// global route. Chains of dumbbells (multi_domain_topology) satisfy this by
// construction because every node pair has a unique route.

#ifndef QOSBB_FEDERATION_PARTITION_H_
#define QOSBB_FEDERATION_PARTITION_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "topo/fig8.h"

namespace qosbb {

/// One inter-domain edge of the aggregate graph: a physical link whose
/// endpoints are homed in different domains. Owned (and booked) upstream.
struct BoundaryLink {
  std::string from;
  std::string to;
  int owner = -1;       ///< home domain of `from` — books the link
  int downstream = -1;  ///< home domain of `to`
};

/// The partition of a global topology into broker domains.
struct FederationPlan {
  DomainSpec global;
  int num_domains = 0;
  /// Per-domain sub-spec: owned links + all touched nodes (mirrors last).
  std::vector<DomainSpec> members;
  /// Home domain of every global node.
  std::map<std::string, int> node_domain;
  /// The edge-aggregate graph: every link crossing a domain boundary.
  std::vector<BoundaryLink> boundaries;

  int domain_of(const std::string& node) const;
};

/// Partition `global` by the node->domain assignment. Every node must map
/// into [0, num_domains); every domain must own at least one link.
FederationPlan partition_topology(
    const DomainSpec& global, int num_domains,
    const std::function<int(const std::string&)>& domain_of_node);

/// Convenience: partition a multi_domain_topology() spec along its encoded
/// D<d> domains.
FederationPlan partition_multi_domain(const DomainSpec& global,
                                      int num_domains);

/// One per-domain piece of a segmented global path.
struct PathSegment {
  int domain = -1;
  /// entry .. exit node sequence; when `has_boundary`, the exit node is the
  /// downstream mirror and the final hop is the boundary link.
  std::vector<std::string> nodes;
  bool has_boundary = false;
  std::string boundary_from;
  std::string boundary_to;
};

/// Split a global node path into maximal single-domain segments in path
/// order. A one-element result means the path is intra-domain.
std::vector<PathSegment> segment_path(const FederationPlan& plan,
                                      const std::vector<std::string>& path);

}  // namespace qosbb

#endif  // QOSBB_FEDERATION_PARTITION_H_
