// The federation coordinator: one front over a set of domain-scoped member
// brokers (tentpole of ROADMAP item "federated control plane").
//
// Every flow-service request is classified against the partition plan:
//
//   * intra-domain — the global route stays inside one domain; the request
//     is delegated WHOLE to the owning member's existing admission path, so
//     the decision (admit bit, rate, bound) is bit-identical to what a flat
//     single broker over the global topology would produce.
//   * inter-domain — the route is split into per-domain segments and
//     admitted via two-phase prepare/commit. Each member books a PINNED
//     segment reservation at the conservative federation rate
//
//         r* = max(ρ, [T_on·P + (h + K)·L] / [D_req − D_tot + T_on])
//
//     (h = global hop count, K = segment count; K = 1 recovers the flat
//     §3.1 formula — each boundary crossing re-shapes the flow, costing one
//     extra L/r* resynchronization term). Prepare additionally reserves a
//     §4-style contingency of (P − r*) on the segment's outgoing boundary
//     link — headroom for the downstream domain's decision lag — which
//     commit releases. Any prepare failure aborts every prepared segment
//     exactly. Because r* >= the flat broker's minimal feasible rate and
//     every segment admit re-checks the same per-link residuals, the
//     federation is CONSERVATIVE: it never admits a flow the flat broker
//     would reject (audited by federation/oracle.h).
//
// Inter-domain paths crossing a delay-based (VT-EDF) hop are rejected
// outright (kNoFeasibleRate): the Figure-4 scan needs the whole path's knot
// state, which no single member owns. Rejecting is trivially conservative.
//
// Transport & exactly-once: every member sub-operation carries a
// coordinator-allocated RequestId. Socket members sit behind RetryingClient
// (same-bytes re-send) and a durable qosbbd dedups rids, so a member crash
// mid-2PC never double-books or loses an acked admission. An operation
// whose transport budget is exhausted mid-transaction is counted in
// stats().poisoned_txns — the e2e gate asserts the count stays zero.
//
// Locking: fed_mu_ (coordinator bookkeeping) and one mutex per member slot
// (serializing calls into that member and appends to its audit log, so log
// order == the member's arrival order). fed_mu_ is ranked ABOVE every
// member mutex and is never held across a member call on the request path;
// snapshot/restore/digests take fed_mu_ then the member mutexes in index
// order (the one legitimate downward nesting).

#ifndef QOSBB_FEDERATION_FEDERATED_FRONT_H_
#define QOSBB_FEDERATION_FEDERATED_FRONT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "federation/member.h"
#include "federation/partition.h"
#include "net/server.h"
#include "topo/graph.h"
#include "util/sync.h"
#include "vtrs/delay_bounds.h"

namespace qosbb {

struct FederatedFrontOptions {
  /// Record every member sub-operation (as RecordedOps, in per-member
  /// arrival order) so audits can replay each member from scratch and
  /// compare digests (federation/oracle.h replay_member_ops).
  bool record_member_ops = false;
  /// First coordinator-allocated RequestId handed to members.
  RequestId first_rid = 1;
};

struct FederationStats {
  std::uint64_t requests = 0;
  std::uint64_t intra_requests = 0;
  std::uint64_t intra_admitted = 0;
  std::uint64_t inter_requests = 0;
  std::uint64_t inter_admitted = 0;
  /// Inter-domain rejects decided by the coordinator alone (no path, delay-
  /// based hop, infeasible r*) — no member was touched.
  std::uint64_t inter_rejected_local = 0;
  std::uint64_t prepares = 0;          ///< segment prepares attempted
  std::uint64_t prepare_failures = 0;  ///< member said no (clean reject)
  std::uint64_t aborts = 0;            ///< transactions rolled back
  std::uint64_t releases = 0;
  /// Member ops whose transport budget was exhausted mid-transaction: the
  /// member's state is unknown to the coordinator (possible leak). The
  /// chaos e2e gate asserts this stays zero.
  std::uint64_t poisoned_txns = 0;
  /// Commit/abort sub-ops the member acked with ok=false (should never
  /// happen: the flows were just created by this coordinator).
  std::uint64_t ack_failures = 0;
};

/// The decision for one federated request, with federation-level context
/// that a plain Result<Reservation> cannot carry.
struct FederatedOutcome {
  Result<Reservation> result = Status::rejected("unset");
  bool inter_domain = false;
  RejectReason reason = RejectReason::kNone;
  std::string detail;
  /// Inter-domain admit only: the pinned rate r* each segment booked, and
  /// how many segments the path was split into.
  BitsPerSecond segment_rate = 0.0;
  int segments = 0;
};

class FederatedFront {
 public:
  /// `members[i]` must serve plan.members[i] (same index = same domain).
  /// Members are borrowed, not owned.
  FederatedFront(FederationPlan plan, std::vector<FederationMember*> members,
                 FederatedFrontOptions options = {});

  FederatedFront(const FederatedFront&) = delete;
  FederatedFront& operator=(const FederatedFront&) = delete;

  /// Classify + admit. Thread-safe; the returned reservation's flow id is
  /// a FEDERATION id (release through release_service below).
  FederatedOutcome request_service(const FlowServiceRequest& request);
  /// Tear down a federated reservation (intra: one member release; inter:
  /// every segment's pinned reservation).
  Status release_service(FlowId flow);

  /// Per-member state digests, index-aligned with plan().members.
  Result<std::vector<FederatedDigestReply>> digests();
  /// Consistent cross-federation checkpoint: quiesces every member (all
  /// in-process), frames member snapshots + the coordinator's flow table
  /// and counters. Fails on socket members (their journal is their
  /// persistence).
  Result<WireBuffer> snapshot();
  /// Rebuild members + coordinator state from a snapshot() frame.
  Status restore(const WireBuffer& frame);

  const FederationPlan& plan() const { return plan_; }
  FederationStats stats() const;
  std::uint64_t live_flows() const;
  /// Copy of one member's recorded sub-op log (record_member_ops only).
  std::vector<RecordedOp> member_ops(int domain) const;

  /// The conservative federation rate r* for an inter-domain path (exposed
  /// for the oracle and tests). +infinity when D_req is unattainable.
  static BitsPerSecond inter_domain_segment_rate(const PathAbstract& path,
                                                 const TrafficProfile& p,
                                                 Seconds d_req,
                                                 int num_segments);

 private:
  struct SegmentBooking {
    int domain = -1;
    FlowId flow = kInvalidFlowId;  ///< member-local pinned segment flow
  };
  struct FedFlowRecord {
    bool inter = false;
    int domain = -1;                     ///< intra: owning member
    FlowId member_flow = kInvalidFlowId; ///< intra: member-local id
    std::vector<SegmentBooking> segments;  ///< inter
  };
  struct MemberSlot {
    explicit MemberSlot(FederationMember* m) : member(m) {}
    FederationMember* member;
    /// Serializes every call into this member AND the log append, so the
    /// log is exactly the member's arrival order.
    mutable Mutex member_mu_;
    std::vector<RecordedOp> ops GUARDED_BY(member_mu_);
  };
  /// Rids for one segment's worth of 2PC sub-ops.
  struct SegmentRids {
    RequestId prepare_segment, prepare_contingency;
    RequestId commit;
    RequestId abort_segment, abort_contingency;
  };

  FederatedOutcome admit_intra(const FlowServiceRequest& request, int domain);
  FederatedOutcome admit_inter(const FlowServiceRequest& request,
                               const std::vector<std::string>& route,
                               const std::vector<PathSegment>& segments);
  /// Abort every prepared segment in `booked` (best effort, all attempted).
  void abort_prepared(std::uint64_t txn,
                      const std::vector<PrepareSegment>& sent,
                      const std::vector<PrepareReply>& replies,
                      const std::vector<SegmentRids>& rids);

  // Per-member wrappers: hold the slot mutex across call + log append.
  Result<Reservation> member_admit(MemberSlot& slot,
                                   const FlowServiceRequest& request,
                                   RequestId rid);
  Status member_release(MemberSlot& slot, FlowId flow, RequestId rid);
  Result<PrepareReply> member_prepare(MemberSlot& slot,
                                      const PrepareSegment& request);
  Result<SegmentAck> member_commit(MemberSlot& slot,
                                   const CommitSegment& request);
  Result<SegmentAck> member_abort(MemberSlot& slot,
                                  const AbortSegment& request);

  FederationPlan plan_;
  Graph global_graph_;
  FederatedFrontOptions options_;
  std::vector<std::unique_ptr<MemberSlot>> slots_;

  mutable Mutex fed_mu_;
  RequestId next_rid_ GUARDED_BY(fed_mu_);
  std::uint64_t next_txn_ GUARDED_BY(fed_mu_) = 1;
  FlowId next_flow_ GUARDED_BY(fed_mu_) = 1;
  std::map<FlowId, FedFlowRecord> flows_ GUARDED_BY(fed_mu_);
  FederationStats stats_ GUARDED_BY(fed_mu_);
};

}  // namespace qosbb

#endif  // QOSBB_FEDERATION_FEDERATED_FRONT_H_
