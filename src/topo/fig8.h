// Declarative domain specifications and the paper's Figure-8 topology.
//
// A DomainSpec lists routers and unidirectional links with their scheduler
// policy, capacity, and propagation delay — the information the BB's node
// QoS state MIB holds about the data plane. Helpers instantiate a packet
// simulator Network from a spec and derive the routing graph.
//
// Figure 8 (Section 5): sources S1/S2 feed ingress I1/I2; core chain
// R2 -> R3 -> R4 -> R5 fans out to egress E1/E2. All core/egress links are
// 1.5 Mb/s with zero propagation delay; max packet 1500 B.
//   Setting A (rate-based only): every link runs C̸SVC.
//   Setting B (mixed): I1->R2, I2->R2, R2->R3, R5->E1 run C̸SVC;
//                      R3->R4, R4->R5, R5->E2 run VT-EDF.
// The IntServ/GS comparison replaces C̸SVC with VC and VT-EDF with RC-EDF.

#ifndef QOSBB_TOPO_FIG8_H_
#define QOSBB_TOPO_FIG8_H_

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "sched/scheduler.h"
#include "sim/network.h"
#include "topo/graph.h"
#include "util/units.h"

namespace qosbb {

/// Scheduler policy on a link, as recorded in the BB's node MIB.
enum class SchedPolicy {
  kCsvc,   // rate-based, core stateless
  kCjvc,   // rate-based, core stateless, non-work-conserving
  kVtEdf,  // delay-based, core stateless
  kVc,     // rate-based, stateful (IntServ baseline)
  kWfq,    // rate-based, stateful (IntServ baseline)
  kRcEdf,  // delay-based, stateful (IntServ baseline)
  kFifo,   // no guarantee
};

const char* sched_policy_name(SchedPolicy p);
bool is_rate_based(SchedPolicy p);
/// True for the schedulers that keep per-flow reservation state.
bool is_stateful(SchedPolicy p);

struct LinkSpec {
  std::string from;
  std::string to;
  BitsPerSecond capacity = 0.0;
  Seconds propagation_delay = 0.0;
  SchedPolicy policy = SchedPolicy::kCsvc;
  /// Packet buffer at the scheduler, bits. Defaults to unlimited (the
  /// paper's experiments never bound buffers); finite values make the BB
  /// include the per-hop backlog bound in its admission test.
  Bits buffer = std::numeric_limits<double>::infinity();
};

struct DomainSpec {
  std::vector<std::string> nodes;
  std::vector<LinkSpec> links;
  /// Domain-wide maximum packet size L^{P,max} (sets error terms Ψ = L/C).
  Bits l_max = 0.0;

  /// Routing graph (unit edge weights — min-hop routing).
  Graph to_graph() const;
  const LinkSpec& link(const std::string& from, const std::string& to) const;
};

/// Construct a Scheduler instance for a policy.
std::unique_ptr<Scheduler> make_scheduler(SchedPolicy policy,
                                          BitsPerSecond capacity, Bits l_max);

/// Instantiate all nodes and links of `spec` into `net`.
void build_network(const DomainSpec& spec, Network& net);

enum class Fig8Setting {
  kRateBasedOnly,  // Setting A
  kMixed,          // Setting B
};

/// The Figure-8 domain under the BB/VTRS data plane.
DomainSpec fig8_topology(Fig8Setting setting,
                         BitsPerSecond core_capacity = 1.5e6,
                         Bits l_max = 12000.0 /* 1500 B */);

/// The same domain with IntServ/GS stateful schedulers
/// (C̸SVC -> VC, VT-EDF -> RC-EDF).
DomainSpec fig8_gs_topology(Fig8Setting setting,
                            BitsPerSecond core_capacity = 1.5e6,
                            Bits l_max = 12000.0);

/// Node sequences of the two provisioned paths.
std::vector<std::string> fig8_path_s1();  // I1,R2,R3,R4,R5,E1 (h = 5)
std::vector<std::string> fig8_path_s2();  // I2,R2,R3,R4,R5,E2 (h = 5)

}  // namespace qosbb

#endif  // QOSBB_TOPO_FIG8_H_
