#include "topo/routing.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <set>

namespace qosbb {
namespace {

struct DijkstraState {
  std::vector<double> dist;
  std::vector<NodeIndex> prev;
};

DijkstraState dijkstra(const Graph& g, NodeIndex src) {
  const auto n = static_cast<std::size_t>(g.node_count());
  DijkstraState st{std::vector<double>(n, std::numeric_limits<double>::infinity()),
                   std::vector<NodeIndex>(n, kInvalidNode)};
  using Item = std::pair<double, NodeIndex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  st.dist[static_cast<std::size_t>(src)] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > st.dist[static_cast<std::size_t>(u)]) continue;
    for (EdgeIndex e : g.edges_from(u)) {
      const auto& edge = g.edge(e);
      const double nd = d + edge.weight;
      auto& dv = st.dist[static_cast<std::size_t>(edge.to)];
      // Strictly-better relaxations only: with equal costs the first-seen
      // (lowest-index) predecessor wins, making routing deterministic.
      if (nd < dv) {
        dv = nd;
        st.prev[static_cast<std::size_t>(edge.to)] = u;
        pq.emplace(nd, edge.to);
      }
    }
  }
  return st;
}

std::vector<NodeIndex> unwind(const DijkstraState& st, NodeIndex src,
                              NodeIndex dst) {
  std::vector<NodeIndex> path;
  for (NodeIndex v = dst; v != kInvalidNode; v = st.prev[static_cast<std::size_t>(v)]) {
    path.push_back(v);
    if (v == src) break;
  }
  if (path.back() != src) return {};
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

Result<std::vector<NodeIndex>> shortest_path(const Graph& g, NodeIndex src,
                                             NodeIndex dst) {
  QOSBB_REQUIRE(src >= 0 && src < g.node_count(), "shortest_path: bad src");
  QOSBB_REQUIRE(dst >= 0 && dst < g.node_count(), "shortest_path: bad dst");
  if (src == dst) return std::vector<NodeIndex>{src};
  const DijkstraState st = dijkstra(g, src);
  auto path = unwind(st, src, dst);
  if (path.empty()) {
    return Status::not_found("no path from " + g.name(src) + " to " +
                             g.name(dst));
  }
  return path;
}

Result<std::vector<std::string>> shortest_path(const Graph& g,
                                               const std::string& src,
                                               const std::string& dst) {
  const NodeIndex s = g.index(src);
  const NodeIndex d = g.index(dst);
  if (s == kInvalidNode) return Status::not_found("unknown node " + src);
  if (d == kInvalidNode) return Status::not_found("unknown node " + dst);
  auto r = shortest_path(g, s, d);
  if (!r.is_ok()) return r.status();
  std::vector<std::string> names;
  names.reserve(r.value().size());
  for (NodeIndex n : r.value()) names.push_back(g.name(n));
  return names;
}

namespace {

/// Dijkstra on g with some edges/nodes masked out; returns the node path
/// src -> dst or empty.
std::vector<NodeIndex> masked_shortest_path(
    const Graph& g, NodeIndex src, NodeIndex dst,
    const std::set<std::pair<NodeIndex, NodeIndex>>& banned_edges,
    const std::set<NodeIndex>& banned_nodes, double* cost_out) {
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<NodeIndex> prev(n, kInvalidNode);
  using Item = std::pair<double, NodeIndex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[static_cast<std::size_t>(src)] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (EdgeIndex e : g.edges_from(u)) {
      const auto& edge = g.edge(e);
      if (banned_nodes.contains(edge.to)) continue;
      if (banned_edges.contains({edge.from, edge.to})) continue;
      const double nd = d + edge.weight;
      auto& dv = dist[static_cast<std::size_t>(edge.to)];
      if (nd < dv) {
        dv = nd;
        prev[static_cast<std::size_t>(edge.to)] = u;
        pq.emplace(nd, edge.to);
      }
    }
  }
  if (std::isinf(dist[static_cast<std::size_t>(dst)])) return {};
  if (cost_out) *cost_out = dist[static_cast<std::size_t>(dst)];
  std::vector<NodeIndex> path;
  for (NodeIndex v = dst; v != kInvalidNode;
       v = prev[static_cast<std::size_t>(v)]) {
    path.push_back(v);
    if (v == src) break;
  }
  std::reverse(path.begin(), path.end());
  return path.front() == src ? path : std::vector<NodeIndex>{};
}

double path_cost(const Graph& g, const std::vector<NodeIndex>& path) {
  double c = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (EdgeIndex e : g.edges_from(path[i])) {
      if (g.edge(e).to == path[i + 1]) best = std::min(best, g.edge(e).weight);
    }
    c += best;
  }
  return c;
}

}  // namespace

std::vector<std::vector<NodeIndex>> k_shortest_paths(const Graph& g,
                                                     NodeIndex src,
                                                     NodeIndex dst, int k) {
  QOSBB_REQUIRE(src >= 0 && src < g.node_count(), "k_shortest: bad src");
  QOSBB_REQUIRE(dst >= 0 && dst < g.node_count(), "k_shortest: bad dst");
  QOSBB_REQUIRE(k >= 1, "k_shortest: k must be positive");
  std::vector<std::vector<NodeIndex>> result;
  auto first = masked_shortest_path(g, src, dst, {}, {}, nullptr);
  if (first.empty()) return result;
  result.push_back(std::move(first));

  // Candidate set ordered by (cost, path) for determinism.
  std::set<std::pair<double, std::vector<NodeIndex>>> candidates;
  while (static_cast<int>(result.size()) < k) {
    const auto& last = result.back();
    // Spur from every node of the previous k-shortest path.
    for (std::size_t i = 0; i + 1 < last.size(); ++i) {
      const std::vector<NodeIndex> root(last.begin(),
                                        last.begin() + static_cast<long>(i) + 1);
      std::set<std::pair<NodeIndex, NodeIndex>> banned_edges;
      for (const auto& p : result) {
        if (p.size() > i &&
            std::equal(root.begin(), root.end(), p.begin())) {
          banned_edges.insert({p[i], p[i + 1]});
        }
      }
      std::set<NodeIndex> banned_nodes(root.begin(), root.end() - 1);
      auto spur = masked_shortest_path(g, root.back(), dst, banned_edges,
                                       banned_nodes, nullptr);
      if (spur.empty()) continue;
      std::vector<NodeIndex> total(root.begin(), root.end() - 1);
      total.insert(total.end(), spur.begin(), spur.end());
      candidates.emplace(path_cost(g, total), std::move(total));
    }
    // Pop the cheapest unused candidate.
    bool advanced = false;
    while (!candidates.empty()) {
      auto it = candidates.begin();
      std::vector<NodeIndex> next = it->second;
      candidates.erase(it);
      if (std::find(result.begin(), result.end(), next) == result.end()) {
        result.push_back(std::move(next));
        advanced = true;
        break;
      }
    }
    if (!advanced) break;  // no more simple paths
  }
  return result;
}

std::vector<std::vector<std::string>> k_shortest_paths(
    const Graph& g, const std::string& src, const std::string& dst, int k) {
  const NodeIndex s = g.index(src);
  const NodeIndex d = g.index(dst);
  QOSBB_REQUIRE(s != kInvalidNode, "k_shortest: unknown node " + src);
  QOSBB_REQUIRE(d != kInvalidNode, "k_shortest: unknown node " + dst);
  std::vector<std::vector<std::string>> out;
  for (const auto& path : k_shortest_paths(g, s, d, k)) {
    std::vector<std::string> names;
    names.reserve(path.size());
    for (NodeIndex v : path) names.push_back(g.name(v));
    out.push_back(std::move(names));
  }
  return out;
}

std::vector<std::vector<NodeIndex>> shortest_path_tree(const Graph& g,
                                                       NodeIndex src) {
  QOSBB_REQUIRE(src >= 0 && src < g.node_count(), "shortest_path_tree: bad src");
  const DijkstraState st = dijkstra(g, src);
  std::vector<std::vector<NodeIndex>> out(
      static_cast<std::size_t>(g.node_count()));
  for (NodeIndex v = 0; v < g.node_count(); ++v) {
    out[static_cast<std::size_t>(v)] = unwind(st, src, v);
  }
  return out;
}

}  // namespace qosbb
