#include "topo/graph.h"

namespace qosbb {

NodeIndex Graph::add_node(const std::string& name) {
  QOSBB_REQUIRE(!index_.contains(name), "Graph: duplicate node " + name);
  const NodeIndex n = static_cast<NodeIndex>(names_.size());
  names_.push_back(name);
  index_.emplace(name, n);
  adjacency_.emplace_back();
  return n;
}

EdgeIndex Graph::add_edge(NodeIndex from, NodeIndex to, double weight) {
  QOSBB_REQUIRE(from >= 0 && from < node_count(), "Graph: bad from node");
  QOSBB_REQUIRE(to >= 0 && to < node_count(), "Graph: bad to node");
  QOSBB_REQUIRE(weight >= 0.0, "Graph: negative edge weight");
  const EdgeIndex e = static_cast<EdgeIndex>(edges_.size());
  edges_.push_back(Edge{from, to, weight});
  adjacency_[static_cast<std::size_t>(from)].push_back(e);
  return e;
}

EdgeIndex Graph::add_edge(const std::string& from, const std::string& to,
                          double weight) {
  const NodeIndex f = index(from);
  const NodeIndex t = index(to);
  QOSBB_REQUIRE(f != kInvalidNode, "Graph: unknown node " + from);
  QOSBB_REQUIRE(t != kInvalidNode, "Graph: unknown node " + to);
  return add_edge(f, t, weight);
}

const std::string& Graph::name(NodeIndex n) const {
  QOSBB_REQUIRE(n >= 0 && n < node_count(), "Graph: bad node index");
  return names_[static_cast<std::size_t>(n)];
}

NodeIndex Graph::index(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kInvalidNode : it->second;
}

const Graph::Edge& Graph::edge(EdgeIndex e) const {
  QOSBB_REQUIRE(e >= 0 && e < edge_count(), "Graph: bad edge index");
  return edges_[static_cast<std::size_t>(e)];
}

const std::vector<EdgeIndex>& Graph::edges_from(NodeIndex n) const {
  QOSBB_REQUIRE(n >= 0 && n < node_count(), "Graph: bad node index");
  return adjacency_[static_cast<std::size_t>(n)];
}

}  // namespace qosbb
