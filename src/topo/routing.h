// Path selection for the bandwidth broker's routing module.
//
// Dijkstra shortest paths over the domain graph. The BB uses this to pick a
// pinned path (e.g. an MPLS LSP, Section 2) for each new flow; the path then
// keys into the path QoS state MIB.

#ifndef QOSBB_TOPO_ROUTING_H_
#define QOSBB_TOPO_ROUTING_H_

#include <string>
#include <vector>

#include "topo/graph.h"
#include "util/status.h"

namespace qosbb {

/// Node sequence of a shortest path from `src` to `dst` (inclusive), or
/// kNotFound if unreachable. Deterministic tie-breaking by node index.
Result<std::vector<NodeIndex>> shortest_path(const Graph& g, NodeIndex src,
                                             NodeIndex dst);
Result<std::vector<std::string>> shortest_path(const Graph& g,
                                               const std::string& src,
                                               const std::string& dst);

/// All-pairs reachability helper: shortest-path node sequences from `src`
/// to every reachable node (for pre-provisioning path MIB entries).
std::vector<std::vector<NodeIndex>> shortest_path_tree(const Graph& g,
                                                       NodeIndex src);

/// Up to `k` loop-free shortest paths src -> dst in non-decreasing cost
/// order (Yen's algorithm). Returns fewer than k when the graph has fewer
/// distinct simple paths; empty when dst is unreachable. The BB's routing
/// module uses these as alternate-path candidates for widest-path
/// selection and admission fallback.
std::vector<std::vector<NodeIndex>> k_shortest_paths(const Graph& g,
                                                     NodeIndex src,
                                                     NodeIndex dst, int k);
std::vector<std::vector<std::string>> k_shortest_paths(
    const Graph& g, const std::string& src, const std::string& dst, int k);

}  // namespace qosbb

#endif  // QOSBB_TOPO_ROUTING_H_
