#include "topo/fig8.h"

#include "sched/cjvc.h"
#include "sched/csvc.h"
#include "sched/fifo.h"
#include "sched/rcedf.h"
#include "sched/vc.h"
#include "sched/vtedf.h"
#include "sched/wfq.h"
#include "util/status.h"

namespace qosbb {

const char* sched_policy_name(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kCsvc: return "CSVC";
    case SchedPolicy::kCjvc: return "CJVC";
    case SchedPolicy::kVtEdf: return "VT-EDF";
    case SchedPolicy::kVc: return "VC";
    case SchedPolicy::kWfq: return "WFQ";
    case SchedPolicy::kRcEdf: return "RC-EDF";
    case SchedPolicy::kFifo: return "FIFO";
  }
  return "?";
}

bool is_rate_based(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kCsvc:
    case SchedPolicy::kCjvc:
    case SchedPolicy::kVc:
    case SchedPolicy::kWfq:
    case SchedPolicy::kFifo:
      return true;
    case SchedPolicy::kVtEdf:
    case SchedPolicy::kRcEdf:
      return false;
  }
  return true;
}

bool is_stateful(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kVc:
    case SchedPolicy::kWfq:
    case SchedPolicy::kRcEdf:
      return true;
    default:
      return false;
  }
}

Graph DomainSpec::to_graph() const {
  Graph g;
  for (const auto& n : nodes) g.add_node(n);
  for (const auto& l : links) g.add_edge(l.from, l.to, 1.0);
  return g;
}

const LinkSpec& DomainSpec::link(const std::string& from,
                                 const std::string& to) const {
  for (const auto& l : links) {
    if (l.from == from && l.to == to) return l;
  }
  throw std::logic_error("DomainSpec: unknown link " + from + "->" + to);
}

std::unique_ptr<Scheduler> make_scheduler(SchedPolicy policy,
                                          BitsPerSecond capacity,
                                          Bits l_max) {
  switch (policy) {
    case SchedPolicy::kCsvc:
      return std::make_unique<CsvcScheduler>(capacity, l_max);
    case SchedPolicy::kCjvc:
      return std::make_unique<CjvcScheduler>(capacity, l_max);
    case SchedPolicy::kVtEdf:
      return std::make_unique<VtEdfScheduler>(capacity, l_max);
    case SchedPolicy::kVc:
      return std::make_unique<VcScheduler>(capacity, l_max);
    case SchedPolicy::kWfq:
      return std::make_unique<WfqScheduler>(capacity, l_max);
    case SchedPolicy::kRcEdf:
      return std::make_unique<RcEdfScheduler>(capacity, l_max);
    case SchedPolicy::kFifo:
      return std::make_unique<FifoScheduler>(capacity, l_max);
  }
  throw std::logic_error("make_scheduler: unknown policy");
}

void build_network(const DomainSpec& spec, Network& net) {
  for (const auto& n : spec.nodes) net.add_node(n);
  for (const auto& l : spec.links) {
    net.add_link(l.from, l.to, make_scheduler(l.policy, l.capacity, spec.l_max),
                 l.propagation_delay);
  }
}

namespace {

DomainSpec fig8_base(BitsPerSecond c, Bits l_max) {
  DomainSpec spec;
  spec.nodes = {"I1", "I2", "R2", "R3", "R4", "R5", "E1", "E2"};
  spec.l_max = l_max;
  auto add = [&](const char* from, const char* to) {
    spec.links.push_back(LinkSpec{from, to, c, 0.0, SchedPolicy::kCsvc});
  };
  add("I1", "R2");
  add("I2", "R2");
  add("R2", "R3");
  add("R3", "R4");
  add("R4", "R5");
  add("R5", "E1");
  add("R5", "E2");
  return spec;
}

void apply_mixed_setting(DomainSpec& spec) {
  // Setting B: R3->R4, R4->R5, R5->E2 are delay-based (Section 5).
  for (auto& l : spec.links) {
    const bool delay_based = (l.from == "R3" && l.to == "R4") ||
                             (l.from == "R4" && l.to == "R5") ||
                             (l.from == "R5" && l.to == "E2");
    if (delay_based) l.policy = SchedPolicy::kVtEdf;
  }
}

}  // namespace

DomainSpec fig8_topology(Fig8Setting setting, BitsPerSecond core_capacity,
                         Bits l_max) {
  DomainSpec spec = fig8_base(core_capacity, l_max);
  if (setting == Fig8Setting::kMixed) apply_mixed_setting(spec);
  return spec;
}

DomainSpec fig8_gs_topology(Fig8Setting setting, BitsPerSecond core_capacity,
                            Bits l_max) {
  DomainSpec spec = fig8_topology(setting, core_capacity, l_max);
  for (auto& l : spec.links) {
    l.policy = l.policy == SchedPolicy::kVtEdf ? SchedPolicy::kRcEdf
                                               : SchedPolicy::kVc;
  }
  return spec;
}

std::vector<std::string> fig8_path_s1() {
  return {"I1", "R2", "R3", "R4", "R5", "E1"};
}

std::vector<std::string> fig8_path_s2() {
  return {"I2", "R2", "R3", "R4", "R5", "E2"};
}

}  // namespace qosbb
