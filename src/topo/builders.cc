#include "topo/builders.h"

#include "util/status.h"

namespace qosbb {

DomainSpec chain_topology(const ChainOptions& options) {
  QOSBB_REQUIRE(options.hops >= 1, "chain_topology: need >= 1 hop");
  DomainSpec spec;
  spec.l_max = options.l_max;
  for (int i = 0; i <= options.hops; ++i) {
    spec.nodes.push_back(options.prefix + std::to_string(i));
  }
  for (int i = 0; i < options.hops; ++i) {
    LinkSpec l;
    l.from = spec.nodes[static_cast<std::size_t>(i)];
    l.to = spec.nodes[static_cast<std::size_t>(i) + 1];
    l.capacity = options.capacity;
    l.propagation_delay = options.propagation_delay;
    l.policy = options.policy;
    spec.links.push_back(std::move(l));
  }
  return spec;
}

std::vector<std::string> chain_path(const ChainOptions& options) {
  std::vector<std::string> path;
  for (int i = 0; i <= options.hops; ++i) {
    path.push_back(options.prefix + std::to_string(i));
  }
  return path;
}

DomainSpec dumbbell_topology(const DumbbellOptions& options) {
  QOSBB_REQUIRE(options.edge_pairs >= 1, "dumbbell: need >= 1 pair");
  DomainSpec spec;
  spec.l_max = options.l_max;
  spec.nodes = {"L", "R"};
  auto add_link = [&](std::string from, std::string to, BitsPerSecond c) {
    LinkSpec l;
    l.from = std::move(from);
    l.to = std::move(to);
    l.capacity = c;
    l.propagation_delay = options.propagation_delay;
    l.policy = options.policy;
    spec.links.push_back(std::move(l));
  };
  for (int k = 0; k < options.edge_pairs; ++k) {
    const std::string in = "I" + std::to_string(k);
    const std::string out = "E" + std::to_string(k);
    spec.nodes.push_back(in);
    spec.nodes.push_back(out);
    add_link(in, "L", options.access_capacity);
    add_link("R", out, options.access_capacity);
  }
  add_link("L", "R", options.bottleneck_capacity);
  return spec;
}

std::vector<std::string> dumbbell_path(int pair) {
  QOSBB_REQUIRE(pair >= 0, "dumbbell_path: negative pair");
  return {"I" + std::to_string(pair), "L", "R", "E" + std::to_string(pair)};
}

DomainSpec star_topology(const StarOptions& options) {
  QOSBB_REQUIRE(options.leaves >= 2, "star: need >= 2 leaves");
  DomainSpec spec;
  spec.l_max = options.l_max;
  spec.nodes = {"hub"};
  for (int k = 0; k < options.leaves; ++k) {
    const std::string host = "H" + std::to_string(k);
    spec.nodes.push_back(host);
    LinkSpec up;
    up.from = host;
    up.to = "hub";
    up.capacity = options.capacity;
    up.propagation_delay = options.propagation_delay;
    up.policy = options.policy;
    spec.links.push_back(up);
    LinkSpec down = up;
    down.from = "hub";
    down.to = host;
    spec.links.push_back(std::move(down));
  }
  return spec;
}

std::vector<std::string> star_path(int from_leaf, int to_leaf) {
  QOSBB_REQUIRE(from_leaf >= 0 && to_leaf >= 0 && from_leaf != to_leaf,
                "star_path: bad leaves");
  return {"H" + std::to_string(from_leaf), "hub",
          "H" + std::to_string(to_leaf)};
}

}  // namespace qosbb
