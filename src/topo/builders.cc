#include "topo/builders.h"

#include "util/status.h"

namespace qosbb {

DomainSpec chain_topology(const ChainOptions& options) {
  QOSBB_REQUIRE(options.hops >= 1, "chain_topology: need >= 1 hop");
  DomainSpec spec;
  spec.l_max = options.l_max;
  for (int i = 0; i <= options.hops; ++i) {
    spec.nodes.push_back(options.prefix + std::to_string(i));
  }
  for (int i = 0; i < options.hops; ++i) {
    LinkSpec l;
    l.from = spec.nodes[static_cast<std::size_t>(i)];
    l.to = spec.nodes[static_cast<std::size_t>(i) + 1];
    l.capacity = options.capacity;
    l.propagation_delay = options.propagation_delay;
    l.policy = options.policy;
    spec.links.push_back(std::move(l));
  }
  return spec;
}

std::vector<std::string> chain_path(const ChainOptions& options) {
  std::vector<std::string> path;
  for (int i = 0; i <= options.hops; ++i) {
    path.push_back(options.prefix + std::to_string(i));
  }
  return path;
}

DomainSpec dumbbell_topology(const DumbbellOptions& options) {
  QOSBB_REQUIRE(options.edge_pairs >= 1, "dumbbell: need >= 1 pair");
  DomainSpec spec;
  spec.l_max = options.l_max;
  spec.nodes = {"L", "R"};
  auto add_link = [&](std::string from, std::string to, BitsPerSecond c) {
    LinkSpec l;
    l.from = std::move(from);
    l.to = std::move(to);
    l.capacity = c;
    l.propagation_delay = options.propagation_delay;
    l.policy = options.policy;
    spec.links.push_back(std::move(l));
  };
  for (int k = 0; k < options.edge_pairs; ++k) {
    const std::string in = "I" + std::to_string(k);
    const std::string out = "E" + std::to_string(k);
    spec.nodes.push_back(in);
    spec.nodes.push_back(out);
    add_link(in, "L", options.access_capacity);
    add_link("R", out, options.access_capacity);
  }
  add_link("L", "R", options.bottleneck_capacity);
  return spec;
}

std::vector<std::string> dumbbell_path(int pair) {
  QOSBB_REQUIRE(pair >= 0, "dumbbell_path: negative pair");
  return {"I" + std::to_string(pair), "L", "R", "E" + std::to_string(pair)};
}

DomainSpec star_topology(const StarOptions& options) {
  QOSBB_REQUIRE(options.leaves >= 2, "star: need >= 2 leaves");
  DomainSpec spec;
  spec.l_max = options.l_max;
  spec.nodes = {"hub"};
  for (int k = 0; k < options.leaves; ++k) {
    const std::string host = "H" + std::to_string(k);
    spec.nodes.push_back(host);
    LinkSpec up;
    up.from = host;
    up.to = "hub";
    up.capacity = options.capacity;
    up.propagation_delay = options.propagation_delay;
    up.policy = options.policy;
    spec.links.push_back(up);
    LinkSpec down = up;
    down.from = "hub";
    down.to = host;
    spec.links.push_back(std::move(down));
  }
  return spec;
}

std::vector<std::string> star_path(int from_leaf, int to_leaf) {
  QOSBB_REQUIRE(from_leaf >= 0 && to_leaf >= 0 && from_leaf != to_leaf,
                "star_path: bad leaves");
  return {"H" + std::to_string(from_leaf), "hub",
          "H" + std::to_string(to_leaf)};
}

namespace {
std::string md_name(int domain, const char* role, int index = -1) {
  std::string name = "D" + std::to_string(domain) + role;
  if (index >= 0) name += std::to_string(index);
  return name;
}
}  // namespace

DomainSpec multi_domain_topology(const MultiDomainOptions& options) {
  QOSBB_REQUIRE(options.domains >= 1, "multi_domain: need >= 1 domain");
  QOSBB_REQUIRE(options.edge_pairs >= 1, "multi_domain: need >= 1 pair");
  DomainSpec spec;
  spec.l_max = options.l_max;
  auto add_link = [&](std::string from, std::string to, BitsPerSecond c,
                      SchedPolicy policy) {
    LinkSpec l;
    l.from = std::move(from);
    l.to = std::move(to);
    l.capacity = c;
    l.propagation_delay = options.propagation_delay;
    l.policy = policy;
    spec.links.push_back(std::move(l));
  };
  for (int d = 0; d < options.domains; ++d) {
    const std::string left = md_name(d, "L");
    const std::string right = md_name(d, "R");
    spec.nodes.push_back(left);
    spec.nodes.push_back(right);
    for (int k = 0; k < options.edge_pairs; ++k) {
      const std::string in = md_name(d, "I", k);
      const std::string out = md_name(d, "E", k);
      spec.nodes.push_back(in);
      spec.nodes.push_back(out);
      add_link(in, left, options.access_capacity, options.policy);
      add_link(right, out, options.access_capacity, options.policy);
    }
    add_link(left, right, options.core_capacity,
             d == options.delay_based_domain ? SchedPolicy::kVtEdf
                                             : options.policy);
    if (d + 1 < options.domains) {
      add_link(right, md_name(d + 1, "L"), options.boundary_capacity,
               options.policy);
    }
  }
  return spec;
}

std::vector<std::string> multi_domain_path(int from_domain, int from_pair,
                                           int to_domain, int to_pair) {
  QOSBB_REQUIRE(from_domain >= 0 && to_domain >= from_domain &&
                    from_pair >= 0 && to_pair >= 0,
                "multi_domain_path: bad endpoints");
  std::vector<std::string> path;
  path.push_back(md_name(from_domain, "I", from_pair));
  for (int d = from_domain; d <= to_domain; ++d) {
    path.push_back(md_name(d, "L"));
    path.push_back(md_name(d, "R"));
  }
  path.push_back(md_name(to_domain, "E", to_pair));
  return path;
}

int multi_domain_node_domain(const std::string& node) {
  QOSBB_REQUIRE(node.size() >= 2 && node[0] == 'D',
                "multi_domain_node_domain: not a D<d>... name: " + node);
  std::size_t end = 1;
  while (end < node.size() && node[end] >= '0' && node[end] <= '9') ++end;
  QOSBB_REQUIRE(end > 1 && end < node.size(),
                "multi_domain_node_domain: malformed name: " + node);
  return std::stoi(node.substr(1, end - 1));
}

}  // namespace qosbb
