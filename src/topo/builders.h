// Parametric domain builders beyond the paper's Figure-8 topology.
//
// Useful for scaling studies and property tests: linear chains, dumbbells
// (N ingresses and N egresses sharing one bottleneck), and stars. All
// builders produce plain DomainSpecs consumable by the broker, the GS
// baseline, and the packet simulator alike.

#ifndef QOSBB_TOPO_BUILDERS_H_
#define QOSBB_TOPO_BUILDERS_H_

#include <string>
#include <vector>

#include "topo/fig8.h"

namespace qosbb {

struct ChainOptions {
  int hops = 5;
  BitsPerSecond capacity = 1.5e6;
  Seconds propagation_delay = 0.0;
  SchedPolicy policy = SchedPolicy::kCsvc;
  Bits l_max = 12000.0;
  std::string prefix = "N";
};

/// Linear chain N0 -> N1 -> ... -> N<hops>. The canonical single-path
/// domain; `chain_path` returns its full node sequence.
DomainSpec chain_topology(const ChainOptions& options);
std::vector<std::string> chain_path(const ChainOptions& options);

struct DumbbellOptions {
  int edge_pairs = 4;  ///< ingress/egress pairs I<k> / E<k>
  BitsPerSecond access_capacity = 10e6;
  BitsPerSecond bottleneck_capacity = 1.5e6;
  Seconds propagation_delay = 0.0;
  SchedPolicy policy = SchedPolicy::kCsvc;
  Bits l_max = 12000.0;
};

/// Dumbbell: I0..I<n-1> -> L -> R -> E0..E<n-1>; every Ik->Ek path crosses
/// the single L->R bottleneck. The classic contention topology.
DomainSpec dumbbell_topology(const DumbbellOptions& options);
std::vector<std::string> dumbbell_path(int pair);

struct StarOptions {
  int leaves = 4;  ///< hosts H0..H<n-1> around the hub
  BitsPerSecond capacity = 1.5e6;
  Seconds propagation_delay = 0.0;
  SchedPolicy policy = SchedPolicy::kCsvc;
  Bits l_max = 12000.0;
};

/// Star: every leaf connects to and from the hub; Hi -> hub -> Hj paths.
DomainSpec star_topology(const StarOptions& options);
std::vector<std::string> star_path(int from_leaf, int to_leaf);

}  // namespace qosbb

#endif  // QOSBB_TOPO_BUILDERS_H_
