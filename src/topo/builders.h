// Parametric domain builders beyond the paper's Figure-8 topology.
//
// Useful for scaling studies and property tests: linear chains, dumbbells
// (N ingresses and N egresses sharing one bottleneck), and stars. All
// builders produce plain DomainSpecs consumable by the broker, the GS
// baseline, and the packet simulator alike.

#ifndef QOSBB_TOPO_BUILDERS_H_
#define QOSBB_TOPO_BUILDERS_H_

#include <string>
#include <vector>

#include "topo/fig8.h"

namespace qosbb {

struct ChainOptions {
  int hops = 5;
  BitsPerSecond capacity = 1.5e6;
  Seconds propagation_delay = 0.0;
  SchedPolicy policy = SchedPolicy::kCsvc;
  Bits l_max = 12000.0;
  std::string prefix = "N";
};

/// Linear chain N0 -> N1 -> ... -> N<hops>. The canonical single-path
/// domain; `chain_path` returns its full node sequence.
DomainSpec chain_topology(const ChainOptions& options);
std::vector<std::string> chain_path(const ChainOptions& options);

struct DumbbellOptions {
  int edge_pairs = 4;  ///< ingress/egress pairs I<k> / E<k>
  BitsPerSecond access_capacity = 10e6;
  BitsPerSecond bottleneck_capacity = 1.5e6;
  Seconds propagation_delay = 0.0;
  SchedPolicy policy = SchedPolicy::kCsvc;
  Bits l_max = 12000.0;
};

/// Dumbbell: I0..I<n-1> -> L -> R -> E0..E<n-1>; every Ik->Ek path crosses
/// the single L->R bottleneck. The classic contention topology.
DomainSpec dumbbell_topology(const DumbbellOptions& options);
std::vector<std::string> dumbbell_path(int pair);

struct StarOptions {
  int leaves = 4;  ///< hosts H0..H<n-1> around the hub
  BitsPerSecond capacity = 1.5e6;
  Seconds propagation_delay = 0.0;
  SchedPolicy policy = SchedPolicy::kCsvc;
  Bits l_max = 12000.0;
};

/// Star: every leaf connects to and from the hub; Hi -> hub -> Hj paths.
DomainSpec star_topology(const StarOptions& options);
std::vector<std::string> star_path(int from_leaf, int to_leaf);

struct MultiDomainOptions {
  int domains = 3;     ///< D0 .. D<domains-1>, chained left to right
  int edge_pairs = 4;  ///< per-domain ingress/egress pairs D<d>I<k> / D<d>E<k>
  BitsPerSecond access_capacity = 10e6;
  BitsPerSecond core_capacity = 1.5e6;      ///< D<d>L -> D<d>R
  BitsPerSecond boundary_capacity = 1.5e6;  ///< D<d>R -> D<d+1>L
  Seconds propagation_delay = 0.0;
  SchedPolicy policy = SchedPolicy::kCsvc;
  Bits l_max = 12000.0;
  /// When >= 0, that domain's core link D<d>L -> D<d>R runs VT-EDF instead
  /// of C̸SVC — exercises the federation's delay-based-hop handling (intra
  /// requests take the §3.2 path; inter requests crossing it are rejected).
  int delay_based_domain = -1;
};

/// Chain of dumbbells: per domain d the nodes D<d>I<k> -> D<d>L -> D<d>R ->
/// D<d>E<k>, with boundary links D<d>R -> D<d+1>L stitching adjacent
/// domains. Every node pair has a unique min-hop route, so any partition
/// along domain lines is route-closed: a member broker routing a sub-path
/// locally reproduces exactly the global route's segment.
DomainSpec multi_domain_topology(const MultiDomainOptions& options);

/// Global node sequence from D<fd>I<fp> to D<td>E<tp> (fd <= td).
std::vector<std::string> multi_domain_path(int from_domain, int from_pair,
                                           int to_domain, int to_pair);

/// Home domain encoded in a multi-domain node name ("D12L" -> 12).
int multi_domain_node_domain(const std::string& node);

}  // namespace qosbb

#endif  // QOSBB_TOPO_BUILDERS_H_
