// Directed graph of the network domain, as maintained by the bandwidth
// broker's routing module (Section 2: "The routing module peers with routers
// to obtain the topology information of the network domain").

#ifndef QOSBB_TOPO_GRAPH_H_
#define QOSBB_TOPO_GRAPH_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"
#include "util/units.h"

namespace qosbb {

using NodeIndex = int;
using EdgeIndex = int;
constexpr NodeIndex kInvalidNode = -1;

class Graph {
 public:
  struct Edge {
    NodeIndex from;
    NodeIndex to;
    double weight;  // routing metric (hops by default)
  };

  /// Adds a node; duplicate names are a contract violation.
  NodeIndex add_node(const std::string& name);
  /// Adds a directed edge. Both endpoints must exist.
  EdgeIndex add_edge(NodeIndex from, NodeIndex to, double weight = 1.0);
  EdgeIndex add_edge(const std::string& from, const std::string& to,
                     double weight = 1.0);

  int node_count() const { return static_cast<int>(names_.size()); }
  int edge_count() const { return static_cast<int>(edges_.size()); }
  const std::string& name(NodeIndex n) const;
  /// Index for a name; kInvalidNode if absent.
  NodeIndex index(const std::string& name) const;
  const Edge& edge(EdgeIndex e) const;
  const std::vector<EdgeIndex>& edges_from(NodeIndex n) const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, NodeIndex> index_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeIndex>> adjacency_;
};

}  // namespace qosbb

#endif  // QOSBB_TOPO_GRAPH_H_
