#include "util/backoff.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace qosbb {

Backoff::Backoff(BackoffPolicy policy, Rng rng)
    : policy_(policy), rng_(std::move(rng)) {
  if (!(policy_.base > 0.0) || !(policy_.cap >= policy_.base) ||
      !(policy_.multiplier >= 1.0) || policy_.jitter < 0.0 ||
      policy_.jitter > 1.0) {
    throw std::invalid_argument("Backoff: ill-formed policy");
  }
}

Seconds Backoff::next() {
  const std::uint32_t k = std::min(attempts_, policy_.max_retries);
  if (attempts_ < policy_.max_retries) ++attempts_;
  // ceiling = min(cap, base * multiplier^k), computed in log space to dodge
  // overflow for large k.
  const double grown =
      policy_.base * std::exp(static_cast<double>(k) *
                              std::log(policy_.multiplier));
  const Seconds ceiling = std::min(policy_.cap, grown);
  if (policy_.jitter == 0.0) return ceiling;
  const Seconds fixed = ceiling * (1.0 - policy_.jitter);
  return fixed + rng_.uniform(0.0, ceiling * policy_.jitter);
}

}  // namespace qosbb
