#include "util/backoff.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace qosbb {

Backoff::Backoff(BackoffPolicy policy, Rng rng)
    : policy_(policy), rng_(std::move(rng)) {
  if (!(policy_.base > 0.0) || !(policy_.cap >= policy_.base) ||
      !(policy_.multiplier >= 1.0) || policy_.jitter < 0.0 ||
      policy_.jitter > 1.0) {
    throw std::invalid_argument("Backoff: ill-formed policy");
  }
}

Seconds Backoff::next() {
  const std::uint32_t k = std::min(attempts_, policy_.max_retries);
  if (attempts_ < policy_.max_retries) ++attempts_;
  // ceiling = min(cap, base * multiplier^k), computed in log space to dodge
  // overflow for large k.
  const double grown =
      policy_.base * std::exp(static_cast<double>(k) *
                              std::log(policy_.multiplier));
  const Seconds ceiling = std::min(policy_.cap, grown);
  if (policy_.jitter == 0.0) return ceiling;
  const Seconds fixed = ceiling * (1.0 - policy_.jitter);
  const Seconds jittered = fixed + rng_.uniform(0.0, ceiling * policy_.jitter);
  // Full jitter may draw ~0. A zero delay on the SECOND and later retries
  // defeats the point of backing off (the retry storm the jitter exists to
  // break up), so floor those at a small fraction of the base delay. The
  // first retry may still fire immediately — that is the fast-path retry.
  if (k == 0) return jittered;
  return std::max(jittered, policy_.base * 0.1);
}

}  // namespace qosbb
