// Piecewise-linear functions on [0, ∞).
//
// Network-calculus objects in this library — dual-token-bucket arrival
// envelopes E(t) = min{Pt + L, ρt + σ}, service curves Ct, and fluid queue
// backlogs — are piecewise linear. This class provides the small algebra the
// admission algorithms and the fluid edge model need: evaluation, addition,
// minimum, horizontal/vertical shifts, and the supremum of f(t) − g(t) over
// an interval (worst-case backlog).

#ifndef QOSBB_UTIL_PIECEWISE_LINEAR_H_
#define QOSBB_UTIL_PIECEWISE_LINEAR_H_

#include <string>
#include <vector>

namespace qosbb {

/// A continuous piecewise-linear function defined by breakpoints
/// (x_0=0, y_0), (x_1, y_1), ... with slope `final_slope` after the last
/// breakpoint. Breakpoints are strictly increasing in x.
class PiecewiseLinear {
 public:
  struct Point {
    double x;
    double y;
  };

  /// The zero function.
  PiecewiseLinear();
  /// f(t) = value0 + slope·t.
  static PiecewiseLinear affine(double value0, double slope);
  /// From explicit breakpoints; points must start at x=0 and be strictly
  /// increasing in x. `final_slope` extends beyond the last point.
  static PiecewiseLinear from_points(std::vector<Point> points,
                                     double final_slope);
  /// Dual-token-bucket envelope E(t) = min{P·t + burst_peak, rho·t + sigma}
  /// for t > 0 and E(0) = 0 convention is NOT applied here; this returns the
  /// right-continuous envelope with E(0) = min{burst_peak, sigma}.
  static PiecewiseLinear dual_token_bucket(double sigma, double rho,
                                           double peak, double burst_peak);

  double operator()(double x) const;
  double final_slope() const { return final_slope_; }
  const std::vector<Point>& points() const { return points_; }

  PiecewiseLinear operator+(const PiecewiseLinear& other) const;
  PiecewiseLinear operator-(const PiecewiseLinear& other) const;
  /// Pointwise minimum. Requires both functions to be concave for the result
  /// to remain valid under this representation? No — min of PL is PL; this
  /// computes the exact pointwise min including interior crossings.
  static PiecewiseLinear min(const PiecewiseLinear& a,
                             const PiecewiseLinear& b);
  static PiecewiseLinear max(const PiecewiseLinear& a,
                             const PiecewiseLinear& b);

  /// sup_{x in [lo, hi]} f(x). hi may be +infinity; result may be +infinity.
  double sup(double lo, double hi) const;
  /// First x >= from with f(x) <= 0, or +infinity if none (requires the
  /// function to eventually stay positive or become non-positive; correct
  /// for any PL function).
  double first_nonpositive(double from) const;

  std::string to_string() const;

 private:
  std::vector<Point> points_;  // first point always has x == 0
  double final_slope_;
};

}  // namespace qosbb

#endif  // QOSBB_UTIL_PIECEWISE_LINEAR_H_
