// Online statistics used by simulator meters and benchmark harnesses.

#ifndef QOSBB_UTIL_STATS_H_
#define QOSBB_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace qosbb {

/// Welford online mean/variance plus min/max. O(1) per sample.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  std::string summary() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [lo, hi); samples outside are clamped into the
/// edge bins. Used for delay distributions in the packet simulator.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const { return total_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  /// Linear-interpolated quantile in [0,1]; requires at least one sample.
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::size_t total_ = 0;
};

/// Time-weighted average of a piecewise-constant signal, e.g. link
/// utilization or reserved bandwidth over a simulation run.
class TimeWeightedMean {
 public:
  /// Record that the signal takes value `value` starting at time `t`.
  /// Times must be non-decreasing.
  void update(double t, double value);
  /// Close the window at time `t` and return the time-weighted mean over
  /// [first_update_time, t].
  double finish(double t);
  double mean_so_far(double t) const;

 private:
  bool started_ = false;
  double last_t_ = 0.0;
  double last_v_ = 0.0;
  double area_ = 0.0;
  double t0_ = 0.0;
};

}  // namespace qosbb

#endif  // QOSBB_UTIL_STATS_H_
