#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/status.h"

namespace qosbb {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats(); }

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

std::string RunningStats::summary() const {
  std::ostringstream os;
  os << "n=" << n_ << " mean=" << mean() << " sd=" << stddev()
     << " min=" << min() << " max=" << max();
  return os.str();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  QOSBB_REQUIRE(hi > lo, "Histogram: hi must exceed lo");
  QOSBB_REQUIRE(bins > 0, "Histogram: need at least one bin");
}

void Histogram::add(double x) {
  std::ptrdiff_t i =
      static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width_));
  i = std::clamp<std::ptrdiff_t>(i, 0,
                                 static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(i)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const {
  QOSBB_REQUIRE(total_ > 0, "Histogram::quantile on empty histogram");
  QOSBB_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q outside [0,1]");
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] == 0 ? 0.0
                          : (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

void TimeWeightedMean::update(double t, double value) {
  if (!started_) {
    started_ = true;
    t0_ = t;
  } else {
    QOSBB_REQUIRE(t >= last_t_, "TimeWeightedMean: time went backwards");
    area_ += last_v_ * (t - last_t_);
  }
  last_t_ = t;
  last_v_ = value;
}

double TimeWeightedMean::mean_so_far(double t) const {
  if (!started_ || t <= t0_) return 0.0;
  const double area = area_ + last_v_ * (t - last_t_);
  return area / (t - t0_);
}

double TimeWeightedMean::finish(double t) {
  const double m = mean_so_far(t);
  *this = TimeWeightedMean();
  return m;
}

}  // namespace qosbb
