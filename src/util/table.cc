#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/status.h"

namespace qosbb {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  QOSBB_REQUIRE(!header_.empty(), "TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  QOSBB_REQUIRE(row.size() == header_.size(),
                "TextTable: row width mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::fmt_int(long long v) { return std::to_string(v); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace qosbb
