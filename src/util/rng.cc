#include "util/rng.h"

#include "util/status.h"

namespace qosbb {

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  QOSBB_REQUIRE(lo <= hi, "uniform: lo > hi");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  QOSBB_REQUIRE(lo <= hi, "uniform_int: lo > hi");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::exponential(double mean) {
  QOSBB_REQUIRE(mean > 0.0, "exponential: mean must be positive");
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

std::int64_t Rng::poisson(double mean) {
  QOSBB_REQUIRE(mean >= 0.0, "poisson: mean must be non-negative");
  if (mean == 0.0) return 0;
  return std::poisson_distribution<std::int64_t>(mean)(engine_);
}

bool Rng::bernoulli(double p) {
  QOSBB_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli: p outside [0,1]");
  return std::bernoulli_distribution(p)(engine_);
}

Rng Rng::fork() {
  // splitmix-style decorrelation of a child seed.
  std::uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return Rng(z ^ (z >> 31));
}

}  // namespace qosbb
