// Jittered exponential backoff for at-least-once signaling clients.
//
// An edge router retrying a lost request to the bandwidth broker must not
// hammer it in lockstep with every other edge (Section 2.2's signaling path
// is a single logical server). The standard remedy is capped exponential
// backoff with full jitter: the k-th retry sleeps uniform(0, min(cap,
// base * 2^k)). Deterministic given its Rng, so the fuzz harness and tests
// can assert exact schedules.

#ifndef QOSBB_UTIL_BACKOFF_H_
#define QOSBB_UTIL_BACKOFF_H_

#include <cstdint>

#include "util/rng.h"
#include "util/units.h"

namespace qosbb {

struct BackoffPolicy {
  Seconds base = 0.050;   ///< first-retry ceiling
  Seconds cap = 5.0;      ///< per-delay ceiling after growth
  double multiplier = 2.0;
  std::uint32_t max_retries = 8;  ///< exhausted() after this many next()s
  /// 1.0 = full jitter (uniform in [0, ceiling]); 0.0 = deterministic
  /// ceiling. Values between blend: delay = ceiling*(1-j) + uniform(0,
  /// ceiling*j).
  double jitter = 1.0;
};

/// One retry schedule. Not thread-safe; make one per in-flight request.
class Backoff {
 public:
  Backoff(BackoffPolicy policy, Rng rng);

  /// Delay to sleep before the next attempt. Grows exponentially (capped),
  /// jittered per the policy. Calling past exhaustion keeps returning the
  /// capped delay. Never exceeds policy.cap; from the second retry on the
  /// jittered draw is floored at base/10 so it is never zero (a zero sleep
  /// would re-synchronize the retry storm the jitter exists to break up).
  Seconds next();

  /// True once max_retries delays have been handed out.
  bool exhausted() const { return attempts_ >= policy_.max_retries; }
  std::uint32_t attempts() const { return attempts_; }
  void reset() { attempts_ = 0; }

  const BackoffPolicy& policy() const { return policy_; }

 private:
  BackoffPolicy policy_;
  Rng rng_;
  std::uint32_t attempts_ = 0;
};

}  // namespace qosbb

#endif  // QOSBB_UTIL_BACKOFF_H_
