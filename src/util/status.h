// Minimal Status / Result<T> types.
//
// Per the C++ Core Guidelines (E.*, I.10): recoverable outcomes — an
// admission rejection, an infeasible reservation, a missing path — are
// ordinary values, not exceptions. Exceptions are reserved for contract
// violations, which we check with QOSBB_REQUIRE.

#ifndef QOSBB_UTIL_STATUS_H_
#define QOSBB_UTIL_STATUS_H_

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace qosbb {

enum class StatusCode {
  kOk = 0,
  kRejected,         // admission control says no (normal outcome)
  kNotFound,         // unknown flow/path/node id
  kInvalidArgument,  // caller supplied an ill-formed request
  kFailedPrecondition,
  kInternal,
  kUnavailable,      // transiently impossible; retry after state settles
  kTruncated,        // input ended mid-field (vs. structurally corrupt)
  kDataLoss,         // durable state is corrupt / unrecoverable
  kNeedMoreData,     // streaming input: frame incomplete, wait for bytes
};

/// Human-readable name for a StatusCode.
constexpr const char* status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kRejected: return "REJECTED";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kTruncated: return "TRUNCATED";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kNeedMoreData: return "NEED_MORE_DATA";
  }
  return "UNKNOWN";
}

/// A status code plus an optional diagnostic message. [[nodiscard]] at
/// class level: every function returning a Status participates, so a
/// dropped error is a compile error (-Werror=unused-result) on every row.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }
  static Status rejected(std::string msg) {
    return Status(StatusCode::kRejected, std::move(msg));
  }
  static Status not_found(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status invalid_argument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status failed_precondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status truncated(std::string msg) {
    return Status(StatusCode::kTruncated, std::move(msg));
  }
  static Status data_loss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status need_more_data(std::string msg) {
    return Status(StatusCode::kNeedMoreData, std::move(msg));
  }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    std::string s = status_code_name(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. `value()` on an error is a
/// contract violation and throws.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {    // NOLINT(google-explicit-constructor)
    if (std::get<Status>(v_).is_ok()) {
      throw std::logic_error("Result constructed from OK status without value");
    }
  }

  bool is_ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& {
    require_ok();
    return std::get<T>(v_);
  }
  T& value() & {
    require_ok();
    return std::get<T>(v_);
  }
  T&& value() && {
    require_ok();
    return std::get<T>(std::move(v_));
  }
  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(v_);
  }

  /// Value if OK, otherwise `fallback`.
  T value_or(T fallback) const {
    return is_ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  void require_ok() const {
    if (!is_ok()) {
      throw std::logic_error("Result::value() on error: " +
                             std::get<Status>(v_).to_string());
    }
  }
  std::variant<T, Status> v_;
};

/// Contract check: throws std::logic_error on violation. Used for caller
/// contract enforcement in public APIs (I.5/I.6 in the Core Guidelines).
#define QOSBB_REQUIRE(cond, msg)                                  \
  do {                                                            \
    if (!(cond)) {                                                \
      throw std::logic_error(std::string("QOSBB_REQUIRE failed: ") + (msg)); \
    }                                                             \
  } while (0)

}  // namespace qosbb

#endif  // QOSBB_UTIL_STATUS_H_
