#include "util/piecewise_linear.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/status.h"

namespace qosbb {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Merge the breakpoint x-coordinates of two PL functions.
std::vector<double> merged_knots(const PiecewiseLinear& a,
                                 const PiecewiseLinear& b) {
  std::vector<double> xs;
  xs.reserve(a.points().size() + b.points().size());
  for (const auto& p : a.points()) xs.push_back(p.x);
  for (const auto& p : b.points()) xs.push_back(p.x);
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end(),
                       [](double u, double v) { return u == v; }),
           xs.end());
  return xs;
}

}  // namespace

PiecewiseLinear::PiecewiseLinear() : points_{{0.0, 0.0}}, final_slope_(0.0) {}

PiecewiseLinear PiecewiseLinear::affine(double value0, double slope) {
  PiecewiseLinear f;
  f.points_ = {{0.0, value0}};
  f.final_slope_ = slope;
  return f;
}

PiecewiseLinear PiecewiseLinear::from_points(std::vector<Point> points,
                                             double final_slope) {
  QOSBB_REQUIRE(!points.empty(), "from_points: need at least one point");
  QOSBB_REQUIRE(points.front().x == 0.0, "from_points: must start at x=0");
  for (std::size_t i = 1; i < points.size(); ++i) {
    QOSBB_REQUIRE(points[i].x > points[i - 1].x,
                  "from_points: x not strictly increasing");
  }
  PiecewiseLinear f;
  f.points_ = std::move(points);
  f.final_slope_ = final_slope;
  return f;
}

PiecewiseLinear PiecewiseLinear::dual_token_bucket(double sigma, double rho,
                                                   double peak,
                                                   double burst_peak) {
  QOSBB_REQUIRE(peak >= rho, "dual_token_bucket: peak < sustained rate");
  QOSBB_REQUIRE(sigma >= burst_peak,
                "dual_token_bucket: sigma must be >= peak-line offset");
  if (peak == rho || sigma == burst_peak) {
    // The two lines never cross (or coincide at 0): the binding constraint
    // is the lower of the two offsets with its own slope.
    if (burst_peak <= sigma) return affine(burst_peak, peak == rho ? rho : peak);
    return affine(sigma, rho);
  }
  // Crossing time of Pt + burst_peak and ρt + σ.
  const double t_on = (sigma - burst_peak) / (peak - rho);
  return from_points({{0.0, burst_peak}, {t_on, burst_peak + peak * t_on}},
                     rho);
}

double PiecewiseLinear::operator()(double x) const {
  QOSBB_REQUIRE(x >= 0.0, "PiecewiseLinear evaluated at negative x");
  // Find last breakpoint with point.x <= x.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), x,
      [](double v, const Point& p) { return v < p.x; });
  --it;  // safe: points_.front().x == 0 <= x
  const Point& p = *it;
  double slope;
  if (std::next(it) == points_.end()) {
    slope = final_slope_;
  } else {
    const Point& q = *std::next(it);
    slope = (q.y - p.y) / (q.x - p.x);
  }
  return p.y + slope * (x - p.x);
}

PiecewiseLinear PiecewiseLinear::operator+(const PiecewiseLinear& o) const {
  std::vector<Point> pts;
  for (double x : merged_knots(*this, o)) {
    pts.push_back({x, (*this)(x) + o(x)});
  }
  return from_points(std::move(pts), final_slope_ + o.final_slope_);
}

PiecewiseLinear PiecewiseLinear::operator-(const PiecewiseLinear& o) const {
  std::vector<Point> pts;
  for (double x : merged_knots(*this, o)) {
    pts.push_back({x, (*this)(x) - o(x)});
  }
  return from_points(std::move(pts), final_slope_ - o.final_slope_);
}

namespace {

PiecewiseLinear combine(const PiecewiseLinear& a, const PiecewiseLinear& b,
                        bool take_min) {
  // Evaluate on merged knots and insert crossing points within segments.
  std::vector<double> xs = merged_knots(a, b);
  std::vector<PiecewiseLinear::Point> pts;
  auto pick = [take_min](double u, double v) {
    return take_min ? std::min(u, v) : std::max(u, v);
  };
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double x0 = xs[i];
    pts.push_back({x0, pick(a(x0), b(x0))});
    // Check for a crossing strictly inside (xs[i], xs[i+1]).
    const bool last = (i + 1 == xs.size());
    const double x1 = last ? x0 + 1.0 : xs[i + 1];
    const double da = last ? a.final_slope()
                           : (a(x1) - a(x0)) / (x1 - x0);
    const double db = last ? b.final_slope()
                           : (b(x1) - b(x0)) / (x1 - x0);
    const double fa = a(x0), fb = b(x0);
    const double dd = da - db;
    if (dd != 0.0) {
      const double xc = x0 + (fb - fa) / dd;  // where a == b
      if (xc > x0 && (!last ? xc < x1 : true) &&
          std::isfinite(xc)) {
        if (last || xc < x1) {
          pts.push_back({xc, a(xc)});
        }
      }
    }
  }
  std::sort(pts.begin(), pts.end(),
            [](const auto& u, const auto& v) { return u.x < v.x; });
  pts.erase(std::unique(pts.begin(), pts.end(),
                        [](const auto& u, const auto& v) {
                          return u.x == v.x;
                        }),
            pts.end());
  // Final slope: whichever function is selected at infinity. Compare at a
  // point beyond all knots using values + slopes.
  const double xlast = pts.back().x + 1.0;
  const double va = a(xlast), vb = b(xlast);
  double fs;
  if (va == vb) {
    fs = take_min ? std::min(a.final_slope(), b.final_slope())
                  : std::max(a.final_slope(), b.final_slope());
  } else {
    const bool a_wins = take_min ? (va < vb) : (va > vb);
    // If slopes will cross later, that crossing is beyond xlast only if the
    // losing function catches up; handle by adding one more knot at the
    // crossing if it exists.
    const double da = a.final_slope(), db = b.final_slope();
    const bool loser_catches_up = take_min ? (a_wins ? db < da : da < db)
                                           : (a_wins ? db > da : da > db);
    if (loser_catches_up) {
      const double xc = xlast + std::abs(va - vb) / std::abs(da - db);
      pts.push_back({xc, a(xc)});  // a(xc) == b(xc) up to roundoff
      fs = take_min ? std::min(da, db) : std::max(da, db);
    } else {
      fs = a_wins ? da : db;
    }
  }
  return PiecewiseLinear::from_points(std::move(pts), fs);
}

}  // namespace

PiecewiseLinear PiecewiseLinear::min(const PiecewiseLinear& a,
                                     const PiecewiseLinear& b) {
  return combine(a, b, /*take_min=*/true);
}

PiecewiseLinear PiecewiseLinear::max(const PiecewiseLinear& a,
                                     const PiecewiseLinear& b) {
  return combine(a, b, /*take_min=*/false);
}

double PiecewiseLinear::sup(double lo, double hi) const {
  QOSBB_REQUIRE(lo >= 0.0 && hi >= lo, "sup: bad interval");
  double best = (*this)(lo);
  for (const auto& p : points_) {
    if (p.x >= lo && p.x <= hi) best = std::max(best, p.y);
  }
  if (std::isinf(hi)) {
    if (final_slope_ > 0.0) return kInf;
    // Value just after the last knot dominates the tail.
    best = std::max(best, (*this)(points_.back().x < lo ? lo
                                                        : points_.back().x));
  } else {
    best = std::max(best, (*this)(hi));
  }
  return best;
}

double PiecewiseLinear::first_nonpositive(double from) const {
  QOSBB_REQUIRE(from >= 0.0, "first_nonpositive: negative start");
  if ((*this)(from) <= 0.0) return from;
  // Scan segments after `from`.
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const double x0 = std::max(points_[i].x, from);
    const bool last = (i + 1 == points_.size());
    const double x1 = last ? kInf : points_[i + 1].x;
    if (x1 <= from) continue;
    const double y0 = (*this)(x0);
    const double slope =
        last ? final_slope_
             : (points_[i + 1].y - points_[i].y) /
                   (points_[i + 1].x - points_[i].x);
    if (y0 <= 0.0) return x0;
    if (slope < 0.0) {
      const double xc = x0 - y0 / slope;
      if (last || xc <= x1) return xc;
    }
  }
  return kInf;
}

std::string PiecewiseLinear::to_string() const {
  std::ostringstream os;
  os << "PL[";
  for (const auto& p : points_) os << "(" << p.x << "," << p.y << ")";
  os << " slope=" << final_slope_ << "]";
  return os.str();
}

}  // namespace qosbb
