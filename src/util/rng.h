// Deterministic random number generation for simulations.
//
// All stochastic components (workload generators, on–off sources, holding
// times) draw from an explicitly seeded Rng so that every experiment is
// reproducible run-to-run and the Figure-10 "average of 5 runs" sweep uses
// independent, documented seeds.

#ifndef QOSBB_UTIL_RNG_H_
#define QOSBB_UTIL_RNG_H_

#include <cstdint>
#include <random>

namespace qosbb {

/// Thin wrapper over std::mt19937_64 with the distributions the simulators
/// need. Copyable; copies evolve independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Exponential with the given mean (NOT rate). mean > 0.
  double exponential(double mean);
  /// Poisson with the given mean.
  std::int64_t poisson(double mean);
  /// True with probability p.
  bool bernoulli(double p);

  /// Derive a child generator with a decorrelated seed; used to hand each
  /// source / run its own stream.
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace qosbb

#endif  // QOSBB_UTIL_RNG_H_
