// Clang thread-safety-annotated synchronization primitives.
//
// libstdc++'s std::mutex carries no capability attributes, so clang's
// -Wthread-safety analysis cannot track it. These thin wrappers attach the
// annotations (and nothing else) so every lock-holding class in the broker
// can declare its protected state with GUARDED_BY and its protocol with
// REQUIRES, and the clang CI rows can enforce the declarations as errors.
// Under gcc (or when the analysis is off) the macros expand to nothing and
// the wrappers are zero-cost aliases of the standard types.

#ifndef QOSBB_UTIL_SYNC_H_
#define QOSBB_UTIL_SYNC_H_

#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && (!defined(SWIG))
#define QOSBB_TSA(x) __attribute__((x))
#else
#define QOSBB_TSA(x)  // no-op
#endif

#define QOSBB_CAPABILITY(x) QOSBB_TSA(capability(x))
#define QOSBB_SCOPED_CAPABILITY QOSBB_TSA(scoped_lockable)
#define GUARDED_BY(x) QOSBB_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) QOSBB_TSA(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) QOSBB_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) QOSBB_TSA(acquired_after(__VA_ARGS__))
#define REQUIRES(...) QOSBB_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) QOSBB_TSA(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) QOSBB_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) QOSBB_TSA(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) QOSBB_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) QOSBB_TSA(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) QOSBB_TSA(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) QOSBB_TSA(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) QOSBB_TSA(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) QOSBB_TSA(assert_capability(x))
#define RETURN_CAPABILITY(x) QOSBB_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS QOSBB_TSA(no_thread_safety_analysis)

namespace qosbb {

/// std::mutex with capability annotations.
class QOSBB_CAPABILITY("mutex") Mutex {
 public:
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// std::shared_mutex with capability annotations (exclusive + shared).
class QOSBB_CAPABILITY("shared_mutex") SharedMutex {
 public:
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock over Mutex.
class QOSBB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive lock over SharedMutex.
class QOSBB_SCOPED_CAPABILITY ExclusiveLock {
 public:
  explicit ExclusiveLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~ExclusiveLock() RELEASE() { mu_.unlock(); }
  ExclusiveLock(const ExclusiveLock&) = delete;
  ExclusiveLock& operator=(const ExclusiveLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared (reader) lock over SharedMutex.
class QOSBB_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~SharedLock() RELEASE_GENERIC() { mu_.unlock_shared(); }
  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace qosbb

#endif  // QOSBB_UTIL_SYNC_H_
