// Plain-text table and CSV emission for benchmark harnesses.
//
// Every bench binary prints the rows/series the paper's table or figure
// reports; this class renders them aligned for the terminal and optionally
// as CSV for plotting.

#ifndef QOSBB_UTIL_TABLE_H_
#define QOSBB_UTIL_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace qosbb {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; must match the header width.
  void add_row(std::vector<std::string> row);
  /// Convenience: format doubles with the given precision.
  static std::string fmt(double v, int precision = 4);
  static std::string fmt_int(long long v);

  std::size_t rows() const { return rows_.size(); }

  /// Render with aligned columns and a separator under the header.
  void print(std::ostream& os) const;
  /// Render as CSV (no quoting; cells must not contain commas).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qosbb

#endif  // QOSBB_UTIL_TABLE_H_
