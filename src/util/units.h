// Unit conventions and named helpers.
//
// Throughout the library:
//   * time      — seconds, `double` (the paper's math is continuous-time)
//   * data size — bits, `double` for fluid quantities, `int64_t` for packets
//   * rate      — bits per second, `double`
//
// These helpers exist so call sites read like the paper: `kilobits(60)`,
// `megabits_per_second(1.5)`, `bytes(1500)`.

#ifndef QOSBB_UTIL_UNITS_H_
#define QOSBB_UTIL_UNITS_H_

#include <cstdint>

namespace qosbb {

/// Seconds. All simulator and bound computations use this scalar type.
using Seconds = double;
/// Bits (fluid). Packet sizes use BitCount.
using Bits = double;
/// Bits, exact (packet sizes on the wire).
using BitCount = std::int64_t;
/// Bits per second.
using BitsPerSecond = double;

constexpr Bits bits(double v) { return v; }
constexpr Bits kilobits(double v) { return v * 1e3; }
constexpr Bits megabits(double v) { return v * 1e6; }
constexpr Bits bytes(double v) { return v * 8.0; }

constexpr BitsPerSecond bits_per_second(double v) { return v; }
constexpr BitsPerSecond kilobits_per_second(double v) { return v * 1e3; }
constexpr BitsPerSecond megabits_per_second(double v) { return v * 1e6; }

constexpr Seconds seconds(double v) { return v; }
constexpr Seconds milliseconds(double v) { return v * 1e-3; }
constexpr Seconds microseconds(double v) { return v * 1e-6; }

/// Transmission time of `size` bits on a link of capacity `rate` b/s.
constexpr Seconds transmission_time(Bits size, BitsPerSecond rate) {
  return size / rate;
}

}  // namespace qosbb

#endif  // QOSBB_UTIL_UNITS_H_
