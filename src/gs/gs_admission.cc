#include "gs/gs_admission.h"

namespace qosbb {

GsAdmissionControl::GsAdmissionControl(const DomainSpec& spec)
    : spec_(spec), graph_(spec_.to_graph()), hop_by_hop_(spec_) {}

GsReservationResult GsAdmissionControl::request_service(
    const FlowServiceRequest& request) {
  ++stats_.requests;
  auto route = shortest_path(graph_, request.ingress, request.egress);
  if (!route.is_ok()) {
    ++stats_.rejected[RejectReason::kNoPath];
    GsReservationResult out;
    out.reason = RejectReason::kNoPath;
    out.detail = route.status().message();
    return out;
  }
  GsReservationResult out = hop_by_hop_.reserve(
      route.value(), request.profile, request.e2e_delay_req);
  if (out.admitted) {
    ++stats_.admitted;
  } else {
    ++stats_.rejected[out.reason];
  }
  return out;
}

Status GsAdmissionControl::release_service(FlowId flow) {
  return hop_by_hop_.release(flow);
}

}  // namespace qosbb
