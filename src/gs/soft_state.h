// RSVP-style soft QoS state for the hop-by-hop baseline.
//
// RSVP keeps the per-router reservation state of Section 1 alive with
// periodic PATH/RESV refreshes: a reservation that is not refreshed within
// its lifetime L = k·R expires and its resources are reclaimed (RFC 2205
// uses L >= (K + 0.5)·1.5·R; we expose k directly). The paper's
// Introduction counts exactly this "periodic state exchange among routers"
// as overhead the BB architecture eliminates — this module makes that
// overhead measurable (bench_signaling_overhead) and its failure semantics
// testable (a dead sender's state decays on its own).

#ifndef QOSBB_GS_SOFT_STATE_H_
#define QOSBB_GS_SOFT_STATE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "gs/hop_by_hop.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace qosbb {

class RsvpSoftStateDomain {
 public:
  struct Options {
    Seconds refresh_period = 30.0;  ///< R
    int lifetime_refreshes = 3;     ///< k: state expires after k·R silence
    /// Refresh jitter fraction (RSVP staggers refreshes to avoid message
    /// synchronization): each period is drawn uniformly from
    /// [R·(1−jitter/2), R·(1+jitter/2)].
    double jitter = 0.5;
  };

  RsvpSoftStateDomain(const DomainSpec& spec, EventQueue& events,
                      Options options, std::uint64_t seed);

  RsvpSoftStateDomain(const RsvpSoftStateDomain&) = delete;
  RsvpSoftStateDomain& operator=(const RsvpSoftStateDomain&) = delete;

  /// Set up a reservation (PATH + RESV walk) and start its refresh clock.
  GsReservationResult reserve(const std::vector<std::string>& node_path,
                              const TrafficProfile& profile, Seconds d_req);
  /// Explicit teardown (ResvTear): stops refreshes and frees state now.
  Status release(FlowId flow);
  /// Simulate a failed/disconnected sender: refreshes stop, the state must
  /// decay by itself after the lifetime.
  void stop_refreshing(FlowId flow);

  bool alive(FlowId flow) const { return sessions_.contains(flow); }
  std::size_t active_flows() const { return sessions_.size(); }
  /// Refresh messages sent so far (one per hop per refresh event).
  std::uint64_t refresh_messages() const { return refresh_messages_; }
  /// Flows reclaimed by lifetime expiry (not explicit teardown).
  std::uint64_t expired_flows() const { return expired_flows_; }
  const GsHopByHop& domain() const { return hop_by_hop_; }
  GsHopByHop& domain() { return hop_by_hop_; }

 private:
  struct Session {
    int hops = 0;
    Seconds last_refresh = 0.0;
    bool refreshing = true;
    std::uint64_t epoch = 0;  // invalidates stale timer events
  };

  void schedule_refresh(FlowId flow);
  void schedule_expiry_check(FlowId flow);
  Seconds lifetime() const {
    return options_.refresh_period * options_.lifetime_refreshes;
  }

  GsHopByHop hop_by_hop_;
  EventQueue& events_;
  Options options_;
  Rng rng_;
  std::unordered_map<FlowId, Session> sessions_;
  std::uint64_t refresh_messages_ = 0;
  std::uint64_t expired_flows_ = 0;
};

}  // namespace qosbb

#endif  // QOSBB_GS_SOFT_STATE_H_
