// Hop-by-hop RSVP-style reservation setup over per-router QoS state —
// the conventional control plane the BB architecture replaces.
//
// Two-pass protocol: a PATH message walks ingress -> egress accumulating the
// Adspec (C/D error terms); a RESV message walks egress -> ingress, and at
// EVERY router a local admission test runs against the router's own QoS
// state database:
//   * WFQ/VC hop:    Σ_j R_j + R <= C_i
//   * RC-EDF hop:    EDF schedulability with the local deadline assignment
//                    d_i = L/R + Ψ_i (the per-hop delay the WFQ reference
//                    model attributes to this hop).
// Per-router reservation state is exactly what this class stores — contrast
// with NodeMib, which stores the same information centrally at the BB.

#ifndef QOSBB_GS_HOP_BY_HOP_H_
#define QOSBB_GS_HOP_BY_HOP_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/node_mib.h"
#include "core/types.h"
#include "gs/wfq_reference.h"
#include "util/status.h"

namespace qosbb {

/// Outcome of a hop-by-hop reservation attempt, with signaling-cost
/// diagnostics for the path-oriented-vs-hop-by-hop comparison bench.
struct GsReservationResult {
  bool admitted = false;
  RejectReason reason = RejectReason::kNone;
  FlowId flow = kInvalidFlowId;
  BitsPerSecond rate = 0.0;
  Seconds e2e_bound = 0.0;
  int hops_visited = 0;    ///< routers touched by PATH + RESV walks
  int messages = 0;        ///< signaling messages exchanged
  std::string detail;
};

class GsHopByHop {
 public:
  /// `spec` should be a GS domain (fig8_gs_topology): VC/WFQ and RC-EDF.
  explicit GsHopByHop(const DomainSpec& spec);

  /// PATH walk: accumulate the Adspec along the node path.
  GsAdspec path_advertisement(const std::vector<std::string>& node_path) const;

  /// Full PATH + RESV exchange for a new flow.
  GsReservationResult reserve(const std::vector<std::string>& node_path,
                              const TrafficProfile& profile, Seconds d_req);

  Status release(FlowId flow);

  const LinkQosState& router_state(const std::string& link_name) const {
    return routers_.link(link_name);
  }
  std::size_t active_flows() const { return flows_.size(); }
  std::uint64_t total_messages() const { return total_messages_; }

 private:
  struct GsFlowRecord {
    std::vector<std::string> link_names;
    BitsPerSecond rate;
    std::vector<Seconds> local_deadlines;  // per hop; 0 on rate-based hops
    Bits l_max;
  };

  DomainSpec spec_;  // by value: callers may pass temporaries
  NodeMib routers_;  ///< stands in for the per-router QoS state databases
  std::unordered_map<FlowId, GsFlowRecord> flows_;
  FlowId next_id_ = 1;
  std::uint64_t total_messages_ = 0;
};

}  // namespace qosbb

#endif  // QOSBB_GS_HOP_BY_HOP_H_
