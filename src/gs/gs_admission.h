// IntServ/GS admission-control facade mirroring the BandwidthBroker API so
// benches can drive both schemes with the same loop (Section 5 comparison).

#ifndef QOSBB_GS_GS_ADMISSION_H_
#define QOSBB_GS_GS_ADMISSION_H_

#include <string>

#include "core/broker.h"
#include "gs/hop_by_hop.h"
#include "topo/graph.h"
#include "topo/routing.h"

namespace qosbb {

class GsAdmissionControl {
 public:
  /// `spec` must be a GS domain spec (VC/WFQ + RC-EDF schedulers); use
  /// fig8_gs_topology or an equivalent.
  explicit GsAdmissionControl(const DomainSpec& spec);

  /// PATH/RESV exchange along the min-hop route.
  GsReservationResult request_service(const FlowServiceRequest& request);
  Status release_service(FlowId flow);

  const GsHopByHop& domain() const { return hop_by_hop_; }
  GsHopByHop& domain() { return hop_by_hop_; }
  const BrokerStats& stats() const { return stats_; }

 private:
  DomainSpec spec_;
  Graph graph_;
  GsHopByHop hop_by_hop_;
  BrokerStats stats_;
};

}  // namespace qosbb

#endif  // QOSBB_GS_GS_ADMISSION_H_
