#include "gs/wfq_reference.h"

#include <limits>

#include "util/status.h"

namespace qosbb {

Seconds gs_delay_bound(const GsAdspec& adspec, const TrafficProfile& p,
                       BitsPerSecond r) {
  QOSBB_REQUIRE(r >= p.rho && r <= p.peak,
                "gs_delay_bound: reservation outside [rho, peak]");
  return p.t_on() * (p.peak - r) / r +
         static_cast<double>(adspec.packet_terms + 1) * p.l_max / r +
         adspec.d_tot;
}

BitsPerSecond gs_min_rate(const GsAdspec& adspec, const TrafficProfile& p,
                          Seconds d_req) {
  const Seconds t_on = p.t_on();
  const Seconds denom = d_req - adspec.d_tot + t_on;
  if (denom <= 0.0) return std::numeric_limits<BitsPerSecond>::infinity();
  return (t_on * p.peak +
          static_cast<double>(adspec.packet_terms + 1) * p.l_max) /
         denom;
}

}  // namespace qosbb
