#include "gs/soft_state.h"

namespace qosbb {

RsvpSoftStateDomain::RsvpSoftStateDomain(const DomainSpec& spec,
                                         EventQueue& events, Options options,
                                         std::uint64_t seed)
    : hop_by_hop_(spec), events_(events), options_(options), rng_(seed) {
  QOSBB_REQUIRE(options.refresh_period > 0.0,
                "soft state: refresh period must be positive");
  QOSBB_REQUIRE(options.lifetime_refreshes >= 1,
                "soft state: lifetime must cover at least one refresh");
  QOSBB_REQUIRE(options.jitter >= 0.0 && options.jitter < 1.0,
                "soft state: jitter fraction outside [0, 1)");
}

GsReservationResult RsvpSoftStateDomain::reserve(
    const std::vector<std::string>& node_path, const TrafficProfile& profile,
    Seconds d_req) {
  GsReservationResult res = hop_by_hop_.reserve(node_path, profile, d_req);
  if (!res.admitted) return res;
  Session s;
  s.hops = static_cast<int>(node_path.size()) - 1;
  s.last_refresh = events_.now();
  sessions_.emplace(res.flow, s);
  schedule_refresh(res.flow);
  schedule_expiry_check(res.flow);
  return res;
}

Status RsvpSoftStateDomain::release(FlowId flow) {
  auto it = sessions_.find(flow);
  if (it == sessions_.end()) {
    return Status::not_found("soft-state flow " + std::to_string(flow));
  }
  sessions_.erase(it);  // pending timers find no session and die
  return hop_by_hop_.release(flow);
}

void RsvpSoftStateDomain::stop_refreshing(FlowId flow) {
  auto it = sessions_.find(flow);
  QOSBB_REQUIRE(it != sessions_.end(), "stop_refreshing: unknown flow");
  it->second.refreshing = false;
}

void RsvpSoftStateDomain::schedule_refresh(FlowId flow) {
  auto it = sessions_.find(flow);
  QOSBB_REQUIRE(it != sessions_.end(), "schedule_refresh: unknown flow");
  Session& s = it->second;
  const std::uint64_t epoch = ++s.epoch;
  const double lo = 1.0 - options_.jitter / 2.0;
  const double hi = 1.0 + options_.jitter / 2.0;
  const Seconds period =
      options_.refresh_period *
      (options_.jitter > 0.0 ? rng_.uniform(lo, hi) : 1.0);
  events_.schedule(events_.now() + period, [this, flow, epoch] {
    auto jt = sessions_.find(flow);
    if (jt == sessions_.end() || jt->second.epoch != epoch) return;
    if (!jt->second.refreshing) return;  // sender is gone: no more refreshes
    jt->second.last_refresh = events_.now();
    refresh_messages_ += static_cast<std::uint64_t>(jt->second.hops);
    schedule_refresh(flow);
  });
}

void RsvpSoftStateDomain::schedule_expiry_check(FlowId flow) {
  auto it = sessions_.find(flow);
  QOSBB_REQUIRE(it != sessions_.end(), "schedule_expiry_check: unknown flow");
  const Seconds deadline = it->second.last_refresh + lifetime();
  events_.schedule(deadline, [this, flow] {
    auto jt = sessions_.find(flow);
    if (jt == sessions_.end()) return;  // explicitly torn down
    if (events_.now() - jt->second.last_refresh >= lifetime() - 1e-9) {
      // State decayed: reclaim router resources.
      sessions_.erase(jt);
      ++expired_flows_;
      Status s = hop_by_hop_.release(flow);
      QOSBB_REQUIRE(s.is_ok(), "soft-state expiry failed to release");
      return;
    }
    schedule_expiry_check(flow);  // refreshed meanwhile: re-arm
  });
}

}  // namespace qosbb
