#include "gs/hop_by_hop.h"

#include <algorithm>

#include "vtrs/delay_bounds.h"

namespace qosbb {
namespace {

/// Per-router buffer bound for a GS reservation (same backlog arithmetic as
/// the BB's, vtrs/delay_bounds.h) — evaluated against the router's OWN
/// buffer state, hop by hop.
Bits gs_buffer_bound(const LinkQosState& router, BitsPerSecond rate,
                     Seconds local_deadline, Bits l_max) {
  return per_hop_buffer_bound(router.delay_based()
                                  ? SchedulerKind::kDelayBased
                                  : SchedulerKind::kRateBased,
                              rate, local_deadline, l_max,
                              router.error_term());
}

}  // namespace

GsHopByHop::GsHopByHop(const DomainSpec& spec)
    : spec_(spec), routers_(spec) {}

GsAdspec GsHopByHop::path_advertisement(
    const std::vector<std::string>& node_path) const {
  QOSBB_REQUIRE(node_path.size() >= 2, "path_advertisement: short path");
  GsAdspec adspec;
  for (std::size_t i = 0; i + 1 < node_path.size(); ++i) {
    const LinkSpec& l = spec_.link(node_path[i], node_path[i + 1]);
    // Every GS hop exports one packet term and D_i = Ψ_i + π_i.
    adspec.add_hop(spec_.l_max / l.capacity + l.propagation_delay);
  }
  return adspec;
}

GsReservationResult GsHopByHop::reserve(
    const std::vector<std::string>& node_path, const TrafficProfile& profile,
    Seconds d_req) {
  GsReservationResult out;
  const int h = static_cast<int>(node_path.size()) - 1;

  // --- PATH walk (ingress -> egress): one message per hop. ---
  const GsAdspec adspec = path_advertisement(node_path);
  out.hops_visited += h;
  out.messages += h;
  total_messages_ += static_cast<std::uint64_t>(h);

  // Receiver computes the reservation from the WFQ reference model.
  const BitsPerSecond r_min = gs_min_rate(adspec, profile, d_req);
  const BitsPerSecond rate = std::max(profile.rho, r_min);
  if (rate > profile.peak) {
    out.reason = RejectReason::kNoFeasibleRate;
    out.detail = "GS reservation exceeds peak rate";
    return out;
  }

  // --- RESV walk (egress -> ingress): local admission at every router. ---
  GsFlowRecord rec;
  rec.rate = rate;
  rec.l_max = profile.l_max;
  std::vector<std::string> reserved_links;
  std::vector<Seconds> reserved_deadlines;
  for (int i = h - 1; i >= 0; --i) {
    const std::string link_name = node_path[static_cast<std::size_t>(i)] +
                                  "->" +
                                  node_path[static_cast<std::size_t>(i) + 1];
    LinkQosState& router = routers_.link(link_name);
    ++out.hops_visited;
    ++out.messages;
    ++total_messages_;
    Status local = router.reserve(rate);
    Seconds deadline = 0.0;
    if (local.is_ok() && router.delay_based()) {
      // Local deadline assignment: the WFQ-equivalent per-hop delay.
      deadline = profile.l_max / rate + router.error_term();
      if (!router.edf_schedulable_with(rate, deadline, profile.l_max)) {
        router.release(rate);
        local = Status::rejected("RC-EDF unschedulable at " + link_name);
      } else {
        router.add_edf_entry(rate, deadline, profile.l_max);
      }
    }
    if (local.is_ok()) {
      Status buf = router.reserve_buffer(
          gs_buffer_bound(router, rate, deadline, profile.l_max));
      if (!buf.is_ok()) {
        router.release(rate);
        if (router.delay_based()) {
          router.remove_edf_entry(rate, deadline, profile.l_max);
        }
        local = buf;
      }
    }
    if (!local.is_ok()) {
      // Tear down the partial reservation (ResvErr walk back) — more
      // messages, the hop-by-hop tax.
      for (std::size_t k = 0; k < reserved_links.size(); ++k) {
        LinkQosState& r2 = routers_.link(reserved_links[k]);
        r2.release(rate);
        r2.release_buffer(
            gs_buffer_bound(r2, rate, reserved_deadlines[k], profile.l_max));
        if (r2.delay_based()) {
          r2.remove_edf_entry(rate, reserved_deadlines[k], profile.l_max);
        }
        ++out.messages;
        ++total_messages_;
      }
      if (local.message().find("RC-EDF") != std::string::npos) {
        out.reason = RejectReason::kEdfUnschedulable;
      } else if (local.message().find("buffer") != std::string::npos) {
        out.reason = RejectReason::kInsufficientBuffer;
      } else {
        out.reason = RejectReason::kInsufficientBandwidth;
      }
      out.detail = local.message();
      return out;
    }
    router.note_flow_added();
    reserved_links.push_back(link_name);
    reserved_deadlines.push_back(deadline);
  }

  rec.link_names = std::move(reserved_links);
  rec.local_deadlines = std::move(reserved_deadlines);
  const FlowId id = next_id_++;
  flows_.emplace(id, std::move(rec));

  out.admitted = true;
  out.flow = id;
  out.rate = rate;
  out.e2e_bound = gs_delay_bound(adspec, profile, rate);
  return out;
}

Status GsHopByHop::release(FlowId flow) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) {
    return Status::not_found("GS flow " + std::to_string(flow));
  }
  const GsFlowRecord& rec = it->second;
  for (std::size_t k = 0; k < rec.link_names.size(); ++k) {
    LinkQosState& router = routers_.link(rec.link_names[k]);
    router.release(rec.rate);
    router.release_buffer(
        gs_buffer_bound(router, rec.rate, rec.local_deadlines[k], rec.l_max));
    router.note_flow_removed();
    if (router.delay_based()) {
      router.remove_edf_entry(rec.rate, rec.local_deadlines[k], rec.l_max);
    }
    ++total_messages_;  // teardown message per hop
  }
  flows_.erase(it);
  return Status::ok();
}

}  // namespace qosbb
