// IntServ Guaranteed Service rate computation (RFC 2212) under the WFQ
// reference model — the baseline the paper compares against (Section 5).
//
// Each hop advertises its deviation from the fluid WFQ model through the
// exported error terms: a rate-dependent term C_i (one maximum packet per
// hop) and a rate-independent term D_i (= Ψ_i = L*max/C_i for WFQ and, by
// convention, for RC-EDF hops too — the reference model is WFQ everywhere).
// The end-to-end GS delay bound for reservation R is
//   d = T_on·(P − R)/R + (n + 1)·L/R + D_tot,
// where n is the number of hops contributing a packet term, identical in
// form to the VTRS bound (4) with q = h. The minimal reservation follows in
// closed form.

#ifndef QOSBB_GS_WFQ_REFERENCE_H_
#define QOSBB_GS_WFQ_REFERENCE_H_

#include <vector>

#include "traffic/profile.h"
#include "util/units.h"

namespace qosbb {

/// The Adspec accumulated by a PATH message as it crosses the domain.
struct GsAdspec {
  int packet_terms = 0;  ///< number of hops contributing an L/R term
  Seconds d_tot = 0.0;   ///< Σ D_i (+ propagation)

  void add_hop(Seconds d_term) {
    ++packet_terms;
    d_tot += d_term;
  }
};

/// End-to-end GS delay bound for reservation R (RFC 2212 with the dual
/// token bucket profile). Requires ρ <= R <= P.
Seconds gs_delay_bound(const GsAdspec& adspec, const TrafficProfile& p,
                       BitsPerSecond reservation);

/// Minimal reservation R meeting `d_req`; +infinity if unattainable even as
/// R -> infinity (d_req <= D_tot).
BitsPerSecond gs_min_rate(const GsAdspec& adspec, const TrafficProfile& p,
                          Seconds d_req);

}  // namespace qosbb

#endif  // QOSBB_GS_WFQ_REFERENCE_H_
