#include "traffic/token_bucket.h"

#include <algorithm>

#include "util/status.h"

namespace qosbb {

TokenBucket::TokenBucket(Bits burst, BitsPerSecond rate)
    : burst_(burst), rate_(rate), level_(burst) {
  QOSBB_REQUIRE(burst > 0.0, "TokenBucket: burst must be positive");
  QOSBB_REQUIRE(rate >= 0.0, "TokenBucket: rate must be non-negative");
}

Bits TokenBucket::tokens_at(Seconds t) const {
  QOSBB_REQUIRE(t >= last_time_, "TokenBucket: time went backwards");
  return std::min(burst_, level_ + rate_ * (t - last_time_));
}

Seconds TokenBucket::earliest_conform(Seconds t, Bits size) const {
  QOSBB_REQUIRE(size <= burst_,
                "TokenBucket: packet larger than bucket depth can never conform");
  const Bits have = tokens_at(t);
  if (have >= size) return t;
  QOSBB_REQUIRE(rate_ > 0.0, "TokenBucket: zero rate and insufficient tokens");
  return t + (size - have) / rate_;
}

void TokenBucket::consume(Seconds t, Bits size) {
  const Bits have = tokens_at(t);
  // Tolerate tiny floating-point shortfalls from earliest_conform round-trips.
  QOSBB_REQUIRE(have >= size - 1e-6, "TokenBucket: non-conforming consume");
  level_ = std::max(0.0, have - size);
  last_time_ = t;
}

void TokenBucket::refill(Seconds t) {
  QOSBB_REQUIRE(t >= last_time_, "TokenBucket: time went backwards");
  level_ = burst_;
  last_time_ = t;
}

DualTokenBucket::DualTokenBucket(Bits sigma, BitsPerSecond rho,
                                 BitsPerSecond peak, Bits l_max)
    : sustained_(sigma, rho), peak_(l_max, peak) {
  QOSBB_REQUIRE(sigma >= l_max, "DualTokenBucket: sigma < L_max");
  QOSBB_REQUIRE(peak >= rho, "DualTokenBucket: peak < sustained rate");
}

Seconds DualTokenBucket::earliest_conform(Seconds t, Bits size) const {
  // The conform time of the conjunction is the max of the two, and since
  // token levels only grow while idle, the max is simultaneously feasible.
  return std::max(sustained_.earliest_conform(t, size),
                  peak_.earliest_conform(t, size));
}

void DualTokenBucket::consume(Seconds t, Bits size) {
  sustained_.consume(t, size);
  peak_.consume(t, size);
}

void DualTokenBucket::refill(Seconds t) {
  sustained_.refill(t);
  peak_.refill(t);
}

}  // namespace qosbb
