#include "traffic/source.h"

#include <algorithm>

#include "util/status.h"

namespace qosbb {

GreedySource::GreedySource(TrafficProfile profile, Seconds start_time)
    : profile_(profile),
      bucket_(profile.sigma, profile.rho, profile.peak, profile.l_max),
      clock_(start_time) {
  bucket_.refill(start_time);
}

std::optional<PacketArrival> GreedySource::next() {
  const Bits size = profile_.l_max;
  const Seconds t = bucket_.earliest_conform(clock_, size);
  bucket_.consume(t, size);
  clock_ = t;
  return PacketArrival{t, size};
}

CbrSource::CbrSource(TrafficProfile profile, Seconds start_time)
    : profile_(profile), next_time_(start_time) {}

std::optional<PacketArrival> CbrSource::next() {
  const PacketArrival a{next_time_, profile_.l_max};
  next_time_ += profile_.l_max / profile_.rho;
  return a;
}

OnOffSource::OnOffSource(TrafficProfile profile, Seconds start_time,
                         Seconds mean_on, Seconds mean_off, Rng rng)
    : profile_(profile),
      bucket_(profile.sigma, profile.rho, profile.peak, profile.l_max),
      rng_(rng),
      mean_on_(mean_on),
      mean_off_(mean_off),
      clock_(start_time),
      on_until_(start_time) {
  QOSBB_REQUIRE(mean_on > 0.0 && mean_off >= 0.0,
                "OnOffSource: bad on/off durations");
  bucket_.refill(start_time);
  on_until_ = clock_ + rng_.exponential(mean_on_);
}

std::optional<PacketArrival> OnOffSource::next() {
  const Bits size = profile_.l_max;
  Seconds t = bucket_.earliest_conform(clock_, size);
  // Skip OFF periods: if the conforming instant falls beyond the current ON
  // window, jump through OFF periods until a window contains it.
  while (t >= on_until_) {
    const Seconds off_end = on_until_ + rng_.exponential(mean_off_);
    t = std::max(t, off_end);
    t = bucket_.earliest_conform(t, size);
    on_until_ = off_end + rng_.exponential(mean_on_);
  }
  bucket_.consume(t, size);
  clock_ = t;
  return PacketArrival{t, size};
}

PoissonSource::PoissonSource(TrafficProfile profile, Seconds start_time,
                             Rng rng)
    : profile_(profile),
      bucket_(profile.sigma, profile.rho, profile.peak, profile.l_max),
      rng_(rng),
      raw_clock_(start_time),
      shaped_clock_(start_time) {
  bucket_.refill(start_time);
}

std::optional<PacketArrival> PoissonSource::next() {
  const Bits size = profile_.l_max;
  // Mean packet inter-arrival so that the raw rate equals ρ.
  raw_clock_ += rng_.exponential(profile_.l_max / profile_.rho);
  Seconds t = std::max(raw_clock_, shaped_clock_);
  t = bucket_.earliest_conform(t, size);
  bucket_.consume(t, size);
  shaped_clock_ = t;
  return PacketArrival{t, size};
}

BoundedSource::BoundedSource(std::unique_ptr<TrafficSource> inner,
                             std::size_t max_packets, Seconds horizon)
    : inner_(std::move(inner)), remaining_(max_packets), horizon_(horizon) {
  QOSBB_REQUIRE(inner_ != nullptr, "BoundedSource: null inner source");
}

std::optional<PacketArrival> BoundedSource::next() {
  if (remaining_ == 0) return std::nullopt;
  auto a = inner_->next();
  if (!a || a->time > horizon_) return std::nullopt;
  --remaining_;
  return a;
}

}  // namespace qosbb
