#include "traffic/envelope.h"

#include <algorithm>

#include "util/status.h"

namespace qosbb {

PiecewiseLinear arrival_envelope(const TrafficProfile& p) {
  return PiecewiseLinear::dual_token_bucket(p.sigma, p.rho, p.peak, p.l_max);
}

Bits worst_case_backlog(const TrafficProfile& p, BitsPerSecond r) {
  QOSBB_REQUIRE(r >= p.rho, "worst_case_backlog: r < rho diverges");
  // E(t) − r·t is maximized at the envelope knee t = T_on (or t = 0 when
  // the peak line never binds / r >= P).
  const Seconds t_on = p.t_on();
  const Bits at_zero = p.l_max;
  const Bits at_knee = p.l_max + (p.peak - r) * t_on;
  return std::max(at_zero, at_knee);
}

Seconds worst_case_delay(const TrafficProfile& p, BitsPerSecond r) {
  QOSBB_REQUIRE(r >= p.rho && r > 0.0, "worst_case_delay: need rho <= r");
  if (r >= p.peak) return p.l_max / r;
  return p.t_on() * (p.peak - r) / r + p.l_max / r;
}

Seconds worst_case_busy_period(const TrafficProfile& p, BitsPerSecond r) {
  QOSBB_REQUIRE(r > p.rho, "worst_case_busy_period: need r > rho");
  // Solve E(t) = r·t on the sustained branch: ρt + σ = rt.
  return p.sigma / (r - p.rho);
}

}  // namespace qosbb
