// Continuous-time token buckets and the dual-token-bucket regulator
// (σ, ρ, P, L_max) the paper uses as its traffic profile (Section 2.1).

#ifndef QOSBB_TRAFFIC_TOKEN_BUCKET_H_
#define QOSBB_TRAFFIC_TOKEN_BUCKET_H_

#include "util/units.h"

namespace qosbb {

/// A (burst, rate) token bucket in continuous time. Tokens accumulate at
/// `rate` b/s up to `burst` bits; sending `n` bits consumes `n` tokens.
class TokenBucket {
 public:
  /// Starts full at time 0.
  TokenBucket(Bits burst, BitsPerSecond rate);

  Bits burst() const { return burst_; }
  BitsPerSecond rate() const { return rate_; }

  /// Token level at time t (t must not precede the last mutation).
  Bits tokens_at(Seconds t) const;
  /// Earliest time >= t at which `size` tokens are available.
  Seconds earliest_conform(Seconds t, Bits size) const;
  /// Consume `size` tokens at time t. Caller must ensure conformance
  /// (earliest_conform(t, size) <= t); enforced.
  void consume(Seconds t, Bits size);
  /// Reset to full at time t.
  void refill(Seconds t);

 private:
  Bits burst_;
  BitsPerSecond rate_;
  Seconds last_time_ = 0.0;
  Bits level_;  // tokens at last_time_
};

/// Dual-token-bucket regulator (σ, ρ, P, L_max): conjunction of a (σ, ρ)
/// bucket and an (L_max, P) peak-rate bucket. A packet sequence conforms iff
/// every packet conforms to both buckets.
class DualTokenBucket {
 public:
  DualTokenBucket(Bits sigma, BitsPerSecond rho, BitsPerSecond peak,
                  Bits l_max);

  /// Earliest time >= t a packet of `size` bits may be sent.
  Seconds earliest_conform(Seconds t, Bits size) const;
  /// Record the send. Enforces conformance.
  void consume(Seconds t, Bits size);
  void refill(Seconds t);

  const TokenBucket& sustained() const { return sustained_; }
  const TokenBucket& peak() const { return peak_; }

 private:
  TokenBucket sustained_;
  TokenBucket peak_;
};

}  // namespace qosbb

#endif  // QOSBB_TRAFFIC_TOKEN_BUCKET_H_
