// Arrival envelopes and fluid network-calculus helpers.
//
// The dual-token-bucket profile induces the arrival envelope
//   E(t) = min{ P·t + L_max, ρ·t + σ },  t > 0
// (Section 4.1 uses this as the greedy arrival process A(0,t) = E(t)).
// These helpers compute worst-case backlog and delay of such an envelope
// against a constant-rate server — the quantities behind eq. (3) and the
// Figure-7 transient analysis.

#ifndef QOSBB_TRAFFIC_ENVELOPE_H_
#define QOSBB_TRAFFIC_ENVELOPE_H_

#include "traffic/profile.h"
#include "util/piecewise_linear.h"
#include "util/units.h"

namespace qosbb {

/// The arrival envelope E(t) of `p` as a piecewise-linear function
/// (E(0) = L_max by right-continuity; the paper's greedy source dumps L_max
/// instantaneously at t = 0).
PiecewiseLinear arrival_envelope(const TrafficProfile& p);

/// Worst-case backlog of envelope E against a constant-rate server r:
///   sup_{t>=0} [E(t) − r·t].  Requires r >= ρ for finiteness.
Bits worst_case_backlog(const TrafficProfile& p, BitsPerSecond r);

/// Worst-case queueing delay of envelope E against constant-rate server r
/// (horizontal deviation). For the dual token bucket this equals eq. (3):
///   d = T_on (P − r)/r + L_max/r.
Seconds worst_case_delay(const TrafficProfile& p, BitsPerSecond r);

/// Time for a server of rate r to drain the worst-case backlog while the
/// source continues at its sustained rate ρ (r > ρ). Used to bound
/// contingency periods in tests.
Seconds worst_case_busy_period(const TrafficProfile& p, BitsPerSecond r);

}  // namespace qosbb

#endif  // QOSBB_TRAFFIC_ENVELOPE_H_
