// Packet-level traffic sources for the discrete-event simulator.
//
// A source produces a non-decreasing sequence of packet arrivals that
// conforms to its dual-token-bucket profile. The "greedy" source realizes
// the paper's worst case A(0,t) = E(t) = min{Pt + L^max, ρt + σ}
// (Section 4.1): it is always backlogged and sends each packet at the
// earliest conforming instant.

#ifndef QOSBB_TRAFFIC_SOURCE_H_
#define QOSBB_TRAFFIC_SOURCE_H_

#include <memory>
#include <optional>

#include "traffic/profile.h"
#include "traffic/token_bucket.h"
#include "util/rng.h"
#include "util/units.h"

namespace qosbb {

/// One packet arrival at the network edge.
struct PacketArrival {
  Seconds time = 0.0;
  Bits size = 0.0;
};

/// Pull-based arrival generator. Successive calls return non-decreasing
/// times; std::nullopt means the source has finished (finite sources).
class TrafficSource {
 public:
  virtual ~TrafficSource() = default;
  virtual std::optional<PacketArrival> next() = 0;
  virtual const TrafficProfile& profile() const = 0;
};

/// Maximally bursty source: always backlogged with packets of size L_max,
/// each sent at the earliest instant permitted by the profile's dual token
/// bucket. Cumulative arrivals track the envelope E(t) to within one packet.
class GreedySource final : public TrafficSource {
 public:
  GreedySource(TrafficProfile profile, Seconds start_time);

  std::optional<PacketArrival> next() override;
  const TrafficProfile& profile() const override { return profile_; }

 private:
  TrafficProfile profile_;
  DualTokenBucket bucket_;
  Seconds clock_;
};

/// Constant bit rate at the sustained rate ρ: packets of size L_max spaced
/// exactly L_max/ρ apart. Trivially profile-conforming.
class CbrSource final : public TrafficSource {
 public:
  CbrSource(TrafficProfile profile, Seconds start_time);

  std::optional<PacketArrival> next() override;
  const TrafficProfile& profile() const override { return profile_; }

 private:
  TrafficProfile profile_;
  Seconds next_time_;
};

/// Exponential on/off fluid-like source: during ON it behaves greedily,
/// during OFF it is silent (buckets replenish). Mean on/off durations are
/// parameters; long-run rate stays below ρ when calibrated accordingly.
class OnOffSource final : public TrafficSource {
 public:
  OnOffSource(TrafficProfile profile, Seconds start_time, Seconds mean_on,
              Seconds mean_off, Rng rng);

  std::optional<PacketArrival> next() override;
  const TrafficProfile& profile() const override { return profile_; }

 private:
  TrafficProfile profile_;
  DualTokenBucket bucket_;
  Rng rng_;
  Seconds mean_on_;
  Seconds mean_off_;
  Seconds clock_;
  Seconds on_until_;
};

/// Poisson packet arrivals at mean rate ρ, shaped through the profile's
/// dual token bucket so the emitted sequence still conforms.
class PoissonSource final : public TrafficSource {
 public:
  PoissonSource(TrafficProfile profile, Seconds start_time, Rng rng);

  std::optional<PacketArrival> next() override;
  const TrafficProfile& profile() const override { return profile_; }

 private:
  TrafficProfile profile_;
  DualTokenBucket bucket_;
  Rng rng_;
  Seconds raw_clock_;     // un-shaped Poisson arrival clock
  Seconds shaped_clock_;  // last emitted (shaped) time
};

/// Caps any source after `max_packets` packets or `horizon` seconds,
/// whichever comes first. Owns the wrapped source.
class BoundedSource final : public TrafficSource {
 public:
  BoundedSource(std::unique_ptr<TrafficSource> inner, std::size_t max_packets,
                Seconds horizon);

  std::optional<PacketArrival> next() override;
  const TrafficProfile& profile() const override { return inner_->profile(); }

 private:
  std::unique_ptr<TrafficSource> inner_;
  std::size_t remaining_;
  Seconds horizon_;
};

}  // namespace qosbb

#endif  // QOSBB_TRAFFIC_SOURCE_H_
