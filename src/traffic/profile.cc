#include "traffic/profile.h"

#include <algorithm>
#include <sstream>

#include "util/status.h"

namespace qosbb {

TrafficProfile TrafficProfile::make(Bits sigma, BitsPerSecond rho,
                                    BitsPerSecond peak, Bits l_max) {
  QOSBB_REQUIRE(l_max > 0.0, "TrafficProfile: L_max must be positive");
  QOSBB_REQUIRE(sigma >= l_max, "TrafficProfile: sigma must be >= L_max");
  QOSBB_REQUIRE(rho > 0.0, "TrafficProfile: rho must be positive");
  QOSBB_REQUIRE(peak >= rho, "TrafficProfile: peak must be >= rho");
  return TrafficProfile{sigma, rho, peak, l_max};
}

Seconds TrafficProfile::t_on() const {
  if (peak == rho) return 0.0;
  return (sigma - l_max) / (peak - rho);
}

Seconds TrafficProfile::edge_delay_bound(BitsPerSecond r) const {
  QOSBB_REQUIRE(r >= rho && r <= peak,
                "edge_delay_bound: reserved rate outside [rho, peak]");
  return t_on() * (peak - r) / r + l_max / r;
}

TrafficProfile TrafficProfile::operator+(const TrafficProfile& o) const {
  return TrafficProfile{sigma + o.sigma, rho + o.rho, peak + o.peak,
                        l_max + o.l_max};
}

TrafficProfile TrafficProfile::operator-(const TrafficProfile& o) const {
  TrafficProfile p{sigma - o.sigma, rho - o.rho, peak - o.peak,
                   l_max - o.l_max};
  QOSBB_REQUIRE(p.l_max > 0.0 && p.sigma >= p.l_max && p.rho > 0.0 &&
                    p.peak >= p.rho,
                "TrafficProfile: subtraction broke profile invariants");
  return p;
}

std::string TrafficProfile::to_string() const {
  std::ostringstream os;
  os << "(sigma=" << sigma << "b, rho=" << rho << "b/s, P=" << peak
     << "b/s, Lmax=" << l_max << "b)";
  return os.str();
}

}  // namespace qosbb
