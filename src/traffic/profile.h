// Traffic profiles and flow requirements.
//
// The paper specifies every flow with a dual-token-bucket profile
// (σ^j, ρ^j, P^j, L^{j,max}) and an end-to-end delay requirement D^{j,req}
// (Section 2.2). Class-based service aggregates profiles component-wise
// (Section 4.1): σ^α = Σσ^j, ρ^α = Σρ^j, P^α = ΣP^j, L^{α,max} = ΣL^{j,max}.

#ifndef QOSBB_TRAFFIC_PROFILE_H_
#define QOSBB_TRAFFIC_PROFILE_H_

#include <string>

#include "util/units.h"

namespace qosbb {

/// Dual-token-bucket traffic profile (σ, ρ, P, L_max). Immutable value type.
struct TrafficProfile {
  Bits sigma = 0.0;          ///< maximum burst size σ, bits (σ >= L_max)
  BitsPerSecond rho = 0.0;   ///< sustained (mean) rate ρ, b/s
  BitsPerSecond peak = 0.0;  ///< peak rate P, b/s (P >= ρ)
  Bits l_max = 0.0;          ///< maximum packet size, bits

  /// Validates the invariants σ >= L_max > 0, P >= ρ > 0. Throws on failure.
  static TrafficProfile make(Bits sigma, BitsPerSecond rho,
                             BitsPerSecond peak, Bits l_max);

  /// On-period length T_on = (σ − L_max)/(P − ρ); the time a greedy source
  /// can sustain its peak rate (eq. 3 context). Zero if P == ρ.
  Seconds t_on() const;

  /// Edge-shaping delay bound for a reserved rate r (eq. 3):
  ///   d_edge = T_on · (P − r)/r + L_max / r,   with ρ <= r <= P.
  Seconds edge_delay_bound(BitsPerSecond reserved_rate) const;

  /// Component-wise aggregation of profiles (Section 4.1).
  TrafficProfile operator+(const TrafficProfile& other) const;
  /// Remove a constituent profile from an aggregate (microflow leave).
  TrafficProfile operator-(const TrafficProfile& other) const;

  bool operator==(const TrafficProfile& other) const = default;

  std::string to_string() const;
};

/// A flow service request as submitted to the bandwidth broker: profile plus
/// the end-to-end delay requirement D^req.
struct FlowRequirements {
  TrafficProfile profile;
  Seconds e2e_delay_req = 0.0;  ///< D^{j,req}, seconds
};

}  // namespace qosbb

#endif  // QOSBB_TRAFFIC_PROFILE_H_
