// Tests for the network signaling front: stream framing (every split
// point, every corruption class), the epoll server end to end over
// loopback, hostile-input hardening (the broker state must be untouched by
// garbage bytes), and the server-vs-library differential digest check.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/broker.h"
#include "core/concurrent_front.h"
#include "core/wire.h"
#include "net/client.h"
#include "net/framing.h"
#include "net/server.h"
#include "topo/builders.h"
#include "util/rng.h"

namespace qosbb {
namespace {

FlowServiceRequest make_request(int pair = 0, double rho = 1e5) {
  FlowServiceRequest req;
  req.profile = TrafficProfile::make(/*sigma=*/24000.0, rho,
                                     /*peak=*/2.0 * rho, /*l_max=*/12000.0);
  req.e2e_delay_req = 1.0;
  req.ingress = "I" + std::to_string(pair);
  req.egress = "E" + std::to_string(pair);
  return req;
}

// ---- Framing: the length|~length|crc32 stream codec ----

TEST(Framing, RoundTripSingleFrame) {
  const WireBuffer payload = encode(make_request());
  const WireBuffer framed = frame_net_message(payload);
  ASSERT_EQ(framed.size(), payload.size() + kNetFrameHeaderSize);

  FrameDecoder dec;
  dec.feed(framed.data(), framed.size());
  auto out = dec.next();
  ASSERT_TRUE(out.is_ok()) << out.status().to_string();
  EXPECT_EQ(out.value(), payload);
  EXPECT_EQ(dec.next().status().code(), StatusCode::kNeedMoreData);
  EXPECT_FALSE(dec.poisoned());
}

TEST(Framing, EverySplitPointNeedsMoreDataThenDecodes) {
  const WireBuffer payload = encode(make_request());
  const WireBuffer framed = frame_net_message(payload);
  for (std::size_t cut = 0; cut < framed.size(); ++cut) {
    FrameDecoder dec;
    dec.feed(framed.data(), cut);
    auto partial = dec.next();
    ASSERT_FALSE(partial.is_ok()) << "cut=" << cut;
    ASSERT_EQ(partial.status().code(), StatusCode::kNeedMoreData)
        << "cut=" << cut << ": " << partial.status().to_string();
    ASSERT_FALSE(dec.poisoned()) << "cut=" << cut;
    dec.feed(framed.data() + cut, framed.size() - cut);
    auto whole = dec.next();
    ASSERT_TRUE(whole.is_ok())
        << "cut=" << cut << ": " << whole.status().to_string();
    EXPECT_EQ(whole.value(), payload);
  }
}

TEST(Framing, ByteByByteFeed) {
  const WireBuffer payload = encode(make_request());
  const WireBuffer framed = frame_net_message(payload);
  FrameDecoder dec;
  for (std::size_t i = 0; i + 1 < framed.size(); ++i) {
    dec.feed(&framed[i], 1);
    ASSERT_EQ(dec.next().status().code(), StatusCode::kNeedMoreData)
        << "after byte " << i;
  }
  dec.feed(&framed[framed.size() - 1], 1);
  auto out = dec.next();
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value(), payload);
}

TEST(Framing, PipelinedFramesDecodeInOrder) {
  std::vector<WireBuffer> payloads;
  WireBuffer stream;
  for (int i = 0; i < 5; ++i) {
    payloads.push_back(encode(make_request(i % 2)));
    const WireBuffer framed = frame_net_message(payloads.back());
    stream.insert(stream.end(), framed.begin(), framed.end());
  }
  FrameDecoder dec;
  dec.feed(stream.data(), stream.size());
  for (int i = 0; i < 5; ++i) {
    auto out = dec.next();
    ASSERT_TRUE(out.is_ok()) << "frame " << i;
    EXPECT_EQ(out.value(), payloads[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(dec.next().status().code(), StatusCode::kNeedMoreData);
}

TEST(Framing, LengthComplementMismatchIsDataLossAndPoisons) {
  WireBuffer framed = frame_net_message(encode(make_request()));
  framed[5] ^= 0x10;  // corrupt the ~len word
  FrameDecoder dec;
  dec.feed(framed.data(), framed.size());
  EXPECT_EQ(dec.next().status().code(), StatusCode::kDataLoss);
  EXPECT_TRUE(dec.poisoned());
  // Feeding good bytes later cannot resynchronize a corrupt stream.
  const WireBuffer good = frame_net_message(encode(make_request()));
  dec.feed(good.data(), good.size());
  EXPECT_EQ(dec.next().status().code(), StatusCode::kDataLoss);
}

TEST(Framing, PayloadCorruptionFailsCrc) {
  const WireBuffer payload = encode(make_request());
  for (std::size_t bit = 0; bit < 8; ++bit) {
    WireBuffer framed = frame_net_message(payload);
    framed[kNetFrameHeaderSize + 3] ^= static_cast<std::uint8_t>(1u << bit);
    FrameDecoder dec;
    dec.feed(framed.data(), framed.size());
    EXPECT_EQ(dec.next().status().code(), StatusCode::kDataLoss)
        << "bit " << bit;
  }
}

TEST(Framing, OversizeLengthIsDataLossNotAllocation) {
  // A hostile length must be rejected structurally (both words consistent,
  // so only the cap catches it) — before any payload-sized buffering.
  const std::uint32_t huge = kMaxNetFramePayload + 1;
  WireBuffer framed;
  auto put_u32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      framed.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  put_u32(huge);
  put_u32(~huge);
  put_u32(0);
  FrameDecoder dec;
  dec.feed(framed.data(), framed.size());
  EXPECT_EQ(dec.next().status().code(), StatusCode::kDataLoss);
  EXPECT_TRUE(dec.poisoned());
}

TEST(Framing, TornTailIsNeedMoreDataNotCorruption) {
  // A frame cut anywhere (header or payload) is indistinguishable from a
  // slow sender: kNeedMoreData, decoder stays healthy.
  const WireBuffer framed = frame_net_message(encode(make_request()));
  for (std::size_t keep = 0; keep < framed.size(); ++keep) {
    FrameDecoder dec;
    dec.feed(framed.data(), keep);
    EXPECT_EQ(dec.next().status().code(), StatusCode::kNeedMoreData);
    EXPECT_FALSE(dec.poisoned());
  }
}

TEST(Framing, CompactionPreservesStreamAcrossManyFrames) {
  // Push enough frames through a single decoder that the internal buffer
  // compaction path runs repeatedly.
  FrameDecoder dec;
  const WireBuffer payload = encode(make_request());
  const WireBuffer framed = frame_net_message(payload);
  for (int i = 0; i < 1000; ++i) {
    dec.feed(framed.data(), framed.size());
    auto out = dec.next();
    ASSERT_TRUE(out.is_ok()) << "frame " << i;
    ASSERT_EQ(out.value(), payload);
  }
  EXPECT_EQ(dec.buffered(), 0u);
}

// ---- The epoll server over loopback ----

class NetServerTest : public ::testing::Test {
 protected:
  void boot(ServerOptions opts = ServerOptions{}) {
    DumbbellOptions topo;
    topo.edge_pairs = 2;
    // Wide pipes: these tests admit thousands of 100 kb/s flows and only
    // the 1e12-rho "monster" requests should ever be rejected.
    topo.access_capacity = 10e9;
    topo.bottleneck_capacity = 4e9;
    spec_ = dumbbell_topology(topo);
    bb_ = std::make_unique<BandwidthBroker>(spec_, broker_options_);
    front_ = std::make_unique<ConcurrentBrokerFront>(*bb_, 1);
    server_ = std::make_unique<QosbbServer>(*front_, opts);
    ASSERT_TRUE(server_->start().is_ok());
    ASSERT_TRUE(server_->provision_pair("I0", "E0").is_ok());
    ASSERT_TRUE(server_->provision_pair("I1", "E1").is_ok());
    loop_ = std::thread([this] { server_->run(); });
  }

  void stop() {
    if (server_ != nullptr && loop_.joinable()) {
      server_->request_stop();
      loop_.join();
    }
  }

  void TearDown() override { stop(); }

  std::uint32_t digest() {
    auto d = broker_state_digest(server_->broker());
    EXPECT_TRUE(d.is_ok());
    return d.is_ok() ? d.value() : 0;
  }

  BrokerOptions broker_options_;
  DomainSpec spec_;
  std::unique_ptr<BandwidthBroker> bb_;
  std::unique_ptr<ConcurrentBrokerFront> front_;
  std::unique_ptr<QosbbServer> server_;
  std::thread loop_;
};

TEST_F(NetServerTest, AdmitTeardownRoundTrip) {
  boot();
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).is_ok());

  ASSERT_TRUE(client.send_message(encode(make_request())).is_ok());
  auto reply = client.read_message();
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  ASSERT_EQ(peek_type(reply.value()).value(), MessageType::kReservationReply);
  auto res = decode_reservation(reply.value());
  ASSERT_TRUE(res.is_ok());
  EXPECT_NE(res.value().flow, kInvalidFlowId);
  EXPECT_GE(res.value().params.rate, 1e5);

  ASSERT_TRUE(
      client.send_message(encode(TeardownRequest{res.value().flow})).is_ok());
  auto ack = client.read_message();
  ASSERT_TRUE(ack.is_ok());
  ASSERT_EQ(peek_type(ack.value()).value(), MessageType::kRejectReply);
  EXPECT_EQ(decode_reject_reply(ack.value()).value().reason,
            RejectReason::kNone);
}

TEST_F(NetServerTest, OverloadIsRejectedWithReason) {
  boot();
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).is_ok());
  // A flow wider than the whole bottleneck cannot be admitted.
  FlowServiceRequest req = make_request(0, /*rho=*/1e12);
  ASSERT_TRUE(client.send_message(encode(req)).is_ok());
  auto reply = client.read_message();
  ASSERT_TRUE(reply.is_ok());
  ASSERT_EQ(peek_type(reply.value()).value(), MessageType::kRejectReply);
  EXPECT_NE(decode_reject_reply(reply.value()).value().reason,
            RejectReason::kNone);
  // Stats are written by the loop thread: only read them after stop().
  stop();
  EXPECT_EQ(server_->stats().admit_requests, 1u);
  EXPECT_EQ(server_->stats().rejects, 1u);
  EXPECT_EQ(server_->stats().admits, 0u);
}

TEST_F(NetServerTest, TeardownOfUnknownFlowFailsButKeepsConnection) {
  boot();
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).is_ok());
  ASSERT_TRUE(
      client.send_message(encode(TeardownRequest{987654321})).is_ok());
  auto ack = client.read_message();
  ASSERT_TRUE(ack.is_ok());
  ASSERT_EQ(peek_type(ack.value()).value(), MessageType::kRejectReply);
  EXPECT_NE(decode_reject_reply(ack.value()).value().reason,
            RejectReason::kNone);
  // The connection survives a failed teardown: a real admit still works.
  ASSERT_TRUE(client.send_message(encode(make_request())).is_ok());
  auto reply = client.read_message();
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(peek_type(reply.value()).value(), MessageType::kReservationReply);
}

TEST_F(NetServerTest, PipelinedRepliesArriveInOrder) {
  boot();
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).is_ok());
  // Burst: admit, admit, teardown(unknown), admit — one write, then read
  // the four replies back positionally.
  WireBuffer burst;
  for (const WireBuffer& msg :
       {encode(make_request(0)), encode(make_request(1)),
        encode(TeardownRequest{424242}), encode(make_request(0))}) {
    const WireBuffer framed = frame_net_message(msg);
    burst.insert(burst.end(), framed.begin(), framed.end());
  }
  ASSERT_TRUE(client.send_raw(burst).is_ok());

  const MessageType expect[] = {
      MessageType::kReservationReply, MessageType::kReservationReply,
      MessageType::kRejectReply, MessageType::kReservationReply};
  for (int i = 0; i < 4; ++i) {
    auto reply = client.read_message();
    ASSERT_TRUE(reply.is_ok()) << "reply " << i;
    EXPECT_EQ(peek_type(reply.value()).value(), expect[i]) << "reply " << i;
  }
  stop();
  // The two consecutive leading admits were dispatched as one batch.
  EXPECT_EQ(server_->stats().admit_requests, 3u);
  EXPECT_EQ(server_->stats().teardown_failures, 1u);
  EXPECT_LE(server_->stats().batches, server_->stats().batched_requests);
}

TEST_F(NetServerTest, ManyPipelinedAdmitsAllAnswered) {
  boot();
  const int kCount = 500;
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).is_ok());
  WireBuffer burst;
  for (int i = 0; i < kCount; ++i) {
    const WireBuffer framed = frame_net_message(encode(make_request(i % 2)));
    burst.insert(burst.end(), framed.begin(), framed.end());
  }
  // Writer thread: a full-pipe sender must not deadlock against the reader.
  std::thread writer([&] { EXPECT_TRUE(client.send_raw(burst).is_ok()); });
  int admitted = 0;
  for (int i = 0; i < kCount; ++i) {
    auto reply = client.read_message(10000);
    ASSERT_TRUE(reply.is_ok()) << "reply " << i;
    if (peek_type(reply.value()).value() == MessageType::kReservationReply) {
      ++admitted;
    }
  }
  writer.join();
  stop();
  EXPECT_EQ(admitted, kCount);
  EXPECT_EQ(server_->stats().admit_requests,
            static_cast<std::uint64_t>(kCount));
  EXPECT_EQ(server_->stats().admits + server_->stats().rejects,
            static_cast<std::uint64_t>(kCount));
  EXPECT_EQ(server_->stats().decode_errors, 0u);
}

TEST_F(NetServerTest, SlowReaderHitsBackpressureButLosesNothing) {
  ServerOptions opts;
  opts.write_high_watermark = 4096;
  opts.write_low_watermark = 1024;
  boot(opts);
  const int kCount = 4000;
  BlockingClient client;
  // Tiny receive window: replies can't drain into the client's kernel
  // buffer, so the server's userspace reply buffer must back up.
  ASSERT_TRUE(
      client.connect("127.0.0.1", server_->port(), /*rcvbuf_bytes=*/4096)
          .is_ok());
  WireBuffer burst;
  for (int i = 0; i < kCount; ++i) {
    const WireBuffer framed = frame_net_message(encode(make_request(i % 2)));
    burst.insert(burst.end(), framed.begin(), framed.end());
  }
  // Send everything, and hold off reading while the server churns: its
  // write buffer crosses the (tiny) watermark and it must pause reading
  // instead of buffering without bound.
  std::thread writer([&] { EXPECT_TRUE(client.send_raw(burst).is_ok()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  int answered = 0;
  for (int i = 0; i < kCount; ++i) {
    auto reply = client.read_message(10000);
    ASSERT_TRUE(reply.is_ok()) << "reply " << i;
    ++answered;
  }
  writer.join();
  stop();
  EXPECT_EQ(answered, kCount);
  EXPECT_EQ(server_->stats().admit_requests,
            static_cast<std::uint64_t>(kCount));
  EXPECT_GE(server_->stats().backpressure_pauses, 1u);
  EXPECT_EQ(server_->stats().decode_errors, 0u);
}

// ---- Hostile input: the broker must be untouchable by garbage ----

TEST_F(NetServerTest, RandomGarbageLeavesBrokerUntouched) {
  boot();
  // Seed real state so the digest is non-trivial.
  BlockingClient setup;
  ASSERT_TRUE(setup.connect("127.0.0.1", server_->port()).is_ok());
  ASSERT_TRUE(setup.send_message(encode(make_request())).is_ok());
  ASSERT_TRUE(setup.read_message().is_ok());
  const std::uint32_t before = digest();

  Rng rng(77);
  for (int round = 0; round < 32; ++round) {
    BlockingClient hostile;
    ASSERT_TRUE(hostile.connect("127.0.0.1", server_->port()).is_ok());
    WireBuffer junk(static_cast<std::size_t>(rng.uniform_int(1, 512)));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    ASSERT_TRUE(hostile.send_raw(junk).is_ok());
    hostile.shutdown_send();
    // The server either answers with a reject or just closes; it must not
    // hang, and it must not admit anything.
    while (true) {
      auto reply = hostile.read_message(5000);
      if (!reply.is_ok()) {
        EXPECT_NE(reply.status().code(), StatusCode::kUnavailable)
            << "server hung on garbage round " << round;
        break;
      }
      EXPECT_EQ(peek_type(reply.value()).value(), MessageType::kRejectReply);
    }
  }
  EXPECT_EQ(digest(), before);
  // The server still serves real clients afterwards.
  BlockingClient after;
  ASSERT_TRUE(after.connect("127.0.0.1", server_->port()).is_ok());
  ASSERT_TRUE(after.send_message(encode(make_request(1))).is_ok());
  auto reply = after.read_message();
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(peek_type(reply.value()).value(), MessageType::kReservationReply);
}

TEST_F(NetServerTest, BitFlippedFrameIsRejectedAndConnectionClosed) {
  boot();
  const std::uint32_t before = digest();
  Rng rng(99);
  for (int round = 0; round < 64; ++round) {
    WireBuffer framed = frame_net_message(encode(make_request()));
    const std::size_t byte = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(framed.size()) - 1));
    framed[byte] ^=
        static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    BlockingClient hostile;
    ASSERT_TRUE(hostile.connect("127.0.0.1", server_->port()).is_ok());
    ASSERT_TRUE(hostile.send_raw(framed).is_ok());
    hostile.shutdown_send();
    // Whatever the flip hit (framing header, CRC, wire header, profile
    // floats) the flow must NOT be admitted: either a reject reply, a
    // close, or — if the flip left the frame undecodably short — nothing.
    while (true) {
      auto reply = hostile.read_message(5000);
      if (!reply.is_ok()) break;
      ASSERT_EQ(peek_type(reply.value()).value(), MessageType::kRejectReply)
          << "round " << round << " byte " << byte;
    }
  }
  EXPECT_EQ(digest(), before);
}

TEST_F(NetServerTest, TruncatedFrameOnCloseIsDroppedSilently) {
  boot();
  const std::uint32_t before = digest();
  const WireBuffer framed = frame_net_message(encode(make_request()));
  for (std::size_t keep : {std::size_t{1}, std::size_t{6},
                           std::size_t{kNetFrameHeaderSize},
                           framed.size() - 1}) {
    BlockingClient hostile;
    ASSERT_TRUE(hostile.connect("127.0.0.1", server_->port()).is_ok());
    WireBuffer torn(framed.begin(), framed.begin() + static_cast<long>(keep));
    ASSERT_TRUE(hostile.send_raw(torn).is_ok());
    hostile.shutdown_send();
    auto reply = hostile.read_message(5000);
    // A torn tail is a slow-sender artifact, not corruption: the server
    // closes without a reject and without admitting anything.
    EXPECT_FALSE(reply.is_ok());
    EXPECT_NE(reply.status().code(), StatusCode::kUnavailable);
  }
  stop();
  EXPECT_EQ(server_->stats().admit_requests, 0u);
  EXPECT_EQ(broker_state_digest(server_->broker()).value(), before);
}

TEST_F(NetServerTest, ServerBoundMessageTypeIsAProtocolError) {
  boot();
  // A syntactically valid frame carrying a reply-type message (the server
  // only ever SENDS these) must be refused without touching the broker.
  const std::uint32_t before = digest();
  Reservation res;
  res.flow = 1;
  res.path = 1;
  res.params = {1e6, 0.01};
  res.e2e_bound = 0.5;
  BlockingClient hostile;
  ASSERT_TRUE(hostile.connect("127.0.0.1", server_->port()).is_ok());
  ASSERT_TRUE(hostile.send_message(encode(res)).is_ok());
  auto reply = hostile.read_message(5000);
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(peek_type(reply.value()).value(), MessageType::kRejectReply);
  stop();
  EXPECT_EQ(server_->stats().decode_errors, 1u);
  EXPECT_EQ(broker_state_digest(server_->broker()).value(), before);
}

// ---- The differential check: network path == library path ----

TEST_F(NetServerTest, DifferentialDigestMatchesLibraryReplay) {
  ServerOptions opts;
  opts.record_ops = true;
  boot(opts);
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).is_ok());
  std::vector<FlowId> admitted;
  for (int i = 0; i < 60; ++i) {
    // Mix: normal admits on both pairs, a rejected monster every 7th, a
    // teardown of an earlier flow every 5th.
    if (i % 5 == 4 && !admitted.empty()) {
      const FlowId victim = admitted.back();
      admitted.pop_back();
      ASSERT_TRUE(client.send_message(encode(TeardownRequest{victim})).is_ok());
      auto ack = client.read_message();
      ASSERT_TRUE(ack.is_ok());
      EXPECT_EQ(decode_reject_reply(ack.value()).value().reason,
                RejectReason::kNone);
      continue;
    }
    const double rho = (i % 7 == 6) ? 1e12 : 1e5 * (1 + i % 3);
    ASSERT_TRUE(client.send_message(encode(make_request(i % 2, rho))).is_ok());
    auto reply = client.read_message();
    ASSERT_TRUE(reply.is_ok());
    if (peek_type(reply.value()).value() == MessageType::kReservationReply) {
      admitted.push_back(decode_reservation(reply.value()).value().flow);
    } else {
      EXPECT_EQ(rho, 1e12) << "unexpected reject at op " << i;
    }
  }
  client.close();
  stop();

  const DifferentialReport rep = run_differential_check(
      spec_, broker_options_, server_->recorded_ops(), server_->broker());
  EXPECT_TRUE(rep.ok) << rep.detail;
  EXPECT_EQ(rep.live_digest, rep.replay_digest);
  EXPECT_GT(rep.ops_replayed, 60u);  // provisions + admits + releases
}

TEST_F(NetServerTest, DifferentialCatchesTamperedRecording) {
  // Sanity: the check is not vacuous — a forged admit decision must fail.
  ServerOptions opts;
  opts.record_ops = true;
  boot(opts);
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).is_ok());
  ASSERT_TRUE(client.send_message(encode(make_request())).is_ok());
  ASSERT_TRUE(client.read_message().is_ok());
  client.close();
  stop();

  std::vector<RecordedOp> tampered = server_->recorded_ops();
  ASSERT_FALSE(tampered.empty());
  RecordedOp forged = tampered.back();
  ASSERT_EQ(forged.kind, RecordedOp::Kind::kAdmit);
  forged.request.profile =
      TrafficProfile::make(24000.0, 2e5, 4e5, 12000.0);  // not what ran
  tampered.push_back(forged);
  const DifferentialReport rep = run_differential_check(
      spec_, broker_options_, tampered, server_->broker());
  EXPECT_FALSE(rep.ok);
}

TEST(NetDigest, DeterministicAcrossCalls) {
  DumbbellOptions topo;
  topo.edge_pairs = 2;
  const DomainSpec spec = dumbbell_topology(topo);
  BandwidthBroker bb(spec, BrokerOptions{});
  auto a = broker_state_digest(bb);
  auto b = broker_state_digest(bb);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value(), b.value());
}

}  // namespace
}  // namespace qosbb
