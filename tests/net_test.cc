// Tests for the network signaling front: stream framing (every split
// point, every corruption class), the epoll server end to end over
// loopback, hostile-input hardening (the broker state must be untouched by
// garbage bytes), and the server-vs-library differential digest check.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/broker.h"
#include "core/concurrent_front.h"
#include "core/durable_broker.h"
#include "core/journal.h"
#include "core/wire.h"
#include "net/client.h"
#include "net/framing.h"
#include "net/server.h"
#include "topo/builders.h"
#include "util/rng.h"

namespace qosbb {
namespace {

FlowServiceRequest make_request(int pair = 0, double rho = 1e5) {
  FlowServiceRequest req;
  req.profile = TrafficProfile::make(/*sigma=*/24000.0, rho,
                                     /*peak=*/2.0 * rho, /*l_max=*/12000.0);
  req.e2e_delay_req = 1.0;
  req.ingress = "I" + std::to_string(pair);
  req.egress = "E" + std::to_string(pair);
  return req;
}

// ---- Framing: the length|~length|crc32 stream codec ----

TEST(Framing, RoundTripSingleFrame) {
  const WireBuffer payload = encode(make_request());
  const WireBuffer framed = frame_net_message(payload);
  ASSERT_EQ(framed.size(), payload.size() + kNetFrameHeaderSize);

  FrameDecoder dec;
  dec.feed(framed.data(), framed.size());
  auto out = dec.next();
  ASSERT_TRUE(out.is_ok()) << out.status().to_string();
  EXPECT_EQ(out.value(), payload);
  EXPECT_EQ(dec.next().status().code(), StatusCode::kNeedMoreData);
  EXPECT_FALSE(dec.poisoned());
}

TEST(Framing, EverySplitPointNeedsMoreDataThenDecodes) {
  const WireBuffer payload = encode(make_request());
  const WireBuffer framed = frame_net_message(payload);
  for (std::size_t cut = 0; cut < framed.size(); ++cut) {
    FrameDecoder dec;
    dec.feed(framed.data(), cut);
    auto partial = dec.next();
    ASSERT_FALSE(partial.is_ok()) << "cut=" << cut;
    ASSERT_EQ(partial.status().code(), StatusCode::kNeedMoreData)
        << "cut=" << cut << ": " << partial.status().to_string();
    ASSERT_FALSE(dec.poisoned()) << "cut=" << cut;
    dec.feed(framed.data() + cut, framed.size() - cut);
    auto whole = dec.next();
    ASSERT_TRUE(whole.is_ok())
        << "cut=" << cut << ": " << whole.status().to_string();
    EXPECT_EQ(whole.value(), payload);
  }
}

TEST(Framing, ByteByByteFeed) {
  const WireBuffer payload = encode(make_request());
  const WireBuffer framed = frame_net_message(payload);
  FrameDecoder dec;
  for (std::size_t i = 0; i + 1 < framed.size(); ++i) {
    dec.feed(&framed[i], 1);
    ASSERT_EQ(dec.next().status().code(), StatusCode::kNeedMoreData)
        << "after byte " << i;
  }
  dec.feed(&framed[framed.size() - 1], 1);
  auto out = dec.next();
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value(), payload);
}

TEST(Framing, PipelinedFramesDecodeInOrder) {
  std::vector<WireBuffer> payloads;
  WireBuffer stream;
  for (int i = 0; i < 5; ++i) {
    payloads.push_back(encode(make_request(i % 2)));
    const WireBuffer framed = frame_net_message(payloads.back());
    stream.insert(stream.end(), framed.begin(), framed.end());
  }
  FrameDecoder dec;
  dec.feed(stream.data(), stream.size());
  for (int i = 0; i < 5; ++i) {
    auto out = dec.next();
    ASSERT_TRUE(out.is_ok()) << "frame " << i;
    EXPECT_EQ(out.value(), payloads[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(dec.next().status().code(), StatusCode::kNeedMoreData);
}

TEST(Framing, LengthComplementMismatchIsDataLossAndPoisons) {
  WireBuffer framed = frame_net_message(encode(make_request()));
  framed[5] ^= 0x10;  // corrupt the ~len word
  FrameDecoder dec;
  dec.feed(framed.data(), framed.size());
  EXPECT_EQ(dec.next().status().code(), StatusCode::kDataLoss);
  EXPECT_TRUE(dec.poisoned());
  // Feeding good bytes later cannot resynchronize a corrupt stream.
  const WireBuffer good = frame_net_message(encode(make_request()));
  dec.feed(good.data(), good.size());
  EXPECT_EQ(dec.next().status().code(), StatusCode::kDataLoss);
}

TEST(Framing, PayloadCorruptionFailsCrc) {
  const WireBuffer payload = encode(make_request());
  for (std::size_t bit = 0; bit < 8; ++bit) {
    WireBuffer framed = frame_net_message(payload);
    framed[kNetFrameHeaderSize + 3] ^= static_cast<std::uint8_t>(1u << bit);
    FrameDecoder dec;
    dec.feed(framed.data(), framed.size());
    EXPECT_EQ(dec.next().status().code(), StatusCode::kDataLoss)
        << "bit " << bit;
  }
}

TEST(Framing, OversizeLengthIsDataLossNotAllocation) {
  // A hostile length must be rejected structurally (both words consistent,
  // so only the cap catches it) — before any payload-sized buffering.
  const std::uint32_t huge = kMaxNetFramePayload + 1;
  WireBuffer framed;
  auto put_u32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      framed.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  put_u32(huge);
  put_u32(~huge);
  put_u32(0);
  FrameDecoder dec;
  dec.feed(framed.data(), framed.size());
  EXPECT_EQ(dec.next().status().code(), StatusCode::kDataLoss);
  EXPECT_TRUE(dec.poisoned());
}

TEST(Framing, TornTailIsNeedMoreDataNotCorruption) {
  // A frame cut anywhere (header or payload) is indistinguishable from a
  // slow sender: kNeedMoreData, decoder stays healthy.
  const WireBuffer framed = frame_net_message(encode(make_request()));
  for (std::size_t keep = 0; keep < framed.size(); ++keep) {
    FrameDecoder dec;
    dec.feed(framed.data(), keep);
    EXPECT_EQ(dec.next().status().code(), StatusCode::kNeedMoreData);
    EXPECT_FALSE(dec.poisoned());
  }
}

TEST(Framing, CompactionPreservesStreamAcrossManyFrames) {
  // Push enough frames through a single decoder that the internal buffer
  // compaction path runs repeatedly.
  FrameDecoder dec;
  const WireBuffer payload = encode(make_request());
  const WireBuffer framed = frame_net_message(payload);
  for (int i = 0; i < 1000; ++i) {
    dec.feed(framed.data(), framed.size());
    auto out = dec.next();
    ASSERT_TRUE(out.is_ok()) << "frame " << i;
    ASSERT_EQ(out.value(), payload);
  }
  EXPECT_EQ(dec.buffered(), 0u);
}

// ---- The epoll server over loopback ----

class NetServerTest : public ::testing::Test {
 protected:
  void boot(ServerOptions opts = ServerOptions{}) {
    DumbbellOptions topo;
    topo.edge_pairs = 2;
    // Wide pipes: these tests admit thousands of 100 kb/s flows and only
    // the 1e12-rho "monster" requests should ever be rejected.
    topo.access_capacity = 10e9;
    topo.bottleneck_capacity = 4e9;
    spec_ = dumbbell_topology(topo);
    bb_ = std::make_unique<BandwidthBroker>(spec_, broker_options_);
    front_ = std::make_unique<ConcurrentBrokerFront>(*bb_, 1);
    server_ = std::make_unique<QosbbServer>(*front_, opts);
    ASSERT_TRUE(server_->start().is_ok());
    ASSERT_TRUE(server_->provision_pair("I0", "E0").is_ok());
    ASSERT_TRUE(server_->provision_pair("I1", "E1").is_ok());
    loop_ = std::thread([this] { server_->run(); });
  }

  void stop() {
    if (server_ != nullptr && loop_.joinable()) {
      server_->request_stop();
      loop_.join();
    }
  }

  void TearDown() override { stop(); }

  std::uint32_t digest() {
    auto d = broker_state_digest(server_->broker());
    EXPECT_TRUE(d.is_ok());
    return d.is_ok() ? d.value() : 0;
  }

  BrokerOptions broker_options_;
  DomainSpec spec_;
  std::unique_ptr<BandwidthBroker> bb_;
  std::unique_ptr<ConcurrentBrokerFront> front_;
  std::unique_ptr<QosbbServer> server_;
  std::thread loop_;
};

TEST_F(NetServerTest, AdmitTeardownRoundTrip) {
  boot();
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).is_ok());

  ASSERT_TRUE(client.send_message(encode(make_request())).is_ok());
  auto reply = client.read_message();
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  ASSERT_EQ(peek_type(reply.value()).value(), MessageType::kReservationReply);
  auto res = decode_reservation(reply.value());
  ASSERT_TRUE(res.is_ok());
  EXPECT_NE(res.value().flow, kInvalidFlowId);
  EXPECT_GE(res.value().params.rate, 1e5);

  ASSERT_TRUE(
      client.send_message(encode(TeardownRequest{res.value().flow})).is_ok());
  auto ack = client.read_message();
  ASSERT_TRUE(ack.is_ok());
  ASSERT_EQ(peek_type(ack.value()).value(), MessageType::kRejectReply);
  EXPECT_EQ(decode_reject_reply(ack.value()).value().reason,
            RejectReason::kNone);
}

TEST_F(NetServerTest, OverloadIsRejectedWithReason) {
  boot();
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).is_ok());
  // A flow wider than the whole bottleneck cannot be admitted.
  FlowServiceRequest req = make_request(0, /*rho=*/1e12);
  ASSERT_TRUE(client.send_message(encode(req)).is_ok());
  auto reply = client.read_message();
  ASSERT_TRUE(reply.is_ok());
  ASSERT_EQ(peek_type(reply.value()).value(), MessageType::kRejectReply);
  EXPECT_NE(decode_reject_reply(reply.value()).value().reason,
            RejectReason::kNone);
  // Stats are written by the loop thread: only read them after stop().
  stop();
  EXPECT_EQ(server_->stats().admit_requests, 1u);
  EXPECT_EQ(server_->stats().rejects, 1u);
  EXPECT_EQ(server_->stats().admits, 0u);
}

TEST_F(NetServerTest, TeardownOfUnknownFlowFailsButKeepsConnection) {
  boot();
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).is_ok());
  ASSERT_TRUE(
      client.send_message(encode(TeardownRequest{987654321})).is_ok());
  auto ack = client.read_message();
  ASSERT_TRUE(ack.is_ok());
  ASSERT_EQ(peek_type(ack.value()).value(), MessageType::kRejectReply);
  EXPECT_NE(decode_reject_reply(ack.value()).value().reason,
            RejectReason::kNone);
  // The connection survives a failed teardown: a real admit still works.
  ASSERT_TRUE(client.send_message(encode(make_request())).is_ok());
  auto reply = client.read_message();
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(peek_type(reply.value()).value(), MessageType::kReservationReply);
}

TEST_F(NetServerTest, PipelinedRepliesArriveInOrder) {
  boot();
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).is_ok());
  // Burst: admit, admit, teardown(unknown), admit — one write, then read
  // the four replies back positionally.
  WireBuffer burst;
  for (const WireBuffer& msg :
       {encode(make_request(0)), encode(make_request(1)),
        encode(TeardownRequest{424242}), encode(make_request(0))}) {
    const WireBuffer framed = frame_net_message(msg);
    burst.insert(burst.end(), framed.begin(), framed.end());
  }
  ASSERT_TRUE(client.send_raw(burst).is_ok());

  const MessageType expect[] = {
      MessageType::kReservationReply, MessageType::kReservationReply,
      MessageType::kRejectReply, MessageType::kReservationReply};
  for (int i = 0; i < 4; ++i) {
    auto reply = client.read_message();
    ASSERT_TRUE(reply.is_ok()) << "reply " << i;
    EXPECT_EQ(peek_type(reply.value()).value(), expect[i]) << "reply " << i;
  }
  stop();
  // The two consecutive leading admits were dispatched as one batch.
  EXPECT_EQ(server_->stats().admit_requests, 3u);
  EXPECT_EQ(server_->stats().teardown_failures, 1u);
  EXPECT_LE(server_->stats().batches, server_->stats().batched_requests);
}

TEST_F(NetServerTest, ManyPipelinedAdmitsAllAnswered) {
  boot();
  const int kCount = 500;
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).is_ok());
  WireBuffer burst;
  for (int i = 0; i < kCount; ++i) {
    const WireBuffer framed = frame_net_message(encode(make_request(i % 2)));
    burst.insert(burst.end(), framed.begin(), framed.end());
  }
  // Writer thread: a full-pipe sender must not deadlock against the reader.
  std::thread writer([&] { EXPECT_TRUE(client.send_raw(burst).is_ok()); });
  int admitted = 0;
  for (int i = 0; i < kCount; ++i) {
    auto reply = client.read_message(10000);
    ASSERT_TRUE(reply.is_ok()) << "reply " << i;
    if (peek_type(reply.value()).value() == MessageType::kReservationReply) {
      ++admitted;
    }
  }
  writer.join();
  stop();
  EXPECT_EQ(admitted, kCount);
  EXPECT_EQ(server_->stats().admit_requests,
            static_cast<std::uint64_t>(kCount));
  EXPECT_EQ(server_->stats().admits + server_->stats().rejects,
            static_cast<std::uint64_t>(kCount));
  EXPECT_EQ(server_->stats().decode_errors, 0u);
}

TEST_F(NetServerTest, SlowReaderHitsBackpressureButLosesNothing) {
  ServerOptions opts;
  opts.write_high_watermark = 4096;
  opts.write_low_watermark = 1024;
  boot(opts);
  const int kCount = 4000;
  BlockingClient client;
  // Tiny receive window: replies can't drain into the client's kernel
  // buffer, so the server's userspace reply buffer must back up.
  ASSERT_TRUE(
      client.connect("127.0.0.1", server_->port(), /*rcvbuf_bytes=*/4096)
          .is_ok());
  WireBuffer burst;
  for (int i = 0; i < kCount; ++i) {
    const WireBuffer framed = frame_net_message(encode(make_request(i % 2)));
    burst.insert(burst.end(), framed.begin(), framed.end());
  }
  // Send everything, and hold off reading while the server churns: its
  // write buffer crosses the (tiny) watermark and it must pause reading
  // instead of buffering without bound.
  std::thread writer([&] { EXPECT_TRUE(client.send_raw(burst).is_ok()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  int answered = 0;
  for (int i = 0; i < kCount; ++i) {
    auto reply = client.read_message(10000);
    ASSERT_TRUE(reply.is_ok()) << "reply " << i;
    ++answered;
  }
  writer.join();
  stop();
  EXPECT_EQ(answered, kCount);
  EXPECT_EQ(server_->stats().admit_requests,
            static_cast<std::uint64_t>(kCount));
  EXPECT_GE(server_->stats().backpressure_pauses, 1u);
  EXPECT_EQ(server_->stats().decode_errors, 0u);
}

// ---- Hostile input: the broker must be untouchable by garbage ----

TEST_F(NetServerTest, RandomGarbageLeavesBrokerUntouched) {
  boot();
  // Seed real state so the digest is non-trivial.
  BlockingClient setup;
  ASSERT_TRUE(setup.connect("127.0.0.1", server_->port()).is_ok());
  ASSERT_TRUE(setup.send_message(encode(make_request())).is_ok());
  ASSERT_TRUE(setup.read_message().is_ok());
  const std::uint32_t before = digest();

  Rng rng(77);
  for (int round = 0; round < 32; ++round) {
    BlockingClient hostile;
    ASSERT_TRUE(hostile.connect("127.0.0.1", server_->port()).is_ok());
    WireBuffer junk(static_cast<std::size_t>(rng.uniform_int(1, 512)));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    ASSERT_TRUE(hostile.send_raw(junk).is_ok());
    hostile.shutdown_send();
    // The server either answers with a reject or just closes; it must not
    // hang, and it must not admit anything.
    while (true) {
      auto reply = hostile.read_message(5000);
      if (!reply.is_ok()) {
        EXPECT_NE(reply.status().code(), StatusCode::kUnavailable)
            << "server hung on garbage round " << round;
        break;
      }
      EXPECT_EQ(peek_type(reply.value()).value(), MessageType::kRejectReply);
    }
  }
  EXPECT_EQ(digest(), before);
  // The server still serves real clients afterwards.
  BlockingClient after;
  ASSERT_TRUE(after.connect("127.0.0.1", server_->port()).is_ok());
  ASSERT_TRUE(after.send_message(encode(make_request(1))).is_ok());
  auto reply = after.read_message();
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(peek_type(reply.value()).value(), MessageType::kReservationReply);
}

TEST_F(NetServerTest, BitFlippedFrameIsRejectedAndConnectionClosed) {
  boot();
  const std::uint32_t before = digest();
  Rng rng(99);
  for (int round = 0; round < 64; ++round) {
    WireBuffer framed = frame_net_message(encode(make_request()));
    const std::size_t byte = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(framed.size()) - 1));
    framed[byte] ^=
        static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    BlockingClient hostile;
    ASSERT_TRUE(hostile.connect("127.0.0.1", server_->port()).is_ok());
    ASSERT_TRUE(hostile.send_raw(framed).is_ok());
    hostile.shutdown_send();
    // Whatever the flip hit (framing header, CRC, wire header, profile
    // floats) the flow must NOT be admitted: either a reject reply, a
    // close, or — if the flip left the frame undecodably short — nothing.
    while (true) {
      auto reply = hostile.read_message(5000);
      if (!reply.is_ok()) break;
      ASSERT_EQ(peek_type(reply.value()).value(), MessageType::kRejectReply)
          << "round " << round << " byte " << byte;
    }
  }
  EXPECT_EQ(digest(), before);
}

TEST_F(NetServerTest, TruncatedFrameOnCloseIsDroppedSilently) {
  boot();
  const std::uint32_t before = digest();
  const WireBuffer framed = frame_net_message(encode(make_request()));
  for (std::size_t keep : {std::size_t{1}, std::size_t{6},
                           std::size_t{kNetFrameHeaderSize},
                           framed.size() - 1}) {
    BlockingClient hostile;
    ASSERT_TRUE(hostile.connect("127.0.0.1", server_->port()).is_ok());
    WireBuffer torn(framed.begin(), framed.begin() + static_cast<long>(keep));
    ASSERT_TRUE(hostile.send_raw(torn).is_ok());
    hostile.shutdown_send();
    auto reply = hostile.read_message(5000);
    // A torn tail is a slow-sender artifact, not corruption: the server
    // closes without a reject and without admitting anything.
    EXPECT_FALSE(reply.is_ok());
    EXPECT_NE(reply.status().code(), StatusCode::kUnavailable);
  }
  stop();
  EXPECT_EQ(server_->stats().admit_requests, 0u);
  EXPECT_EQ(broker_state_digest(server_->broker()).value(), before);
}

TEST_F(NetServerTest, ServerBoundMessageTypeIsAProtocolError) {
  boot();
  // A syntactically valid frame carrying a reply-type message (the server
  // only ever SENDS these) must be refused without touching the broker.
  const std::uint32_t before = digest();
  Reservation res;
  res.flow = 1;
  res.path = 1;
  res.params = {1e6, 0.01};
  res.e2e_bound = 0.5;
  BlockingClient hostile;
  ASSERT_TRUE(hostile.connect("127.0.0.1", server_->port()).is_ok());
  ASSERT_TRUE(hostile.send_message(encode(res)).is_ok());
  auto reply = hostile.read_message(5000);
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(peek_type(reply.value()).value(), MessageType::kRejectReply);
  stop();
  EXPECT_EQ(server_->stats().decode_errors, 1u);
  EXPECT_EQ(broker_state_digest(server_->broker()).value(), before);
}

// ---- The differential check: network path == library path ----

TEST_F(NetServerTest, DifferentialDigestMatchesLibraryReplay) {
  ServerOptions opts;
  opts.record_ops = true;
  boot(opts);
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).is_ok());
  std::vector<FlowId> admitted;
  for (int i = 0; i < 60; ++i) {
    // Mix: normal admits on both pairs, a rejected monster every 7th, a
    // teardown of an earlier flow every 5th.
    if (i % 5 == 4 && !admitted.empty()) {
      const FlowId victim = admitted.back();
      admitted.pop_back();
      ASSERT_TRUE(client.send_message(encode(TeardownRequest{victim})).is_ok());
      auto ack = client.read_message();
      ASSERT_TRUE(ack.is_ok());
      EXPECT_EQ(decode_reject_reply(ack.value()).value().reason,
                RejectReason::kNone);
      continue;
    }
    const double rho = (i % 7 == 6) ? 1e12 : 1e5 * (1 + i % 3);
    ASSERT_TRUE(client.send_message(encode(make_request(i % 2, rho))).is_ok());
    auto reply = client.read_message();
    ASSERT_TRUE(reply.is_ok());
    if (peek_type(reply.value()).value() == MessageType::kReservationReply) {
      admitted.push_back(decode_reservation(reply.value()).value().flow);
    } else {
      EXPECT_EQ(rho, 1e12) << "unexpected reject at op " << i;
    }
  }
  client.close();
  stop();

  const DifferentialReport rep = run_differential_check(
      spec_, broker_options_, server_->recorded_ops(), server_->broker());
  EXPECT_TRUE(rep.ok) << rep.detail;
  EXPECT_EQ(rep.live_digest, rep.replay_digest);
  EXPECT_GT(rep.ops_replayed, 60u);  // provisions + admits + releases
}

TEST_F(NetServerTest, DifferentialCatchesTamperedRecording) {
  // Sanity: the check is not vacuous — a forged admit decision must fail.
  ServerOptions opts;
  opts.record_ops = true;
  boot(opts);
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).is_ok());
  ASSERT_TRUE(client.send_message(encode(make_request())).is_ok());
  ASSERT_TRUE(client.read_message().is_ok());
  client.close();
  stop();

  std::vector<RecordedOp> tampered = server_->recorded_ops();
  ASSERT_FALSE(tampered.empty());
  RecordedOp forged = tampered.back();
  ASSERT_EQ(forged.kind, RecordedOp::Kind::kAdmit);
  forged.request.profile =
      TrafficProfile::make(24000.0, 2e5, 4e5, 12000.0);  // not what ran
  tampered.push_back(forged);
  const DifferentialReport rep = run_differential_check(
      spec_, broker_options_, tampered, server_->broker());
  EXPECT_FALSE(rep.ok);
}

// ---- Overload control: budgets, deadlines, brownout, reaping ----

TEST_F(NetServerTest, PerConnBudgetShedsExcessWithReason) {
  ServerOptions opts;
  opts.max_inflight_per_conn = 1;
  boot(opts);
  const int kCount = 64;
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).is_ok());
  WireBuffer burst;
  for (int i = 0; i < kCount; ++i) {
    const WireBuffer framed = frame_net_message(encode(make_request(i % 2)));
    burst.insert(burst.end(), framed.begin(), framed.end());
  }
  ASSERT_TRUE(client.send_raw(burst).is_ok());
  int reserved = 0;
  int shed = 0;
  for (int i = 0; i < kCount; ++i) {
    auto reply = client.read_message(10000);
    ASSERT_TRUE(reply.is_ok()) << "reply " << i;
    const MessageType type = peek_type(reply.value()).value();
    if (type == MessageType::kReservationReply) {
      ++reserved;
    } else {
      ASSERT_EQ(type, MessageType::kOverloadedReply) << "reply " << i;
      auto over = decode_overloaded_reply(reply.value());
      ASSERT_TRUE(over.is_ok());
      EXPECT_EQ(over.value().reason, ShedReason::kConnBudget);
      EXPECT_GT(over.value().retry_after_ms, 0u);
      ++shed;
    }
  }
  stop();
  // Every request was answered — served or shed, never silently dropped —
  // and a 64-deep burst against a budget of 1 must shed most of it.
  EXPECT_EQ(reserved + shed, kCount);
  EXPECT_GE(shed, kCount / 2);
  EXPECT_EQ(server_->stats().shed_conn, static_cast<std::uint64_t>(shed));
  EXPECT_EQ(server_->stats().admits, static_cast<std::uint64_t>(reserved));
  EXPECT_EQ(server_->stats().decode_errors, 0u);
}

TEST_F(NetServerTest, GlobalBudgetShedsAcrossConnections) {
  ServerOptions opts;
  opts.max_inflight_global = 2;
  opts.max_inflight_per_conn = 1024;  // isolate the global knob
  boot(opts);
  const int kCount = 32;
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).is_ok());
  WireBuffer burst;
  for (int i = 0; i < kCount; ++i) {
    const WireBuffer framed = frame_net_message(encode(make_request(i % 2)));
    burst.insert(burst.end(), framed.begin(), framed.end());
  }
  ASSERT_TRUE(client.send_raw(burst).is_ok());
  int shed = 0;
  for (int i = 0; i < kCount; ++i) {
    auto reply = client.read_message(10000);
    ASSERT_TRUE(reply.is_ok()) << "reply " << i;
    if (peek_type(reply.value()).value() == MessageType::kOverloadedReply) {
      auto over = decode_overloaded_reply(reply.value());
      ASSERT_TRUE(over.is_ok());
      EXPECT_EQ(over.value().reason, ShedReason::kGlobalBudget);
      ++shed;
    }
  }
  stop();
  EXPECT_GE(shed, 1);
  EXPECT_EQ(server_->stats().shed_global, static_cast<std::uint64_t>(shed));
  EXPECT_EQ(server_->stats().shed_conn, 0u);
}

TEST_F(NetServerTest, DeadlineShedsStaleQueuedWorkNotFreshWork) {
  ServerOptions opts;
  // Tiny watermark so a non-reading client wedges the reply path and work
  // piles up in the pending queue long enough to go stale.
  opts.write_high_watermark = 4096;
  opts.write_low_watermark = 1024;
  // ...and a tiny kernel send buffer, or the kernel silently absorbs every
  // reply and the userspace queue never backs up at this request count.
  opts.sndbuf_bytes = 4096;
  opts.request_deadline_ms = 100;
  opts.max_inflight_per_conn = 1u << 20;  // isolate the deadline knob
  opts.max_inflight_global = 1u << 20;
  boot(opts);
  const int kCount = 3000;
  BlockingClient client;
  ASSERT_TRUE(
      client.connect("127.0.0.1", server_->port(), /*rcvbuf_bytes=*/4096)
          .is_ok());
  WireBuffer burst;
  for (int i = 0; i < kCount; ++i) {
    const WireBuffer framed = frame_net_message(encode(make_request(i % 2)));
    burst.insert(burst.end(), framed.begin(), framed.end());
  }
  std::thread writer([&] { EXPECT_TRUE(client.send_raw(burst).is_ok()); });
  // Let queued ops age past the deadline before draining replies.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  int answered = 0;
  int shed = 0;
  for (int i = 0; i < kCount; ++i) {
    auto reply = client.read_message(10000);
    ASSERT_TRUE(reply.is_ok()) << "reply " << i;
    ++answered;
    if (peek_type(reply.value()).value() == MessageType::kOverloadedReply) {
      auto over = decode_overloaded_reply(reply.value());
      ASSERT_TRUE(over.is_ok());
      EXPECT_EQ(over.value().reason, ShedReason::kDeadline);
      ++shed;
    }
  }
  writer.join();
  stop();
  // Expired work is shed with an explicit reply — nothing vanishes — and
  // only the deadline knob fired.
  EXPECT_EQ(answered, kCount);
  EXPECT_GE(shed, 1);
  EXPECT_EQ(server_->stats().shed_deadline, static_cast<std::uint64_t>(shed));
  EXPECT_EQ(server_->stats().shed_conn, 0u);
  EXPECT_EQ(server_->stats().shed_global, 0u);
  EXPECT_EQ(server_->stats().decode_errors, 0u);
}

TEST_F(NetServerTest, SlowlorisPartialFrameIsReaped) {
  ServerOptions opts;
  opts.partial_frame_timeout_ms = 200;
  boot(opts);
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).is_ok());
  const WireBuffer framed = frame_net_message(encode(make_request()));
  WireBuffer half(framed.begin(),
                  framed.begin() + static_cast<long>(framed.size() / 2));
  ASSERT_TRUE(client.send_raw(half).is_ok());
  // The server must close us, not wait forever for the rest of the frame.
  const auto t0 = std::chrono::steady_clock::now();
  auto reply = client.read_message(5000);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  ASSERT_FALSE(reply.is_ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kNotFound);
  EXPECT_LT(elapsed.count(), 3000);
  stop();
  EXPECT_EQ(server_->stats().reaped_partial, 1u);
  EXPECT_EQ(server_->stats().admit_requests, 0u);
}

TEST_F(NetServerTest, IdleConnectionIsReapedAfterTimeout) {
  ServerOptions opts;
  opts.idle_timeout_ms = 200;
  boot(opts);
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).is_ok());
  // A completed round-trip, then silence: the idle reaper must fire.
  ASSERT_TRUE(client.send_message(encode(make_request())).is_ok());
  ASSERT_TRUE(client.read_message().is_ok());
  auto reply = client.read_message(5000);
  ASSERT_FALSE(reply.is_ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kNotFound);
  stop();
  EXPECT_EQ(server_->stats().reaped_idle, 1u);
  EXPECT_EQ(server_->stats().admits, 1u);
}

TEST_F(NetServerTest, HealthProbeReportsLiveCounters) {
  boot();
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).is_ok());
  ASSERT_TRUE(client.send_message(encode(make_request())).is_ok());
  ASSERT_TRUE(client.read_message().is_ok());
  ASSERT_TRUE(client.send_message(encode(HealthRequest{})).is_ok());
  auto reply = client.read_message();
  ASSERT_TRUE(reply.is_ok());
  ASSERT_EQ(peek_type(reply.value()).value(), MessageType::kHealthReply);
  auto health = decode_health_reply(reply.value());
  ASSERT_TRUE(health.is_ok());
  EXPECT_EQ(health.value().admits, 1u);
  EXPECT_EQ(health.value().live_flows, 1u);
  EXPECT_EQ(health.value().connections, 1u);
  EXPECT_EQ(health.value().brownout_active, 0u);
  EXPECT_EQ(health.value().journal_lsn, 0u);  // in-memory backend
  stop();
  EXPECT_EQ(server_->stats().health_requests, 1u);
}

TEST_F(NetServerTest, SnapshotDigestProbeMatchesLibraryDigest) {
  boot();
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).is_ok());
  ASSERT_TRUE(client.send_message(encode(make_request())).is_ok());
  ASSERT_TRUE(client.read_message().is_ok());
  ASSERT_TRUE(client.send_message(encode(SnapshotDigestRequest{})).is_ok());
  auto reply = client.read_message();
  ASSERT_TRUE(reply.is_ok());
  ASSERT_EQ(peek_type(reply.value()).value(),
            MessageType::kSnapshotDigestReply);
  auto dig = decode_snapshot_digest_reply(reply.value());
  ASSERT_TRUE(dig.is_ok());
  client.close();
  stop();
  EXPECT_EQ(dig.value().digest, digest());
  EXPECT_EQ(dig.value().journal_lsn, 0u);
  EXPECT_EQ(server_->stats().digest_requests, 1u);
}

TEST_F(NetServerTest, BrownoutShedsDigestButKeepsAdmitting) {
  ServerOptions opts;
  opts.brownout_inflight = 1;  // any queued op puts digests in brownout
  boot(opts);
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).is_ok());
  // One write so all three land in a single decode batch: admit (queues,
  // tripping the instantaneous brownout gate), digest (shed), admit
  // (still served — admits are the cheap work brownout protects).
  WireBuffer burst;
  for (const WireBuffer& msg :
       {encode(make_request(0)), encode(SnapshotDigestRequest{}),
        encode(make_request(1))}) {
    const WireBuffer framed = frame_net_message(msg);
    burst.insert(burst.end(), framed.begin(), framed.end());
  }
  ASSERT_TRUE(client.send_raw(burst).is_ok());
  const MessageType expect[] = {MessageType::kReservationReply,
                                MessageType::kOverloadedReply,
                                MessageType::kReservationReply};
  for (int i = 0; i < 3; ++i) {
    auto reply = client.read_message(10000);
    ASSERT_TRUE(reply.is_ok()) << "reply " << i;
    ASSERT_EQ(peek_type(reply.value()).value(), expect[i]) << "reply " << i;
    if (i == 1) {
      auto over = decode_overloaded_reply(reply.value());
      ASSERT_TRUE(over.is_ok());
      EXPECT_EQ(over.value().reason, ShedReason::kBrownout);
    }
  }
  // Quiet again (no queued ops, no budget sheds latched): a digest probe
  // must be served — brownout is a mode, not a permanent downgrade.
  ASSERT_TRUE(client.send_message(encode(SnapshotDigestRequest{})).is_ok());
  auto after = client.read_message(10000);
  ASSERT_TRUE(after.is_ok());
  EXPECT_EQ(peek_type(after.value()).value(),
            MessageType::kSnapshotDigestReply);
  stop();
  EXPECT_EQ(server_->stats().shed_brownout, 1u);
  EXPECT_EQ(server_->stats().digest_requests, 1u);
  EXPECT_EQ(server_->stats().admits, 2u);
}

TEST_F(NetServerTest, SigtermDrainAnswersPipelinedInflightBatches) {
  boot();
  const int kCount = 300;
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).is_ok());
  // One round-trip first: the drain only serves connections the loop has
  // already ACCEPTED (it closes the listener immediately), so make sure
  // ours is registered before racing the stop signal.
  ASSERT_TRUE(client.send_message(encode(make_request())).is_ok());
  ASSERT_TRUE(client.read_message().is_ok());
  WireBuffer burst;
  for (int i = 0; i < kCount; ++i) {
    const WireBuffer framed = frame_net_message(encode(make_request(i % 2)));
    burst.insert(burst.end(), framed.begin(), framed.end());
  }
  ASSERT_TRUE(client.send_raw(burst).is_ok());
  // Stop while the burst is (at best) partially served: the drain must
  // finish answering every already-sent request before closing.
  server_->request_stop();
  int answered = 0;
  for (int i = 0; i < kCount; ++i) {
    auto reply = client.read_message(10000);
    ASSERT_TRUE(reply.is_ok()) << "reply " << i;
    EXPECT_EQ(peek_type(reply.value()).value(),
              MessageType::kReservationReply);
    ++answered;
  }
  // After the last reply the server closes the connection cleanly.
  auto eof = client.read_message(10000);
  ASSERT_FALSE(eof.is_ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kNotFound);
  stop();
  EXPECT_EQ(answered, kCount);
  EXPECT_EQ(server_->stats().admits,
            static_cast<std::uint64_t>(kCount) + 1);  // + the setup admit
}

// ---- One overall read deadline (trickling peer regression) ----

TEST(BlockingClientDeadline, TricklingPeerCannotStretchReadMessage) {
  // A peer dripping one byte per poll interval used to reset the timeout
  // on every byte, stretching one logical read to frame_size * timeout.
  // The deadline must be for the WHOLE message.
  const int lfd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(lfd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);

  std::atomic<bool> stop_trickle{false};
  std::thread trickler([&] {
    const int cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd < 0) return;
    const WireBuffer framed = frame_net_message(encode(make_request()));
    // ~76 bytes at 30 ms/byte = well over 2 s of trickle.
    for (std::size_t i = 0; i < framed.size() && !stop_trickle.load(); ++i) {
      (void)::send(cfd, framed.data() + i, 1, MSG_NOSIGNAL);
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    ::close(cfd);
  });

  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", port).is_ok());
  const auto t0 = std::chrono::steady_clock::now();
  auto reply = client.read_message(/*timeout_ms=*/250);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_FALSE(reply.is_ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(elapsed.count(), 200);
  EXPECT_LT(elapsed.count(), 1500);

  stop_trickle = true;
  trickler.join();
  ::close(lfd);
}

// ---- RetryingClient: typed helpers and give-up behavior ----

TEST_F(NetServerTest, RetryingClientTypedHelpersEndToEnd) {
  boot();
  RetryingClientOptions ropts;
  ropts.port = server_->port();
  RetryingClient rc(ropts);
  auto res = rc.admit(make_request(), /*rid=*/1001);
  ASSERT_TRUE(res.is_ok()) << res.status().to_string();
  auto health = rc.health();
  ASSERT_TRUE(health.is_ok());
  EXPECT_EQ(health.value().live_flows, 1u);
  auto dig = rc.snapshot_digest();
  ASSERT_TRUE(dig.is_ok());
  ASSERT_TRUE(rc.teardown(res.value().flow, /*rid=*/1002).is_ok());
  // A broker-level reject is an ANSWER, not an outage: no retry storm.
  auto rejected = rc.admit(make_request(0, /*rho=*/1e12), /*rid=*/1003);
  ASSERT_FALSE(rejected.is_ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kRejected);
  EXPECT_EQ(rc.stats().resends, 0u);
  EXPECT_EQ(rc.stats().timeouts, 0u);
}

TEST(RetryingClientGiveUp, ExhaustsAttemptsAgainstSilentServer) {
  // A listener that accepts and never replies: every attempt must time
  // out, be counted, and the call must fail kUnavailable after exactly
  // max_attempts tries.
  const int lfd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(lfd, 8), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);

  constexpr std::uint32_t kAttempts = 3;
  std::vector<int> fds;  // closed only after call() returns: an early
                         // close would turn the final timeout into an EOF
  std::thread sink([&] {
    for (std::uint32_t i = 0; i < kAttempts; ++i) {
      const int fd = ::accept(lfd, nullptr, nullptr);
      if (fd >= 0) fds.push_back(fd);  // hold open, never reply
    }
  });

  RetryingClientOptions ropts;
  ropts.port = port;
  ropts.reply_timeout_ms = 50;
  ropts.max_attempts = kAttempts;
  ropts.backoff.base = 0.001;
  ropts.backoff.cap = 0.005;
  RetryingClient rc(ropts);
  auto reply = rc.call(encode(HealthRequest{}));
  ASSERT_FALSE(reply.is_ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(rc.stats().attempts, kAttempts);
  EXPECT_EQ(rc.stats().timeouts, kAttempts);
  EXPECT_EQ(rc.stats().resends, kAttempts - 1);
  EXPECT_EQ(rc.stats().reconnects, kAttempts - 1);

  sink.join();
  for (int fd : fds) ::close(fd);
  ::close(lfd);
}

// ---- Exactly-once over the wire: rid dedup through a DurableBroker ----

class DurableNetServerTest : public ::testing::Test {
 protected:
  void boot(ServerOptions opts = ServerOptions{}) {
    DumbbellOptions topo;
    topo.edge_pairs = 2;
    topo.access_capacity = 10e9;
    topo.bottleneck_capacity = 4e9;
    spec_ = dumbbell_topology(topo);
    path_ = ::testing::TempDir() + "/qosbb_net_dedup_wal.bin";
    std::remove(path_.c_str());
    file_ = std::make_unique<FsJournalFile>(path_);
    auto opened = DurableBroker::open(spec_, BrokerOptions{}, *file_);
    ASSERT_TRUE(opened.is_ok()) << opened.status().to_string();
    durable_ = std::move(opened).value();
    server_ = std::make_unique<QosbbServer>(*durable_, opts);
    ASSERT_TRUE(server_->start().is_ok());
    ASSERT_TRUE(server_->provision_pair("I0", "E0").is_ok());
    ASSERT_TRUE(server_->provision_pair("I1", "E1").is_ok());
    loop_ = std::thread([this] { server_->run(); });
  }

  void stop() {
    if (server_ != nullptr && loop_.joinable()) {
      server_->request_stop();
      loop_.join();
    }
  }

  void TearDown() override {
    stop();
    if (!path_.empty()) std::remove(path_.c_str());
  }

  DomainSpec spec_;
  std::string path_;
  std::unique_ptr<FsJournalFile> file_;
  std::unique_ptr<DurableBroker> durable_;
  std::unique_ptr<QosbbServer> server_;
  std::thread loop_;
};

TEST_F(DurableNetServerTest, ResentRidReplaysSameDecisionAcrossConnections) {
  boot();
  const FlowServiceRequest req = make_request();
  constexpr RequestId kAdmitRid = 42;
  constexpr RequestId kTearRid = 43;

  BlockingClient first;
  ASSERT_TRUE(first.connect("127.0.0.1", server_->port()).is_ok());
  ASSERT_TRUE(first.send_message(encode(req, kAdmitRid)).is_ok());
  auto reply = first.read_message();
  ASSERT_TRUE(reply.is_ok());
  auto res = decode_reservation(reply.value());
  ASSERT_TRUE(res.is_ok());
  const FlowId flow = res.value().flow;
  // Simulate "client saw nothing and retried after a crash": new
  // connection, same bytes, same rid.
  first.close();

  BlockingClient retry;
  ASSERT_TRUE(retry.connect("127.0.0.1", server_->port()).is_ok());
  ASSERT_TRUE(retry.send_message(encode(req, kAdmitRid)).is_ok());
  auto replay = retry.read_message();
  ASSERT_TRUE(replay.is_ok());
  auto res2 = decode_reservation(replay.value());
  ASSERT_TRUE(res2.is_ok());
  // Exactly-once: the SAME reservation, not a second flow.
  EXPECT_EQ(res2.value().flow, flow);

  // Same contract for teardown: the duplicate acks from the recorded
  // decision instead of failing kNotFound on the already-gone flow.
  ASSERT_TRUE(
      retry.send_message(encode(TeardownRequest{flow, kTearRid})).is_ok());
  auto ack = retry.read_message();
  ASSERT_TRUE(ack.is_ok());
  EXPECT_EQ(decode_reject_reply(ack.value()).value().reason,
            RejectReason::kNone);
  ASSERT_TRUE(
      retry.send_message(encode(TeardownRequest{flow, kTearRid})).is_ok());
  auto dup = retry.read_message();
  ASSERT_TRUE(dup.is_ok());
  EXPECT_EQ(decode_reject_reply(dup.value()).value().reason,
            RejectReason::kNone);
  retry.close();
  stop();
  // One flow ever existed and it is gone; the duplicate admit is not
  // double-counted as an executed admission.
  EXPECT_EQ(server_->broker().flows().count(), 0u);
  auto health_lsn = durable_->stats().dedup_hits;
  EXPECT_GE(health_lsn, 2u);  // the resent admit + the resent teardown
}

TEST_F(DurableNetServerTest, HealthReportsJournalPosition) {
  boot();
  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server_->port()).is_ok());
  ASSERT_TRUE(client.send_message(encode(make_request(), 7)).is_ok());
  ASSERT_TRUE(client.read_message().is_ok());
  ASSERT_TRUE(client.send_message(encode(HealthRequest{})).is_ok());
  auto reply = client.read_message();
  ASSERT_TRUE(reply.is_ok());
  auto health = decode_health_reply(reply.value());
  ASSERT_TRUE(health.is_ok());
  // Durable backend: the probe exposes recovery-relevant positions.
  EXPECT_GT(health.value().journal_lsn, 0u);
  EXPECT_GE(health.value().dedup_entries, 1u);
  EXPECT_EQ(health.value().live_flows, 1u);
}

TEST(NetDigest, DeterministicAcrossCalls) {
  DumbbellOptions topo;
  topo.edge_pairs = 2;
  const DomainSpec spec = dumbbell_topology(topo);
  BandwidthBroker bb(spec, BrokerOptions{});
  auto a = broker_state_digest(bb);
  auto b = broker_state_digest(bb);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value(), b.value());
}

}  // namespace
}  // namespace qosbb
