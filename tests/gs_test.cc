// Tests for the IntServ/GS baseline: RFC-2212 rate math, hop-by-hop
// signaling semantics, and the paper's equivalence claim — IntServ/GS and
// per-flow BB/VTRS admit exactly the same number of flows (Table 2).

#include <gtest/gtest.h>

#include <cmath>

#include "core/broker.h"
#include "gs/gs_admission.h"
#include "topo/fig8.h"

namespace qosbb {
namespace {

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

TEST(GsAdspec, AccumulatesPerHop) {
  GsHopByHop gs(fig8_gs_topology(Fig8Setting::kRateBasedOnly));
  GsAdspec ad = gs.path_advertisement(fig8_path_s1());
  EXPECT_EQ(ad.packet_terms, 5);
  EXPECT_NEAR(ad.d_tot, 0.04, 1e-12);
}

TEST(GsRateMath, MatchesVtrsClosedForm) {
  GsAdspec ad;
  ad.packet_terms = 5;
  ad.d_tot = 0.04;
  // Identical to the VTRS rate-only formula: 50 kb/s at 2.44 s.
  EXPECT_NEAR(gs_min_rate(ad, type0(), 2.44), 50000, 1e-6);
  EXPECT_NEAR(gs_min_rate(ad, type0(), 2.19), 168000.0 / 3.11, 1e-6);
  // Below-peak-deliverable requirement: rate above peak → reject upstream.
  EXPECT_GT(gs_min_rate(ad, type0(), 0.01), type0().peak);
  EXPECT_NEAR(gs_delay_bound(ad, type0(), 50000), 2.44, 1e-12);
}

TEST(GsHopByHop, ReserveInstallsPerRouterState) {
  GsHopByHop gs(fig8_gs_topology(Fig8Setting::kRateBasedOnly));
  auto res = gs.reserve(fig8_path_s1(), type0(), 2.44);
  ASSERT_TRUE(res.admitted) << res.detail;
  EXPECT_NEAR(res.rate, 50000, 1e-6);
  EXPECT_EQ(gs.router_state("R2->R3").flow_count(), 1u);
  EXPECT_NEAR(gs.router_state("R2->R3").reserved(), 50000, 1e-6);
  // PATH (5 hops) + RESV (5 hops) = 10 messages, 10 router visits.
  EXPECT_EQ(res.messages, 10);
  EXPECT_EQ(res.hops_visited, 10);
  ASSERT_TRUE(gs.release(res.flow).is_ok());
  EXPECT_DOUBLE_EQ(gs.router_state("R2->R3").reserved(), 0.0);
  EXPECT_FALSE(gs.release(res.flow).is_ok());
}

TEST(GsHopByHop, PartialReservationRolledBackOnMidPathReject) {
  GsHopByHop gs(fig8_gs_topology(Fig8Setting::kRateBasedOnly));
  // Pre-load only the middle link so the RESV walk fails partway.
  // (Reach in via a second reservation on the S2 path sharing R2..R5.)
  for (int i = 0; i < 30; ++i) {
    auto r = gs.reserve(fig8_path_s2(), type0(), 2.44);
    ASSERT_TRUE(r.admitted);
  }
  auto res = gs.reserve(fig8_path_s1(), type0(), 2.44);
  EXPECT_FALSE(res.admitted);
  EXPECT_EQ(res.reason, RejectReason::kInsufficientBandwidth);
  // Nothing may linger on the S1-only links.
  EXPECT_DOUBLE_EQ(gs.router_state("I1->R2").reserved(), 0.0);
  EXPECT_DOUBLE_EQ(gs.router_state("R5->E1").reserved(), 0.0);
}

TEST(GsHopByHop, RcEdfHopsGetLocalDeadlines) {
  GsHopByHop gs(fig8_gs_topology(Fig8Setting::kMixed));
  auto res = gs.reserve(fig8_path_s1(), type0(), 2.19);
  ASSERT_TRUE(res.admitted) << res.detail;
  const LinkQosState& edf = gs.router_state("R3->R4");
  ASSERT_EQ(edf.edf_buckets().size(), 1u);
  // d_i = L/R + Ψ for the WFQ-equivalent local budget.
  const double expect_d = 12000.0 / res.rate + 0.008;
  EXPECT_TRUE(edf.edf_buckets().contains(expect_d));
}

TEST(GsFacade, RoutesAndCountsStats) {
  GsAdmissionControl gs(fig8_gs_topology(Fig8Setting::kRateBasedOnly));
  FlowServiceRequest req{type0(), 2.44, "I1", "E1"};
  int admitted = 0;
  while (gs.request_service(req).admitted) ++admitted;
  EXPECT_EQ(admitted, 30);
  EXPECT_EQ(gs.stats().admitted, 30u);
  EXPECT_EQ(gs.stats().total_rejected(), 1u);
  auto nopath = gs.request_service({type0(), 2.44, "I1", "nowhere"});
  EXPECT_EQ(nopath.reason, RejectReason::kNoPath);
}

// The paper's headline equivalence (Table 2): IntServ/GS and per-flow
// BB/VTRS admit exactly the same number of flows, for both delay bounds and
// both scheduler settings.
struct EquivCase {
  Fig8Setting setting;
  double bound;
};

class GsEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(GsEquivalence, SameAdmittedCountAsPerFlowBb) {
  const auto [setting, bound] = GetParam();
  GsAdmissionControl gs(fig8_gs_topology(setting));
  BandwidthBroker bb(fig8_topology(setting));
  FlowServiceRequest req{type0(), bound, "I1", "E1"};
  int gs_count = 0;
  while (gs.request_service(req).admitted) ++gs_count;
  int bb_count = 0;
  while (bb.request_service(req).is_ok()) ++bb_count;
  EXPECT_EQ(gs_count, bb_count);
  EXPECT_EQ(gs_count, bound == 2.44 ? 30 : 27);
}

INSTANTIATE_TEST_SUITE_P(
    Table2, GsEquivalence,
    ::testing::Values(EquivCase{Fig8Setting::kRateBasedOnly, 2.44},
                      EquivCase{Fig8Setting::kRateBasedOnly, 2.19},
                      EquivCase{Fig8Setting::kMixed, 2.44},
                      EquivCase{Fig8Setting::kMixed, 2.19}),
    [](const auto& info) {
      std::string name = info.param.setting == Fig8Setting::kRateBasedOnly
                             ? "RateOnly"
                             : "Mixed";
      name += info.param.bound == 2.44 ? "Loose" : "Tight";
      return name;
    });

TEST(GsVsBb, PerFlowBbAverageRateAtMostGs) {
  // Figure 9 claim: path-wide optimization gives the BB a (weakly) smaller
  // AVERAGE reserved rate than GS in the mixed setting. (Individual late
  // flows may pay more under the BB — early flows grabbed the small delay
  // parameters — but the running average stays at or below GS's flat rate.)
  GsAdmissionControl gs(fig8_gs_topology(Fig8Setting::kMixed));
  BandwidthBroker bb(fig8_topology(Fig8Setting::kMixed));
  FlowServiceRequest req{type0(), 2.19, "I1", "E1"};
  double gs_total = 0, bb_total = 0;
  int n = 0;
  while (true) {
    auto g = gs.request_service(req);
    auto b = bb.request_service(req);
    if (!g.admitted || !b.is_ok()) break;
    gs_total += g.rate;
    bb_total += b.value().params.rate;
    ++n;
    EXPECT_LE(bb_total, gs_total + 1e-6) << "after flow " << n;
  }
  ASSERT_GT(n, 0);
  // The first flow gets the global minimum, strictly below GS's rate.
  BandwidthBroker fresh(fig8_topology(Fig8Setting::kMixed));
  auto first = fresh.request_service(req);
  ASSERT_TRUE(first.is_ok());
  EXPECT_LT(first.value().params.rate, 168000.0 / 3.11);
}

}  // namespace
}  // namespace qosbb
