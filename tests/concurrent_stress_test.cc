// Concurrent stress for the decomposed broker: LinkStateStore +
// AdmissionEngine + ConcurrentBrokerFront under genuine multi-threaded
// load. Three scenarios:
//
//   * disjoint chains — requests on non-overlapping paths must all admit,
//     with ZERO optimistic-commit conflicts (nothing shares a link);
//   * overlapping Figure-8 paths — admit/release/renegotiate racing on
//     shared core links; the final MIB state must be exactly what the
//     surviving flow set implies (oracle_check_state is the
//     serializability check: it rebooks the committed flows from scratch),
//     stats must balance against the per-thread tallies, and draining
//     every flow must return all bookkeeping to zero;
//   * exclusive/fast interleaving — class-based joins (exclusive big_)
//     racing per-flow admits (shared big_).
//
// The CI tsan preset runs this binary with ThreadSanitizer; any data race
// in the snapshot/validate/commit protocol or the shard locking fails the
// job, not just this file's assertions.

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/broker.h"
#include "core/concurrent_front.h"
#include "core/oracle.h"
#include "topo/fig8.h"
#include "util/rng.h"

namespace qosbb {
namespace {

/// K fully disjoint two-hop chains I<k> -> M<k> -> E<k>, alternating
/// rate-based and delay-based schedulers so both admission algorithms run.
DomainSpec disjoint_chains(int k) {
  DomainSpec spec;
  spec.l_max = 12000.0;
  for (int i = 0; i < k; ++i) {
    const std::string in = "I" + std::to_string(i);
    const std::string mid = "M" + std::to_string(i);
    const std::string out = "E" + std::to_string(i);
    spec.nodes.insert(spec.nodes.end(), {in, mid, out});
    const SchedPolicy policy =
        (i % 2 == 0) ? SchedPolicy::kCsvc : SchedPolicy::kVtEdf;
    spec.links.push_back({in, mid, 1.5e6, 0.0, policy});
    spec.links.push_back({mid, out, 1.5e6, 0.0, policy});
  }
  return spec;
}

FlowServiceRequest make_request(Rng& rng, const std::string& ingress,
                                const std::string& egress) {
  const double l_max = 8000.0;
  const double rho = rng.uniform(20000.0, 60000.0);
  FlowServiceRequest req;
  req.profile = TrafficProfile::make(l_max + rng.uniform(10000.0, 60000.0),
                                     rho, rho * rng.uniform(1.2, 3.0), l_max);
  req.e2e_delay_req = rng.uniform(1.8, 3.2);
  req.ingress = ingress;
  req.egress = egress;
  return req;
}

TEST(ConcurrentStress, DisjointChainsAdmitWithoutConflicts) {
  constexpr int kChains = 8;
  constexpr int kIters = 40;
  BandwidthBroker bb(disjoint_chains(kChains));
  ConcurrentBrokerFront front(bb, 4);
  front.exclusive([&](BandwidthBroker& b) {
    for (int i = 0; i < kChains; ++i) {
      EXPECT_TRUE(b.provision_path("I" + std::to_string(i),
                                   "E" + std::to_string(i))
                      .is_ok());
    }
  });

  // One job per chain, run concurrently on the pool: admit a fresh flow,
  // release the previous one, so every chain keeps <= 2 live reservations
  // (far below capacity — every admit must succeed).
  std::vector<std::future<int>> jobs;
  jobs.reserve(kChains);
  for (int c = 0; c < kChains; ++c) {
    jobs.push_back(front.pool().submit([&front, c] {
      const std::string in = "I" + std::to_string(c);
      const std::string out = "E" + std::to_string(c);
      int admitted = 0;
      FlowId live = kInvalidFlowId;
      for (int i = 0; i < kIters; ++i) {
        FlowServiceRequest req;
        req.profile = TrafficProfile::make(60000.0, 50000.0, 100000.0, 8000.0);
        req.e2e_delay_req = 2.4;
        req.ingress = in;
        req.egress = out;
        FrontOutcome got = front.request_service(req);
        if (got.result.is_ok()) {
          ++admitted;
          if (live != kInvalidFlowId) {
            EXPECT_TRUE(front.release_service(live).is_ok());
          }
          live = got.result.value().flow;
        }
      }
      if (live != kInvalidFlowId) {
        EXPECT_TRUE(front.release_service(live).is_ok());
      }
      return admitted;
    }));
  }
  int total = 0;
  for (auto& j : jobs) total += j.get();

  EXPECT_EQ(total, kChains * kIters);
  // Disjoint paths touch disjoint links: the optimistic commit must never
  // observe a version conflict.
  EXPECT_EQ(front.occ_conflicts(), 0u);
  EXPECT_EQ(bb.flows().count(), 0u);
  EXPECT_EQ(bb.stats().requests.load(),
            bb.stats().admitted.load() + bb.stats().total_rejected());
  const OracleStateReport rep = oracle_check_state(bb, nullptr);
  EXPECT_TRUE(rep.ok) << rep.to_string();
}

TEST(ConcurrentStress, OverlappingPathsRaceIsSerializable) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kMixed));
  ConcurrentBrokerFront front(bb, 4);
  front.exclusive([](BandwidthBroker& b) {
    EXPECT_TRUE(b.provision_path("I1", "E1").is_ok());
    EXPECT_TRUE(b.provision_path("I2", "E2").is_ok());
  });

  constexpr int kThreads = 4;
  constexpr int kOps = 60;
  struct Tally {
    int admits = 0;
    int rejects = 0;
    int renegs_ok = 0;
    int renegs_fail = 0;
    std::vector<FlowId> live;  ///< this thread's surviving reservations
  };
  std::vector<Tally> tallies(kThreads);

  // Seeded per-thread op streams over the two OVERLAPPING endpoint pairs
  // (both cross the shared Figure-8 core) — admits race releases and
  // renegotiations on the same links. Each thread only ever releases or
  // renegotiates its own flows; the link state is where they collide.
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&front, &tallies, t] {
      Rng rng(0xC0FFEEu + 977u * static_cast<std::uint64_t>(t));
      Tally& tl = tallies[t];
      for (int i = 0; i < kOps; ++i) {
        const std::int64_t roll = rng.uniform_int(1, 100);
        if (roll <= 55 || tl.live.empty()) {
          const bool first = rng.bernoulli(0.5);
          FrontOutcome got = front.request_service(make_request(
              rng, first ? "I1" : "I2", first ? "E1" : "E2"));
          if (got.result.is_ok()) {
            ++tl.admits;
            tl.live.push_back(got.result.value().flow);
          } else {
            ++tl.rejects;
          }
        } else if (roll <= 80) {
          const std::size_t idx = static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(tl.live.size()) - 1));
          EXPECT_TRUE(front.release_service(tl.live[idx]).is_ok());
          tl.live[idx] = tl.live.back();
          tl.live.pop_back();
        } else {
          const FlowId id = tl.live[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(tl.live.size()) - 1))];
          FrontOutcome got =
              front.renegotiate_service(id, rng.uniform(1.8, 3.2));
          if (got.result.is_ok()) {
            ++tl.renegs_ok;
          } else {
            ++tl.renegs_fail;
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  int admits = 0, rejects = 0, renegs_ok = 0, renegs_fail = 0;
  std::size_t live = 0;
  for (const Tally& tl : tallies) {
    admits += tl.admits;
    rejects += tl.rejects;
    renegs_ok += tl.renegs_ok;
    renegs_fail += tl.renegs_fail;
    live += tl.live.size();
  }
  // Counter balance: every admit attempt bumps `requests` and exactly one
  // of admitted/rejected; a successful renegotiation bumps both `requests`
  // and `admitted`, a failed one only its reject reason.
  EXPECT_EQ(bb.stats().requests.load(),
            static_cast<std::uint64_t>(admits + rejects + renegs_ok));
  EXPECT_EQ(bb.stats().admitted.load(),
            static_cast<std::uint64_t>(admits + renegs_ok));
  EXPECT_EQ(bb.stats().total_rejected(),
            static_cast<std::uint64_t>(rejects + renegs_fail));
  EXPECT_EQ(bb.flows().count(), live);

  // Serializability: the MIB must hold exactly the state that rebooking
  // the surviving flow set from scratch produces — i.e. the outcome of
  // SOME sequential ordering of the committed operations.
  OracleStateReport rep = oracle_check_state(bb, nullptr);
  EXPECT_TRUE(rep.ok) << rep.to_string();

  // Drain everything; all link bookkeeping must return to zero.
  for (const Tally& tl : tallies) {
    for (FlowId id : tl.live) {
      EXPECT_TRUE(front.release_service(id).is_ok());
    }
  }
  EXPECT_EQ(bb.flows().count(), 0u);
  for (const auto& l : bb.spec().links) {
    const LinkQosState& link = bb.nodes().link(l.from + "->" + l.to);
    EXPECT_NEAR(link.reserved(), 0.0, 1e-6) << link.name();
    EXPECT_NEAR(link.buffer_reserved(), 0.0, 1e-6) << link.name();
  }
  rep = oracle_check_state(bb, nullptr);
  EXPECT_TRUE(rep.ok) << rep.to_string();
}

TEST(ConcurrentStress, ExclusiveClassOpsInterleaveWithFastAdmits) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kMixed));
  ConcurrentBrokerFront front(bb, 4);
  ClassId gold = kInvalidClassId;
  front.exclusive([&](BandwidthBroker& b) {
    EXPECT_TRUE(b.provision_path("I1", "E1").is_ok());
    EXPECT_TRUE(b.provision_path("I2", "E2").is_ok());
    gold = b.define_class(2.19, 0.10, "gold");
  });

  // Thread A: per-flow admit/release churn through the shared-mode fast
  // path. Thread B: class joins and leaves, each a full exclusive (writer)
  // acquisition of big_ — the two must interleave without deadlock or
  // state corruption, and contingency grants are settled inside the same
  // exclusive section that created them.
  std::thread per_flow([&front] {
    Rng rng(0xBEEF);
    std::vector<FlowId> live;
    for (int i = 0; i < 80; ++i) {
      if (rng.bernoulli(0.6) || live.empty()) {
        FrontOutcome got =
            front.request_service(make_request(rng, "I1", "E1"));
        if (got.result.is_ok()) live.push_back(got.result.value().flow);
      } else {
        EXPECT_TRUE(front.release_service(live.back()).is_ok());
        live.pop_back();
      }
    }
    for (FlowId id : live) EXPECT_TRUE(front.release_service(id).is_ok());
  });
  std::thread class_based([&front, gold] {
    Rng rng(0xFACE);
    for (int i = 0; i < 30; ++i) {
      const TrafficProfile profile =
          TrafficProfile::make(40000.0, 30000.0, 60000.0, 8000.0);
      front.exclusive([&](BandwidthBroker& b) {
        JoinResult join = b.request_class_service(gold, profile, "I2", "E2",
                                                  static_cast<Seconds>(i),
                                                  std::nullopt);
        if (!join.admitted) return;
        if (join.grant != kInvalidGrantId) {
          b.expire_contingency(join.grant, join.contingency_expires_at);
        }
        auto leave = b.leave_class_service(join.microflow,
                                           static_cast<Seconds>(i) + 0.5,
                                           std::nullopt);
        EXPECT_TRUE(leave.is_ok());
        if (leave.is_ok() && leave.value().grant != kInvalidGrantId) {
          b.expire_contingency(leave.value().grant,
                               leave.value().contingency_expires_at);
        }
      });
    }
  });
  per_flow.join();
  class_based.join();

  EXPECT_EQ(bb.flows().count(), 0u);
  EXPECT_EQ(bb.stats().requests.load(),
            bb.stats().admitted.load() + bb.stats().total_rejected());
  const OracleStateReport rep = oracle_check_state(bb, nullptr);
  EXPECT_TRUE(rep.ok) << rep.to_string();
}

}  // namespace
}  // namespace qosbb
