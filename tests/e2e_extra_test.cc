// Additional end-to-end behaviors:
//   * CJVC's jitter control — non-work-conserving holds compress the
//     core-delay spread relative to C̸SVC under contention;
//   * the packet-level contingency feedback loop — the edge conditioner's
//     drain callback releases contingency bandwidth long before the
//     theoretical timer;
//   * flow-level simulator determinism.

#include <gtest/gtest.h>

#include <memory>

#include "core/broker.h"
#include "flowsim/flow_sim.h"
#include "topo/builders.h"
#include "vtrs/provisioned_network.h"

namespace qosbb {
namespace {

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

/// Run a contended 4-hop chain under the given policy; return the worst
/// core delay spread (max − min) and worst delivery-spacing stddev across
/// the flows.
struct JitterResult {
  double delay_spread = 0.0;
  double spacing_stddev = 0.0;
};

JitterResult chain_delay_spread(SchedPolicy policy) {
  ChainOptions opt;
  opt.hops = 4;
  opt.policy = policy;
  const DomainSpec spec = chain_topology(opt);
  BandwidthBroker bb(spec);
  ProvisionedNetwork pn(spec);
  JitterResult out;
  for (int i = 0; i < 12; ++i) {
    auto res = bb.request_service({type0(), 5.0, "N0", "N4"});
    EXPECT_TRUE(res.is_ok());
    const Reservation& r = res.value();
    pn.install_flow(r.flow, chain_path(opt), r.params.rate, r.params.delay);
    pn.attach_source(r.flow, std::make_unique<GreedySource>(type0(), 0.0),
                     r.flow, 20.0)
        .start();
  }
  pn.run_until(40.0);
  for (const auto& [flow, rec] : pn.meter().records()) {
    out.delay_spread = std::max(
        out.delay_spread, rec.core_delay.max() - rec.core_delay.min());
    out.spacing_stddev =
        std::max(out.spacing_stddev, rec.delivery_spacing.stddev());
  }
  EXPECT_EQ(pn.vtrs().total_guarantee_violations(), 0u);
  return out;
}

TEST(CjvcJitter, HoldsCompressDelaySpreadAndDeliveryJitter) {
  // CJVC delays every packet to its virtual schedule; C̸SVC releases early
  // when the link is idle. Same guarantees, tighter jitter for CJVC — in
  // both the delay spread and the sink inter-arrival variability.
  const JitterResult csvc = chain_delay_spread(SchedPolicy::kCsvc);
  const JitterResult cjvc = chain_delay_spread(SchedPolicy::kCjvc);
  EXPECT_GT(csvc.delay_spread, 0.0);
  EXPECT_LE(cjvc.delay_spread, csvc.delay_spread + 1e-9);
  EXPECT_LE(cjvc.spacing_stddev, csvc.spacing_stddev + 1e-9);
}

TEST(FeedbackLoop, ConditionerDrainReleasesContingencyEarly) {
  // Packet-level closed loop: the conditioner's drain callback is the
  // "buffer empty" message of Section 4.2.1. A join reports a large
  // backlog (long τ backstop), but the real queue drains in well under a
  // second — the allocation must drop to the base rate at the drain, not
  // at the timer.
  const DomainSpec spec = fig8_topology(Fig8Setting::kRateBasedOnly);
  BandwidthBroker bb(spec, BrokerOptions{ContingencyMethod::kFeedback});
  ProvisionedNetwork pn(spec);
  const ClassId cls = bb.define_class(2.44, 0.0);

  auto j1 = bb.request_class_service(cls, type0(), "I1", "E1", 0.0, 0.0);
  ASSERT_TRUE(j1.admitted);
  EdgeConditioner& cond = pn.install_flow(
      j1.macroflow, fig8_path_s1(), bb.classes().allocated(j1.macroflow),
      0.0);
  cond.set_drain_callback([&](Seconds t) {
    bb.edge_buffer_empty(j1.macroflow, t);
    cond.set_rate(t, bb.classes().allocated(j1.macroflow));
  });
  // Smooth CBR microflow: the conditioner queue stays near-empty.
  pn.attach_source(j1.macroflow, std::make_unique<CbrSource>(type0(), 0.0),
                   101, 30.0)
      .start();

  Seconds drained_alloc_time = -1.0;
  pn.events().schedule(10.0, [&] {
    auto j2 =
        bb.request_class_service(cls, type0(), "I1", "E1", 10.0,
                                 /*reported backlog=*/200000.0);
    ASSERT_TRUE(j2.admitted);
    ASSERT_NE(j2.grant, kInvalidGrantId);
    // Timer backstop: 200000/Δr = 4 s out.
    EXPECT_GT(j2.contingency_expires_at, 13.0);
    cond.set_rate(10.0, bb.classes().allocated(j2.macroflow));
    pn.attach_source(j1.macroflow,
                     std::make_unique<CbrSource>(type0(), 10.0), 102, 30.0)
        .start();
    // Watch for the early release.
    pn.events().schedule(11.0, [&, j2] {
      if (bb.classes().allocated(j2.macroflow) <= j2.base_rate + 1e-6) {
        drained_alloc_time = 11.0;
      }
    });
  });
  pn.run_until(40.0);
  // The drain fired within a second of the join: contingency gone by 11 s,
  // three seconds before the timer backstop.
  EXPECT_GE(drained_alloc_time, 0.0);
  EXPECT_NEAR(bb.classes().allocated(j1.macroflow), 100000, 1e-6);
  EXPECT_EQ(pn.meter().total_violations(), 0u);
}

TEST(FlowSimDeterminism, SameSeedSameResult) {
  FlowSimConfig cfg;
  cfg.scheme = AdmissionScheme::kAggrFeedback;
  cfg.setting = Fig8Setting::kRateBasedOnly;
  cfg.workload.arrival_rate_per_source = 0.15;
  cfg.workload.horizon = 2000.0;
  cfg.seed = 99;
  const FlowSimResult a = run_flow_sim(cfg);
  const FlowSimResult b = run_flow_sim(cfg);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.blocked, b.blocked);
  EXPECT_DOUBLE_EQ(a.mean_bottleneck_reserved, b.mean_bottleneck_reserved);

  cfg.seed = 100;
  const FlowSimResult c = run_flow_sim(cfg);
  EXPECT_NE(a.offered, c.offered);  // different Poisson draw
}

TEST(FlowSimAccounting, ActiveFlowsReturnToZeroAfterHorizonDrain) {
  // All admitted flows eventually depart; blocked + admitted == offered.
  FlowSimConfig cfg;
  cfg.scheme = AdmissionScheme::kPerFlowBB;
  cfg.workload.arrival_rate_per_source = 0.2;
  cfg.workload.horizon = 1500.0;
  cfg.workload.mean_holding = 50.0;
  cfg.seed = 7;
  const FlowSimResult res = run_flow_sim(cfg);
  EXPECT_EQ(res.offered, res.admitted + res.blocked);
  EXPECT_GT(res.mean_active_flows, 0.0);
  EXPECT_LT(res.mean_active_flows, 45.0);  // can't exceed capacity ceiling
}

}  // namespace
}  // namespace qosbb
