// Tests for class-based guaranteed services with dynamic flow aggregation
// (Section 4): join/leave rate math, peak-rate contingency, Theorems 2/3
// bookkeeping, bounding vs feedback contingency periods, settling.

#include <gtest/gtest.h>

#include "core/broker.h"
#include "topo/fig8.h"

namespace qosbb {
namespace {

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

class AggrRateOnly : public ::testing::Test {
 protected:
  AggrRateOnly()
      : bb_(fig8_topology(Fig8Setting::kRateBasedOnly),
            BrokerOptions{ContingencyMethod::kFeedback}),
        cls_(bb_.define_class(2.44, 0.0)) {}

  JoinResult join(Seconds now, std::optional<Bits> backlog = 0.0) {
    return bb_.request_class_service(cls_, type0(), "I1", "E1", now, backlog);
  }

  BandwidthBroker bb_;
  ClassId cls_;
};

TEST_F(AggrRateOnly, FirstJoinReservesMeanRate) {
  auto r = join(0.0);
  ASSERT_TRUE(r.admitted) << r.detail;
  EXPECT_TRUE(r.new_macroflow);
  // Rate-only path, D=2.44: minimal rate = ρ (the same arithmetic as the
  // per-flow case with h = q = 5).
  EXPECT_NEAR(r.base_rate, 50000, 1e-3);
  EXPECT_LE(r.e2e_bound, 2.44 + 1e-9);
  // Feedback with empty backlog: the peak allocation drains instantly.
  EXPECT_EQ(r.grant, kInvalidGrantId);
  EXPECT_NEAR(bb_.classes().allocated(r.macroflow), r.base_rate, 1e-6);
}

TEST_F(AggrRateOnly, RateFloorGrowsByMeanRatePerJoin) {
  auto r1 = join(0.0);
  ASSERT_TRUE(r1.admitted);
  auto r2 = join(10.0);
  ASSERT_TRUE(r2.admitted);
  EXPECT_FALSE(r2.new_macroflow);
  EXPECT_EQ(r2.macroflow, r1.macroflow);
  EXPECT_NEAR(r2.base_rate, 100000, 1e-3);  // ρ-floor: 2·50k
  const MacroflowState* mf = bb_.classes().macroflow(r1.macroflow);
  ASSERT_NE(mf, nullptr);
  EXPECT_EQ(mf->microflows, 2);
  EXPECT_DOUBLE_EQ(mf->aggregate.rho, 100000);
  EXPECT_DOUBLE_EQ(mf->aggregate.l_max, 24000);
}

TEST_F(AggrRateOnly, PeakContingencyBlocks30thFlow) {
  // Paper Table 2: the Aggr scheme admits 29, one fewer than per-flow —
  // the 30th join needs P = 100 kb/s headroom on top of 29·50 kb/s.
  int admitted = 0;
  Seconds t = 0.0;
  while (true) {
    auto r = join(t);
    if (!r.admitted) {
      EXPECT_EQ(r.reason, RejectReason::kInsufficientBandwidth);
      break;
    }
    ++admitted;
    t += 10.0;
    ASSERT_LT(admitted, 40);
  }
  EXPECT_EQ(admitted, 29);
}

TEST_F(AggrRateOnly, LeaveHoldsRateDuringContingency) {
  auto r1 = join(0.0);
  auto r2 = join(10.0);
  ASSERT_TRUE(r2.admitted);
  // Leave with a non-empty backlog: Theorem 3 keeps Δr = r^α − r^α' for
  // τ = Q/Δr.
  auto leave = bb_.leave_class_service(r2.microflow, 20.0, 25000.0);
  ASSERT_TRUE(leave.is_ok());
  EXPECT_NEAR(leave.value().base_rate, 50000, 1e-3);
  EXPECT_NEAR(leave.value().contingency, 50000, 1e-3);
  ASSERT_NE(leave.value().grant, kInvalidGrantId);
  EXPECT_NEAR(leave.value().contingency_expires_at, 20.0 + 25000.0 / 50000.0,
              1e-9);
  // Allocation unchanged until expiry.
  EXPECT_NEAR(bb_.classes().allocated(r1.macroflow), 100000, 1e-6);
  bb_.expire_contingency(leave.value().grant, leave.value().contingency_expires_at);
  EXPECT_NEAR(bb_.classes().allocated(r1.macroflow), 50000, 1e-6);
}

TEST_F(AggrRateOnly, LastLeaveTearsDownMacroflow) {
  auto r1 = join(0.0);
  ASSERT_TRUE(r1.admitted);
  auto leave = bb_.leave_class_service(r1.microflow, 10.0, 0.0);
  ASSERT_TRUE(leave.is_ok());
  EXPECT_TRUE(leave.value().macroflow_removed);
  EXPECT_EQ(bb_.classes().macroflow_count(), 0u);
  EXPECT_DOUBLE_EQ(bb_.nodes().link("R2->R3").reserved(), 0.0);
}

TEST_F(AggrRateOnly, UnknownMicroflowLeaveIsNotFound) {
  auto leave = bb_.leave_class_service(999, 0.0, 0.0);
  EXPECT_FALSE(leave.is_ok());
  EXPECT_EQ(leave.status().code(), StatusCode::kNotFound);
}

TEST(AggrBounding, Eq17TauIsConservative) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly),
                     BrokerOptions{ContingencyMethod::kBounding});
  const ClassId cls = bb.define_class(2.44, 0.0);
  auto r1 = bb.request_class_service(cls, type0(), "I1", "E1", 0.0);
  ASSERT_TRUE(r1.admitted);
  // First join of a fresh macroflow: d_edge_old = 0 → τ̂ = 0, no grant.
  EXPECT_EQ(r1.grant, kInvalidGrantId);
  auto r2 = bb.request_class_service(cls, type0(), "I1", "E1", 100.0);
  ASSERT_TRUE(r2.admitted);
  // Second join: Δr = P − δ = 50 kb/s, d_edge_old = 1.2 s at r = 50 kb/s,
  // in-service = 50 kb/s → τ̂ = 1.2·50000/50000 = 1.2 s (eq. 17).
  ASSERT_NE(r2.grant, kInvalidGrantId);
  EXPECT_NEAR(r2.contingency, 50000, 1e-3);
  EXPECT_NEAR(r2.contingency_expires_at - 100.0, 1.2, 1e-6);
  // During the contingency period the macroflow holds r^α + P^ν.
  EXPECT_NEAR(bb.classes().allocated(r2.macroflow), 150000, 1e-3);
  bb.expire_contingency(r2.grant, r2.contingency_expires_at);
  EXPECT_NEAR(bb.classes().allocated(r2.macroflow), 100000, 1e-3);
}

TEST(AggrFeedback, BufferEmptyReleasesEarly) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly),
                     BrokerOptions{ContingencyMethod::kFeedback});
  const ClassId cls = bb.define_class(2.44, 0.0);
  auto r1 = bb.request_class_service(cls, type0(), "I1", "E1", 0.0, 0.0);
  ASSERT_TRUE(r1.admitted);
  // Join with a large reported backlog: long feedback τ.
  auto r2 = bb.request_class_service(cls, type0(), "I1", "E1", 10.0, 60000.0);
  ASSERT_TRUE(r2.admitted);
  ASSERT_NE(r2.grant, kInvalidGrantId);
  EXPECT_GT(r2.contingency_expires_at, 10.0 + 1.0);
  // The conditioner drains at t = 10.5: all contingency released at once.
  bb.edge_buffer_empty(r2.macroflow, 10.5);
  EXPECT_NEAR(bb.classes().allocated(r2.macroflow), r2.base_rate, 1e-6);
  // The stale timer is now a no-op.
  bb.expire_contingency(r2.grant, r2.contingency_expires_at);
  EXPECT_NEAR(bb.classes().allocated(r2.macroflow), r2.base_rate, 1e-6);
}

TEST(AggrMixed, DelayParamEntersCoreBound) {
  // Mixed setting, D = 2.19, cd = 0.50: the first join already needs more
  // than the mean rate (per-flow floor 144000/2.11 ≈ 68246 b/s).
  BandwidthBroker bb(fig8_topology(Fig8Setting::kMixed),
                     BrokerOptions{ContingencyMethod::kFeedback});
  const ClassId cls = bb.define_class(2.19, 0.50);
  auto r = bb.request_class_service(cls, type0(), "I1", "E1", 0.0, 0.0);
  ASSERT_TRUE(r.admitted) << r.detail;
  EXPECT_NEAR(r.base_rate, 144000.0 / 2.11, 1.0);
  // And with cd = 0.10 the mean-rate floor binds instead.
  BandwidthBroker bb2(fig8_topology(Fig8Setting::kMixed),
                      BrokerOptions{ContingencyMethod::kFeedback});
  const ClassId cls2 = bb2.define_class(2.19, 0.10);
  auto r2 = bb2.request_class_service(cls2, type0(), "I1", "E1", 0.0, 0.0);
  ASSERT_TRUE(r2.admitted);
  EXPECT_NEAR(r2.base_rate, 50000, 1e-3);
}

TEST(AggrMixed, MacroflowInstallsEdfEntries) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kMixed),
                     BrokerOptions{ContingencyMethod::kFeedback});
  const ClassId cls = bb.define_class(2.19, 0.10);
  auto r = bb.request_class_service(cls, type0(), "I1", "E1", 0.0, 0.0);
  ASSERT_TRUE(r.admitted);
  const LinkQosState& edf = bb.nodes().link("R3->R4");
  ASSERT_EQ(edf.edf_buckets().size(), 1u);
  EXPECT_TRUE(edf.edf_buckets().contains(0.10));
  // Entry rate equals the current allocation.
  EXPECT_NEAR(edf.edf_buckets().at(0.10).sum_rate,
              bb.classes().allocated(r.macroflow), 1e-6);
}

TEST(AggrMixed, TwoPathsShareMiddleLinks) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kMixed),
                     BrokerOptions{ContingencyMethod::kFeedback});
  const ClassId cls = bb.define_class(2.19, 0.10);
  auto a = bb.request_class_service(cls, type0(), "I1", "E1", 0.0, 0.0);
  auto b = bb.request_class_service(cls, type0(), "I2", "E2", 0.0, 0.0);
  ASSERT_TRUE(a.admitted);
  ASSERT_TRUE(b.admitted);
  EXPECT_NE(a.macroflow, b.macroflow);
  // Shared link carries both reservations.
  EXPECT_NEAR(bb.nodes().link("R2->R3").reserved(),
              bb.classes().allocated(a.macroflow) +
                  bb.classes().allocated(b.macroflow),
              1e-6);
  // Two macroflow entries at the same knot cd on shared EDF links.
  EXPECT_EQ(bb.nodes().link("R3->R4").edf_buckets().at(0.10).count, 2u);
}

TEST(AggrState, E2eBoundInEffectTracksTransients) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly),
                     BrokerOptions{ContingencyMethod::kFeedback});
  const ClassId cls = bb.define_class(2.44, 0.0);
  auto r1 = bb.request_class_service(cls, type0(), "I1", "E1", 0.0, 0.0);
  ASSERT_TRUE(r1.admitted);
  const Seconds settled = bb.classes().e2e_bound_in_effect(r1.macroflow);
  EXPECT_LE(settled, 2.44 + 1e-9);
  // A join with backlog raises the in-effect bound at most to the class
  // bound (eq. 13 guarantees max{old, new}).
  auto r2 = bb.request_class_service(cls, type0(), "I1", "E1", 1.0, 30000.0);
  ASSERT_TRUE(r2.admitted);
  EXPECT_LE(bb.classes().e2e_bound_in_effect(r1.macroflow), 2.44 + 1e-9);
}

TEST(AggrContingencyManager, GrantBookkeeping) {
  ContingencyManager mgr;
  const GrantId g1 = mgr.add(7, 50000, 0.0, 1.0, 1.2);
  const GrantId g2 = mgr.add(7, 25000, 0.5, 2.0, 1.3);
  mgr.add(8, 10000, 0.0, 1.0, 0.5);
  EXPECT_DOUBLE_EQ(mgr.total(7), 75000);
  EXPECT_DOUBLE_EQ(mgr.max_event_edge_bound(7), 1.3);
  EXPECT_TRUE(mgr.has_grants(7));
  auto removed = mgr.remove(g1);
  ASSERT_TRUE(removed.is_ok());
  EXPECT_DOUBLE_EQ(removed.value().delta_r, 50000);
  EXPECT_FALSE(mgr.remove(g1).is_ok());  // double removal is reported
  auto drained = mgr.remove_all(7);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].id, g2);
  EXPECT_FALSE(mgr.has_grants(7));
  EXPECT_DOUBLE_EQ(mgr.total(8), 10000);
}

}  // namespace
}  // namespace qosbb
