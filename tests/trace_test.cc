// Tests for the packet trace ring buffer and its VTRS hook integration.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "sim/trace.h"
#include "topo/fig8.h"
#include "vtrs/provisioned_network.h"

namespace qosbb {
namespace {

TraceEvent ev(double t, FlowId flow, int hop) {
  TraceEvent e;
  e.time = t;
  e.flow = flow;
  e.hop_index = hop;
  e.point = "X->Y";
  return e;
}

TEST(PacketTrace, RecordsInOrder) {
  PacketTrace trace(16);
  trace.record(ev(0.1, 1, 0));
  trace.record(ev(0.2, 1, 1));
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_DOUBLE_EQ(trace.events()[0].time, 0.1);
  EXPECT_DOUBLE_EQ(trace.events()[1].time, 0.2);
  EXPECT_FALSE(trace.overflowed());
}

TEST(PacketTrace, RingEvictsOldest) {
  PacketTrace trace(4);
  for (int i = 0; i < 10; ++i) trace.record(ev(i, i, 0));
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.total_recorded(), 10u);
  EXPECT_TRUE(trace.overflowed());
  EXPECT_DOUBLE_EQ(trace.events().front().time, 6.0);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.total_recorded(), 0u);
}

TEST(PacketTrace, CsvDump) {
  PacketTrace trace(4);
  trace.record(ev(1.5, 7, 2));
  std::ostringstream os;
  trace.dump_csv(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("time,kind,flow,seq,hop,virtual_time,point"),
            std::string::npos);
  EXPECT_NE(s.find("1.5,hop,7,0,2,0,X->Y"), std::string::npos);
}

TEST(PacketTrace, ZeroCapacityIsContractViolation) {
  EXPECT_THROW(PacketTrace(0), std::logic_error);
}

TEST(PacketTrace, HookIntegrationRecordsEveryHop) {
  const DomainSpec spec = fig8_topology(Fig8Setting::kRateBasedOnly);
  ProvisionedNetwork pn(spec, /*trace_capacity=*/1024);
  const TrafficProfile type0 =
      TrafficProfile::make(60000, 50000, 100000, 12000);
  pn.install_flow(1, fig8_path_s1(), 50000, 0.0);
  pn.attach_source(1, std::make_unique<CbrSource>(type0, 0.0), 1, 2.0)
      .start();
  pn.run_all();
  // CBR at 0.24 s spacing over [0, 2]: 9 packets × 5 hops.
  const std::uint64_t packets = pn.meter().record(1).total_delay.count();
  EXPECT_EQ(pn.trace().total_recorded(), packets * 5);
  // Virtual time in the trace advances along the path.
  const auto& first = pn.trace().events().front();
  EXPECT_EQ(first.kind, TraceEventKind::kHopDeparture);
  EXPECT_EQ(first.hop_index, 1);  // recorded after the update
  EXPECT_GT(first.virtual_time, 0.0);
}

TEST(PacketTrace, DisabledByDefault) {
  ProvisionedNetwork pn(fig8_topology(Fig8Setting::kRateBasedOnly));
  EXPECT_THROW(pn.trace(), std::logic_error);
}

}  // namespace
}  // namespace qosbb
