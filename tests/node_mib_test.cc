// Unit tests for the node and path QoS state MIBs, including the VT-EDF
// residual-service computation at the heart of the Section-3.2 algorithm.

#include <gtest/gtest.h>

#include "core/flow_mib.h"
#include "core/node_mib.h"
#include "core/path_mib.h"
#include "topo/fig8.h"

namespace qosbb {
namespace {

DomainSpec mixed_spec() { return fig8_topology(Fig8Setting::kMixed); }

TEST(NodeMib, PopulatesFromSpec) {
  const DomainSpec spec = mixed_spec();
  NodeMib mib(spec);
  EXPECT_EQ(mib.link_count(), 7u);
  const LinkQosState& l = mib.link("R3->R4");
  EXPECT_DOUBLE_EQ(l.capacity(), 1.5e6);
  EXPECT_TRUE(l.delay_based());
  EXPECT_NEAR(l.error_term(), 0.008, 1e-12);
  EXPECT_FALSE(mib.link("I1->R2").delay_based());
  EXPECT_THROW(mib.link("nope"), std::logic_error);
}

TEST(LinkQosState, ReserveRelease) {
  const DomainSpec spec = mixed_spec();
  NodeMib mib(spec);
  LinkQosState& l = mib.link("I1->R2");
  EXPECT_TRUE(l.reserve(1.0e6).is_ok());
  EXPECT_DOUBLE_EQ(l.residual(), 0.5e6);
  // Over-reservation rejected, state unchanged.
  EXPECT_FALSE(l.reserve(0.6e6).is_ok());
  EXPECT_DOUBLE_EQ(l.reserved(), 1.0e6);
  l.release(1.0e6);
  EXPECT_DOUBLE_EQ(l.reserved(), 0.0);
  EXPECT_THROW(l.release(1.0), std::logic_error);
}

TEST(LinkQosState, FlowCountingSeparate) {
  NodeMib mib(mixed_spec());
  LinkQosState& l = mib.link("I1->R2");
  l.note_flow_added();
  l.note_flow_added();
  EXPECT_EQ(l.flow_count(), 2u);
  l.note_flow_removed();
  EXPECT_EQ(l.flow_count(), 1u);
  l.note_flow_removed();
  EXPECT_THROW(l.note_flow_removed(), std::logic_error);
}

TEST(LinkQosState, ResidualServiceMatchesHand) {
  NodeMib mib(mixed_spec());
  LinkQosState& l = mib.link("R3->R4");
  // Two flows: (r=50k, d=0.1, L=12k) and (r=100k, d=0.3, L=12k).
  l.add_edf_entry(50000, 0.1, 12000);
  l.add_edf_entry(100000, 0.3, 12000);
  // R(0.1) = 1.5e6·0.1 − 12000 = 138000.
  EXPECT_NEAR(l.residual_service(0.1), 138000, 1e-6);
  // R(0.3) = 450000 − [50000·0.2 + 12000] − 12000 = 416000.
  EXPECT_NEAR(l.residual_service(0.3), 450000 - 22000 - 12000, 1e-6);
  // Before any knot: full service.
  EXPECT_NEAR(l.residual_service(0.05), 75000, 1e-6);

  auto knots = l.residual_service_at_knots();
  ASSERT_EQ(knots.size(), 2u);
  EXPECT_DOUBLE_EQ(knots[0].first, 0.1);
  EXPECT_NEAR(knots[0].second, 138000, 1e-6);
  EXPECT_DOUBLE_EQ(knots[1].first, 0.3);
  EXPECT_NEAR(knots[1].second, 416000, 1e-6);
}

TEST(LinkQosState, EdfBucketsAggregateEqualDelays) {
  NodeMib mib(mixed_spec());
  LinkQosState& l = mib.link("R3->R4");
  l.add_edf_entry(50000, 0.1, 12000);
  l.add_edf_entry(60000, 0.1, 12000);
  ASSERT_EQ(l.edf_buckets().size(), 1u);
  const auto& b = l.edf_buckets().at(0.1);
  EXPECT_DOUBLE_EQ(b.sum_rate, 110000);
  EXPECT_DOUBLE_EQ(b.sum_l, 24000);
  EXPECT_EQ(b.count, 2u);
  l.remove_edf_entry(50000, 0.1, 12000);
  EXPECT_EQ(l.edf_buckets().at(0.1).count, 1u);
  l.remove_edf_entry(60000, 0.1, 12000);
  EXPECT_TRUE(l.edf_buckets().empty());
  EXPECT_THROW(l.remove_edf_entry(1, 0.1, 1), std::logic_error);
}

TEST(LinkQosState, EdfSchedulabilityExact) {
  NodeMib mib(mixed_spec());
  LinkQosState& l = mib.link("R3->R4");
  // Empty link: need C·d >= L, so d >= 0.008.
  EXPECT_TRUE(l.edf_schedulable_with(50000, 0.008, 12000));
  EXPECT_FALSE(l.edf_schedulable_with(50000, 0.007, 12000));
  // Fill to capacity on the slope condition.
  l.add_edf_entry(1.4e6, 0.5, 12000);
  EXPECT_TRUE(l.edf_schedulable_with(100000, 0.5, 12000));
  EXPECT_FALSE(l.edf_schedulable_with(100001, 0.5, 12000));
  // Knot condition: a tiny-deadline newcomer steals service from the
  // existing flow's deadline.
  EXPECT_FALSE(l.edf_schedulable_with(100000, 0.008, 12000) &&
               l.residual_service(0.5) < 100000 * (0.5 - 0.008) + 12000);
}

TEST(LinkQosState, EdfOperationsRequireDelayBasedLink) {
  NodeMib mib(mixed_spec());
  EXPECT_THROW(mib.link("I1->R2").add_edf_entry(1, 0.1, 1), std::logic_error);
  EXPECT_THROW(mib.link("I1->R2").edf_schedulable_with(1, 0.1, 1),
               std::logic_error);
}

TEST(PathMib, ProvisionAndLookup) {
  const DomainSpec spec = mixed_spec();
  NodeMib nodes(spec);
  PathMib paths(spec);
  const PathId p1 = paths.provision(fig8_path_s1());
  EXPECT_EQ(paths.provision(fig8_path_s1()), p1);  // idempotent
  EXPECT_EQ(paths.find("I1", "E1"), p1);
  EXPECT_EQ(paths.find("I1", "E2"), kInvalidPathId);
  const PathRecord& rec = paths.record(p1);
  EXPECT_EQ(rec.hop_count(), 5);
  EXPECT_EQ(rec.rate_based_count(), 3);
  EXPECT_EQ(rec.link_names.front(), "I1->R2");
  EXPECT_EQ(rec.ingress(), "I1");
  EXPECT_EQ(rec.egress(), "E1");
}

TEST(PathMib, MinResidualTracksNodeMib) {
  const DomainSpec spec = mixed_spec();
  NodeMib nodes(spec);
  PathMib paths(spec);
  const PathId p1 = paths.provision(fig8_path_s1());
  EXPECT_DOUBLE_EQ(paths.min_residual(p1, nodes), 1.5e6);
  ASSERT_TRUE(nodes.link("R2->R3").reserve(1.0e6).is_ok());
  EXPECT_DOUBLE_EQ(paths.min_residual(p1, nodes), 0.5e6);
  // Shared-link pressure shows up on the other path too.
  const PathId p2 = paths.provision(fig8_path_s2());
  EXPECT_DOUBLE_EQ(paths.min_residual(p2, nodes), 0.5e6);
}

TEST(FlowMib, CrudAndIds) {
  FlowMib mib;
  const FlowId a = mib.next_id();
  const FlowId b = mib.next_id();
  EXPECT_NE(a, b);
  FlowRecord rec;
  rec.id = a;
  rec.profile = TrafficProfile::make(60000, 50000, 100000, 12000);
  mib.add(rec);
  EXPECT_TRUE(mib.contains(a));
  EXPECT_EQ(mib.count(), 1u);
  auto got = mib.get(a);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().id, a);
  EXPECT_FALSE(mib.get(b).is_ok());
  auto removed = mib.remove(a);
  ASSERT_TRUE(removed.is_ok());
  EXPECT_EQ(mib.count(), 0u);
  EXPECT_FALSE(mib.remove(a).is_ok());
  EXPECT_THROW(mib.add(FlowRecord{}), std::logic_error);  // invalid id
}

}  // namespace
}  // namespace qosbb
