// Differential audit of the federated control plane against the flat
// single-broker oracle (federation/oracle.h): seeded fuzz sweeps of mixed
// intra/inter admits and releases with the oracle checking every decision,
// final link-state and §3 state audits, and per-member op-log replay with
// bit-identical digests. Sabotage canaries prove the oracle can actually
// flag a rogue booking and a non-conservative admit.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "federation/federated_front.h"
#include "federation/member.h"
#include "federation/oracle.h"
#include "federation/partition.h"
#include "topo/builders.h"
#include "util/rng.h"

namespace qosbb {
namespace {

struct OracleFed {
  explicit OracleFed(int domains = 3)
      : topo([domains] {
          MultiDomainOptions o;
          o.domains = domains;
          o.edge_pairs = 2;
          return o;
        }()),
        plan(partition_multi_domain(multi_domain_topology(topo),
                                    topo.domains)),
        oracle(plan, BrokerOptions{}) {
    for (int d = 0; d < plan.num_domains; ++d) {
      members.push_back(std::make_unique<InProcessMember>(
          d, plan.members[d], BrokerOptions{}));
    }
    std::vector<FederationMember*> raw;
    for (auto& m : members) raw.push_back(m.get());
    FederatedFrontOptions options;
    options.record_member_ops = true;
    front = std::make_unique<FederatedFront>(plan, raw, options);
  }

  MultiDomainOptions topo;
  FederationPlan plan;
  FederationOracle oracle;
  std::vector<std::unique_ptr<InProcessMember>> members;
  std::unique_ptr<FederatedFront> front;
};

FlowServiceRequest random_request(Rng& rng, const MultiDomainOptions& topo) {
  const int fd = rng.uniform_int(0, topo.domains - 1);
  const int td = rng.uniform_int(fd, topo.domains - 1);
  const int fp = rng.uniform_int(0, topo.edge_pairs - 1);
  const int tp = rng.uniform_int(0, topo.edge_pairs - 1);
  FlowServiceRequest req;
  req.profile = rng.bernoulli(0.5)
                    ? TrafficProfile::make(60000, 50000, 100000, 12000)
                    : TrafficProfile::make(24000, 10000, 40000, 12000);
  // One delay choice is (inter-domain) unattainable, to exercise the
  // coordinator's local r*-infeasible reject alongside member rejects.
  const double delays[] = {0.8, 1.5, 2.0, 3.0, 0.05};
  req.e2e_delay_req = delays[rng.uniform_int(0, 4)];
  req.ingress = "D" + std::to_string(fd) + "I" + std::to_string(fp);
  req.egress = "D" + std::to_string(td) + "E" + std::to_string(tp);
  return req;
}

TEST(FederationOracle, SeededFuzzSweepStaysClean) {
  for (const std::uint64_t seed : {7u, 2026u}) {
    OracleFed fed;
    Rng rng(seed);
    std::vector<FlowId> live;

    for (int op = 0; op < 160; ++op) {
      if (!live.empty() && rng.bernoulli(0.3)) {
        const std::size_t pick =
            static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<int>(live.size()) - 1));
        const FlowId flow = live[pick];
        live.erase(live.begin() + static_cast<long>(pick));
        ASSERT_TRUE(fed.front->release_service(flow).is_ok())
            << "seed " << seed << " op " << op;
        const Status s = fed.oracle.observe_release(flow);
        ASSERT_TRUE(s.is_ok()) << "seed " << seed << " op " << op << ": "
                               << s.to_string();
        continue;
      }
      const FlowServiceRequest request = random_request(rng, fed.topo);
      const FederatedOutcome outcome = fed.front->request_service(request);
      const Status s = fed.oracle.observe_admit(request, outcome);
      ASSERT_TRUE(s.is_ok()) << "seed " << seed << " op " << op << " ("
                             << request.ingress << " -> " << request.egress
                             << "): " << s.to_string();
      if (outcome.result.is_ok()) live.push_back(outcome.result.value().flow);
    }

    // The sweep must have exercised both sides of every decision class.
    const FederationStats stats = fed.front->stats();
    EXPECT_GT(stats.intra_admitted, 0u) << "seed " << seed;
    EXPECT_GT(stats.inter_admitted, 0u) << "seed " << seed;
    EXPECT_GT(stats.inter_rejected_local + stats.prepare_failures, 0u)
        << "seed " << seed;
    EXPECT_EQ(stats.poisoned_txns, 0u) << "seed " << seed;
    EXPECT_EQ(stats.ack_failures, 0u) << "seed " << seed;

    // Final audits: member link state vs the mirror, the mirror's own §3
    // invariants, and a from-scratch replay of every member's op log.
    for (int d = 0; d < fed.plan.num_domains; ++d) {
      const Status links =
          fed.oracle.check_member_links(fed.members[d]->broker(), d);
      EXPECT_TRUE(links.is_ok())
          << "seed " << seed << " domain " << d << ": " << links.to_string();

      const MemberReplayReport replay = replay_member_ops(
          fed.plan.members[d], BrokerOptions{}, fed.front->member_ops(d));
      ASSERT_TRUE(replay.ok)
          << "seed " << seed << " domain " << d << ": " << replay.detail;
      auto digest = fed.members[d]->digest();
      ASSERT_TRUE(digest.is_ok());
      EXPECT_EQ(replay.digest, digest.value().digest)
          << "seed " << seed << " domain " << d
          << ": replayed digest diverges from live member";
      EXPECT_EQ(replay.live_flows, digest.value().live_flows)
          << "seed " << seed << " domain " << d;
    }
    const Status state = fed.oracle.check_state();
    EXPECT_TRUE(state.is_ok()) << "seed " << seed << ": " << state.to_string();
  }
}

// Sabotage canary: a booking that bypasses the coordinator must be caught
// both by the link-state audit and by the op-log replay digest.
TEST(FederationOracle, FlagsRogueMemberBooking) {
  OracleFed fed;
  const FlowServiceRequest request{
      TrafficProfile::make(60000, 50000, 100000, 12000), 2.0, "D0I0", "D0E0"};
  const FederatedOutcome outcome = fed.front->request_service(request);
  ASSERT_TRUE(outcome.result.is_ok());
  ASSERT_TRUE(fed.oracle.observe_admit(request, outcome).is_ok());
  ASSERT_TRUE(
      fed.oracle.check_member_links(fed.members[0]->broker(), 0).is_ok());

  // Behind the federation's back: book directly on member 0.
  const FlowServiceRequest rogue{
      TrafficProfile::make(60000, 50000, 100000, 12000), 2.0, "D0I1", "D0E1"};
  ASSERT_TRUE(fed.members[0]->broker().request_service(rogue).is_ok());

  EXPECT_FALSE(
      fed.oracle.check_member_links(fed.members[0]->broker(), 0).is_ok());
  const MemberReplayReport replay = replay_member_ops(
      fed.plan.members[0], BrokerOptions{}, fed.front->member_ops(0));
  ASSERT_TRUE(replay.ok) << replay.detail;
  auto digest = fed.members[0]->digest();
  ASSERT_TRUE(digest.is_ok());
  EXPECT_NE(replay.digest, digest.value().digest)
      << "replay failed to notice an op missing from the coordinator log";
}

// Sabotage canary: a fabricated inter-domain admit the flat broker would
// refuse must be refuted by the conservativeness probe.
TEST(FederationOracle, RefutesFabricatedNonConservativeAdmit) {
  OracleFed fed;
  // Unattainable bound: the federation (and the flat broker) reject this.
  FlowServiceRequest request{
      TrafficProfile::make(60000, 50000, 100000, 12000), 0.05, "D0I0", "D2E0"};
  const FederatedOutcome honest = fed.front->request_service(request);
  ASSERT_FALSE(honest.result.is_ok());
  ASSERT_TRUE(fed.oracle.observe_admit(request, honest).is_ok())
      << "an honest reject is trivially conservative";

  FederatedOutcome forged;
  forged.inter_domain = true;
  forged.segments = 3;
  forged.segment_rate = request.profile.peak;
  Reservation fake;
  fake.flow = 999;
  fake.params = RateDelayPair{request.profile.peak, 0.0};
  forged.result = fake;
  const Status s = fed.oracle.observe_admit(request, forged);
  ASSERT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("conservativeness"), std::string::npos)
      << s.to_string();
}

}  // namespace
}  // namespace qosbb
