// Packet-level validation of Section 4 under churn: microflows join AND
// leave a live macroflow carrying greedy worst-case traffic; the broker's
// contingency machinery drives the edge conditioner's rate changes; every
// packet must meet the class delay bound throughout every transient.

#include <gtest/gtest.h>

#include <memory>

#include "core/broker.h"
#include "topo/fig8.h"
#include "vtrs/provisioned_network.h"

namespace qosbb {
namespace {

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

/// Test harness that keeps the conditioner rate in lockstep with the
/// broker's allocation (base + contingency) for one macroflow.
class MacroflowDriver {
 public:
  MacroflowDriver(BandwidthBroker& bb, ProvisionedNetwork& pn, ClassId cls)
      : bb_(bb), pn_(pn), cls_(cls) {}

  FlowId join(Seconds now, FlowId microflow_tag, Seconds traffic_until) {
    auto j = bb_.request_class_service(cls_, type0(), "I1", "E1", now,
                                       backlog(now));
    EXPECT_TRUE(j.admitted) << j.detail;
    if (!j.admitted) return kInvalidFlowId;
    if (macroflow_ == kInvalidFlowId) {
      macroflow_ = j.macroflow;
      cond_ = &pn_.install_flow(macroflow_, fig8_path_s1(),
                                bb_.classes().allocated(macroflow_), 0.0);
      cond_->set_drain_callback([this](Seconds t) {
        bb_.edge_buffer_empty(macroflow_, t);
        sync(t);
      });
    }
    sync(now);
    schedule_expiry(j.grant, j.contingency_expires_at);
    SourceDriver& src = pn_.attach_source(
        macroflow_, std::make_unique<GreedySource>(type0(), now),
        microflow_tag, traffic_until);
    src.start();
    sources_[j.microflow] = &src;
    return j.microflow;
  }

  void leave(Seconds now, FlowId microflow) {
    // The departing microflow stops sending (its already-queued packets
    // drain under the Theorem-3 contingency window).
    auto it = sources_.find(microflow);
    ASSERT_NE(it, sources_.end());
    it->second->stop();
    sources_.erase(it);
    auto l = bb_.leave_class_service(microflow, now, backlog(now));
    ASSERT_TRUE(l.is_ok());
    sync(now);
    schedule_expiry(l.value().grant, l.value().contingency_expires_at);
  }

  FlowId macroflow() const { return macroflow_; }
  EdgeConditioner& conditioner() { return *cond_; }

 private:
  std::optional<Bits> backlog(Seconds) const {
    return cond_ == nullptr ? 0.0 : cond_->backlog();
  }
  void sync(Seconds now) {
    if (cond_ == nullptr) return;
    const MacroflowState* mf = bb_.classes().macroflow(macroflow_);
    if (mf != nullptr) {
      cond_->set_rate(now, bb_.classes().allocated(macroflow_));
    }
  }
  void schedule_expiry(GrantId grant, Seconds when) {
    if (grant == kInvalidGrantId) return;
    pn_.events().schedule(when, [this, grant, when] {
      bb_.expire_contingency(grant, when);
      sync(when);
    });
  }

  BandwidthBroker& bb_;
  ProvisionedNetwork& pn_;
  ClassId cls_;
  FlowId macroflow_ = kInvalidFlowId;
  EdgeConditioner* cond_ = nullptr;
  std::unordered_map<FlowId, SourceDriver*> sources_;
};

class AggregationChurn : public ::testing::TestWithParam<ContingencyMethod> {
};

TEST_P(AggregationChurn, ClassBoundHoldsThroughJoinsAndLeaves) {
  const DomainSpec spec = fig8_topology(Fig8Setting::kRateBasedOnly);
  BandwidthBroker bb(spec, BrokerOptions{GetParam()});
  ProvisionedNetwork pn(spec);
  const Seconds class_bound = 2.44;
  const ClassId cls = bb.define_class(class_bound, 0.0);
  MacroflowDriver driver(bb, pn, cls);

  // Churn schedule: joins at 0/15/30/45, leaves at 60/75 — every event
  // lands while greedy traffic is in full flight.
  std::vector<FlowId> members;
  const Seconds horizon = 110.0;
  members.push_back(driver.join(0.0, 101, horizon));
  pn.events().schedule(15.0, [&] {
    members.push_back(driver.join(15.0, 102, horizon));
  });
  pn.events().schedule(30.0, [&] {
    members.push_back(driver.join(30.0, 103, horizon));
  });
  pn.events().schedule(45.0, [&] {
    members.push_back(driver.join(45.0, 104, horizon));
  });
  pn.events().schedule(60.0, [&] { driver.leave(60.0, members[1]); });
  pn.events().schedule(75.0, [&] { driver.leave(75.0, members[2]); });

  pn.run_until(horizon + 30.0);

  const auto& rec = pn.meter().record(driver.macroflow());
  EXPECT_GT(rec.total_delay.count(), 1000u);
  // Every packet within the class bound, through four joins, two leaves,
  // and all their contingency windows.
  EXPECT_LE(rec.total_delay.max(), class_bound + 1e-9)
      << contingency_method_name(GetParam());
  EXPECT_EQ(pn.vtrs().total_guarantee_violations(), 0u);
  EXPECT_EQ(pn.vtrs().total_reality_check_violations(), 0u);

  // The broker settles back to a 2-microflow macroflow at the mean rate.
  const MacroflowState* mf = bb.classes().macroflow(driver.macroflow());
  ASSERT_NE(mf, nullptr);
  EXPECT_EQ(mf->microflows, 2);
  EXPECT_NEAR(mf->base_rate, 100000, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Methods, AggregationChurn,
                         ::testing::Values(ContingencyMethod::kBounding,
                                           ContingencyMethod::kFeedback),
                         [](const auto& info) {
                           return info.param == ContingencyMethod::kBounding
                                      ? "Bounding"
                                      : "Feedback";
                         });

TEST(AggregationChurn, FeedbackReleasesFasterThanBounding) {
  // Same join under both methods with real (packet-measured) backlog: the
  // feedback method's contingency window must be no longer than the
  // bounding method's eq.-17 worst case.
  auto window = [](ContingencyMethod method) {
    const DomainSpec spec = fig8_topology(Fig8Setting::kRateBasedOnly);
    BandwidthBroker bb(spec, BrokerOptions{method});
    ProvisionedNetwork pn(spec);
    const ClassId cls = bb.define_class(2.44, 0.0);
    MacroflowDriver driver(bb, pn, cls);
    driver.join(0.0, 101, 40.0);
    pn.run_until(10.0);
    const Bits q = driver.conditioner().backlog();
    auto j = bb.request_class_service(cls, type0(), "I1", "E1", 10.0, q);
    EXPECT_TRUE(j.admitted);
    return j.grant == kInvalidGrantId ? 0.0
                                      : j.contingency_expires_at - 10.0;
  };
  const Seconds bounding = window(ContingencyMethod::kBounding);
  const Seconds feedback = window(ContingencyMethod::kFeedback);
  EXPECT_GT(bounding, 0.0);
  EXPECT_LE(feedback, bounding + 1e-9);
}

}  // namespace
}  // namespace qosbb
