// Unit tests for topology: graph, Dijkstra routing, Figure-8 domain specs.

#include <gtest/gtest.h>

#include "topo/fig8.h"
#include "topo/graph.h"
#include "topo/routing.h"

namespace qosbb {
namespace {

Graph diamond() {
  // A -> B -> D (weight 1+1) and A -> C -> D (weight 2+2).
  Graph g;
  g.add_node("A");
  g.add_node("B");
  g.add_node("C");
  g.add_node("D");
  g.add_edge("A", "B", 1.0);
  g.add_edge("B", "D", 1.0);
  g.add_edge("A", "C", 2.0);
  g.add_edge("C", "D", 2.0);
  return g;
}

TEST(Graph, BasicAccessors) {
  Graph g = diamond();
  EXPECT_EQ(g.node_count(), 4);
  EXPECT_EQ(g.edge_count(), 4);
  EXPECT_EQ(g.name(0), "A");
  EXPECT_EQ(g.index("C"), 2);
  EXPECT_EQ(g.index("nope"), kInvalidNode);
  EXPECT_EQ(g.edges_from(0).size(), 2u);
}

TEST(Graph, Contracts) {
  Graph g = diamond();
  EXPECT_THROW(g.add_node("A"), std::logic_error);
  EXPECT_THROW(g.add_edge("A", "nope"), std::logic_error);
  EXPECT_THROW(g.add_edge(0, 99), std::logic_error);
  EXPECT_THROW(g.edge(99), std::logic_error);
}

TEST(Routing, ShortestPathPrefersLowWeight) {
  Graph g = diamond();
  auto p = shortest_path(g, "A", "D");
  ASSERT_TRUE(p.is_ok());
  EXPECT_EQ(p.value(), (std::vector<std::string>{"A", "B", "D"}));
}

TEST(Routing, UnreachableReturnsNotFound) {
  Graph g = diamond();
  g.add_node("Z");
  auto p = shortest_path(g, "A", "Z");
  EXPECT_FALSE(p.is_ok());
  EXPECT_EQ(p.status().code(), StatusCode::kNotFound);
  auto q = shortest_path(g, "missing", "A");
  EXPECT_EQ(q.status().code(), StatusCode::kNotFound);
}

TEST(Routing, TrivialSelfPath) {
  Graph g = diamond();
  auto p = shortest_path(g, 0, 0);
  ASSERT_TRUE(p.is_ok());
  EXPECT_EQ(p.value().size(), 1u);
}

TEST(Routing, ShortestPathTreeCoversReachable) {
  Graph g = diamond();
  auto tree = shortest_path_tree(g, 0);
  EXPECT_EQ(tree[3], (std::vector<NodeIndex>{0, 1, 3}));
  EXPECT_EQ(tree[0], (std::vector<NodeIndex>{0}));
}

TEST(Fig8, TopologyShape) {
  const DomainSpec spec = fig8_topology(Fig8Setting::kRateBasedOnly);
  EXPECT_EQ(spec.nodes.size(), 8u);
  EXPECT_EQ(spec.links.size(), 7u);
  EXPECT_DOUBLE_EQ(spec.l_max, 12000.0);
  for (const auto& l : spec.links) {
    EXPECT_DOUBLE_EQ(l.capacity, 1.5e6);
    EXPECT_DOUBLE_EQ(l.propagation_delay, 0.0);
    EXPECT_EQ(l.policy, SchedPolicy::kCsvc);
  }
}

TEST(Fig8, MixedSettingMatchesPaper) {
  const DomainSpec spec = fig8_topology(Fig8Setting::kMixed);
  // Delay-based: R3->R4, R4->R5, R5->E2; everything else rate-based.
  EXPECT_EQ(spec.link("R3", "R4").policy, SchedPolicy::kVtEdf);
  EXPECT_EQ(spec.link("R4", "R5").policy, SchedPolicy::kVtEdf);
  EXPECT_EQ(spec.link("R5", "E2").policy, SchedPolicy::kVtEdf);
  EXPECT_EQ(spec.link("I1", "R2").policy, SchedPolicy::kCsvc);
  EXPECT_EQ(spec.link("R2", "R3").policy, SchedPolicy::kCsvc);
  EXPECT_EQ(spec.link("R5", "E1").policy, SchedPolicy::kCsvc);
}

TEST(Fig8, GsTopologyMapsSchedulers) {
  const DomainSpec spec = fig8_gs_topology(Fig8Setting::kMixed);
  EXPECT_EQ(spec.link("I1", "R2").policy, SchedPolicy::kVc);
  EXPECT_EQ(spec.link("R3", "R4").policy, SchedPolicy::kRcEdf);
}

TEST(Fig8, PathsHaveFiveHops) {
  EXPECT_EQ(fig8_path_s1().size(), 6u);
  EXPECT_EQ(fig8_path_s2().size(), 6u);
  const Graph g = fig8_topology(Fig8Setting::kMixed).to_graph();
  auto p1 = shortest_path(g, "I1", "E1");
  ASSERT_TRUE(p1.is_ok());
  EXPECT_EQ(p1.value(), fig8_path_s1());
  auto p2 = shortest_path(g, "I2", "E2");
  ASSERT_TRUE(p2.is_ok());
  EXPECT_EQ(p2.value(), fig8_path_s2());
}

TEST(Fig8, MakeSchedulerCoversAllPolicies) {
  for (SchedPolicy p :
       {SchedPolicy::kCsvc, SchedPolicy::kCjvc, SchedPolicy::kVtEdf,
        SchedPolicy::kVc, SchedPolicy::kWfq, SchedPolicy::kRcEdf,
        SchedPolicy::kFifo}) {
    auto s = make_scheduler(p, 1.5e6, 12000);
    ASSERT_NE(s, nullptr);
    EXPECT_STREQ(s->name(), sched_policy_name(p));
    EXPECT_EQ(s->kind() == SchedulerKind::kRateBased, is_rate_based(p));
  }
}

TEST(Fig8, BuildNetworkInstantiatesEverything) {
  const DomainSpec spec = fig8_topology(Fig8Setting::kMixed);
  Network net;
  build_network(spec, net);
  for (const auto& n : spec.nodes) EXPECT_TRUE(net.has_node(n));
  for (const auto& l : spec.links) EXPECT_TRUE(net.has_link(l.from, l.to));
  EXPECT_STREQ(net.link("R3", "R4").scheduler().name(), "VT-EDF");
}

TEST(Fig8, StatefulPolicyClassification) {
  EXPECT_TRUE(is_stateful(SchedPolicy::kVc));
  EXPECT_TRUE(is_stateful(SchedPolicy::kRcEdf));
  EXPECT_FALSE(is_stateful(SchedPolicy::kCsvc));
  EXPECT_FALSE(is_stateful(SchedPolicy::kVtEdf));
}

}  // namespace
}  // namespace qosbb
