// Tests for statistical (Hoeffding effective-bandwidth) admission: gains
// over deterministic reservation, monotonicity in ε, bookkeeping, and a
// Monte-Carlo check that the realized overflow probability respects ε.

#include <gtest/gtest.h>

#include <cmath>

#include "core/broker.h"
#include "core/stat_admission.h"
#include "topo/fig8.h"
#include "util/rng.h"

namespace qosbb {
namespace {

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

/// Fill at a 15 Mb/s core — statistical multiplexing needs flows that are
/// small relative to the pipe (the sqrt(n) headroom must amortize).
int fill_statistical(double epsilon, double capacity = 15e6) {
  StatisticalAdmission stat(
      fig8_topology(Fig8Setting::kRateBasedOnly, capacity), epsilon);
  int n = 0;
  while (stat.request_service(type0(), "I1", "E1").is_ok()) ++n;
  return n;
}

TEST(StatAdmission, HeadroomFormula) {
  // sqrt(ln(1/ε)·ΣP²/2): one flow at P=100k, ε=e^{-2} → sqrt(1e10) = 1e5.
  EXPECT_NEAR(StatisticalAdmission::headroom(1e10, std::exp(-2.0)), 1e5,
              1e-3);
  EXPECT_DOUBLE_EQ(StatisticalAdmission::headroom(0.0, 0.5), 0.0);
}

TEST(StatAdmission, BeatsPeakRateAllocationForLowDelayService) {
  // The meaningful baseline: LOW-DELAY deterministic service needs
  // near-peak reservations (the shaping delay T_on(P−r)/r blows up below
  // the peak), carrying only C/P = 150 flows on a 15 Mb/s core.
  // Statistical admission books Σρ + O(sqrt(n)·P) and admits far more —
  // while staying below the Σρ = C ceiling (300) that bounds ANY scheme.
  const int peak_det = 150;
  const int mean_ceiling = 300;
  const int loose = fill_statistical(1e-2);
  const int tight = fill_statistical(1e-6);
  EXPECT_GT(loose, peak_det);
  EXPECT_GT(tight, peak_det);
  EXPECT_LT(loose, mean_ceiling);
  EXPECT_LT(tight, mean_ceiling);
  // Monotone: looser ε admits at least as many flows.
  EXPECT_GE(loose, tight);
}

TEST(StatAdmission, EpsilonSweepIsMonotone) {
  int prev = 1 << 30;
  for (double eps : {1e-1, 1e-2, 1e-3, 1e-4, 1e-6}) {
    const int n = fill_statistical(eps);
    EXPECT_LE(n, prev) << "eps " << eps;
    prev = n;
  }
}

TEST(StatAdmission, ReleaseRestoresState) {
  StatisticalAdmission stat(fig8_topology(Fig8Setting::kRateBasedOnly),
                            1e-3);
  auto a = stat.request_service(type0(), "I1", "E1");
  auto b = stat.request_service(type0(), "I1", "E1");
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(stat.link_state("R2->R3").flows, 2u);
  EXPECT_DOUBLE_EQ(stat.link_state("R2->R3").sum_mean, 100000);
  ASSERT_TRUE(stat.release_service(a.value().flow).is_ok());
  ASSERT_TRUE(stat.release_service(b.value().flow).is_ok());
  EXPECT_EQ(stat.link_state("R2->R3").flows, 0u);
  EXPECT_DOUBLE_EQ(stat.link_state("R2->R3").sum_mean, 0.0);
  EXPECT_DOUBLE_EQ(stat.link_state("R2->R3").sum_peak_sq, 0.0);
  EXPECT_FALSE(stat.release_service(a.value().flow).is_ok());
}

TEST(StatAdmission, SharedLinksAccountBothPaths) {
  StatisticalAdmission stat(fig8_topology(Fig8Setting::kRateBasedOnly),
                            1e-3);
  ASSERT_TRUE(stat.request_service(type0(), "I1", "E1").is_ok());
  ASSERT_TRUE(stat.request_service(type0(), "I2", "E2").is_ok());
  EXPECT_EQ(stat.link_state("R2->R3").flows, 2u);
  EXPECT_EQ(stat.link_state("I1->R2").flows, 1u);
}

TEST(StatAdmission, ContractChecks) {
  EXPECT_THROW(
      StatisticalAdmission(fig8_topology(Fig8Setting::kRateBasedOnly), 0.0),
      std::logic_error);
  EXPECT_THROW(
      StatisticalAdmission(fig8_topology(Fig8Setting::kRateBasedOnly), 1.0),
      std::logic_error);
  StatisticalAdmission stat(fig8_topology(Fig8Setting::kRateBasedOnly),
                            1e-3);
  EXPECT_THROW(stat.link_state("nope"), std::logic_error);
  EXPECT_FALSE(stat.request_service(type0(), "I1", "nowhere").is_ok());
}

TEST(StatAdmission, MonteCarloOverflowStaysBelowEpsilon) {
  // Fill at ε = 1e-2, then sample the stationary on–off aggregate: each
  // admitted flow is ON (at peak P) independently with probability ρ/P.
  // The empirical overflow frequency must be <= ε (Hoeffding is not tight,
  // so it is usually far below).
  const double eps = 1e-2;
  const double capacity = 15e6;
  StatisticalAdmission stat(
      fig8_topology(Fig8Setting::kRateBasedOnly, capacity), eps);
  int n = 0;
  while (stat.request_service(type0(), "I1", "E1").is_ok()) ++n;
  ASSERT_GT(n, 150);
  Rng rng(4242);
  const double p_on = type0().rho / type0().peak;  // 0.5
  const int trials = 20000;
  int overflow = 0;
  for (int t = 0; t < trials; ++t) {
    double load = 0.0;
    for (int j = 0; j < n; ++j) {
      if (rng.bernoulli(p_on)) load += type0().peak;
    }
    if (load > capacity) ++overflow;
  }
  const double realized = static_cast<double>(overflow) / trials;
  EXPECT_LE(realized, eps) << "admitted " << n;
}

}  // namespace
}  // namespace qosbb
