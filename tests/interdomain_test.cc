// Tests for inter-domain reservation over SLA trunks: trunk provisioning,
// end-to-end rate computation, trunk headroom gating, rollback, release.

#include <gtest/gtest.h>

#include "core/interdomain.h"
#include "topo/builders.h"

namespace qosbb {
namespace {

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

ChainOptions edge_chain(const char* prefix, int hops = 2) {
  ChainOptions opt;
  opt.hops = hops;
  opt.prefix = prefix;
  opt.capacity = 1.5e6;
  return opt;
}

/// Three-domain chain: source (2 hops, prefix A), transit (3 hops, prefix
/// T, crossed by an SLA trunk), destination (2 hops, prefix B).
InterDomainOrchestrator make_chain(BitsPerSecond trunk_rate = 600000) {
  InterDomainOrchestrator orch;
  orch.add_domain("src", chain_topology(edge_chain("A", 2)), "A0", "A2");
  orch.add_domain("transit", chain_topology(edge_chain("T", 3)), "T0", "T3");
  orch.add_domain("dst", chain_topology(edge_chain("B", 2)), "B0", "B2");
  EXPECT_TRUE(orch.provision_trunk("transit", trunk_rate, 120000).is_ok());
  return orch;
}

TEST(InterDomain, TrunkProvisioningReservesInTransitBb) {
  InterDomainOrchestrator orch = make_chain(600000);
  EXPECT_DOUBLE_EQ(orch.trunk_headroom("transit"), 600000);
  // The transit BB holds the trunk as one aggregate reservation.
  EXPECT_EQ(orch.domain("transit").flows().count(), 1u);
  EXPECT_NEAR(orch.domain("transit").nodes().link("T0->T1").reserved(),
              600000, 1e-6);
  // Trunk bound: (h+1)·L/R + D_tot = 4·12000/600000 + 3·0.008 = 0.104 s.
  EXPECT_NEAR(orch.trunk_delay("transit"), 0.104, 1e-9);
}

TEST(InterDomain, EndToEndAdmissionComputesClosedFormRate) {
  InterDomainOrchestrator orch = make_chain();
  // Generous budget: the mean rate suffices.
  auto res = orch.request_service(type0(), 5.0);
  ASSERT_TRUE(res.is_ok()) << res.status().to_string();
  EXPECT_NEAR(res.value().rate, 50000, 1e-6);
  EXPECT_LE(res.value().e2e_bound, 5.0 + 1e-9);
  // Both edge legs booked, trunk headroom consumed.
  EXPECT_EQ(orch.domain("src").flows().count(), 1u);
  EXPECT_EQ(orch.domain("dst").flows().count(), 1u);
  EXPECT_NEAR(orch.trunk_headroom("transit"), 550000, 1e-6);
}

TEST(InterDomain, TightBudgetRaisesRate) {
  InterDomainOrchestrator orch = make_chain();
  auto loose = orch.request_service(type0(), 5.0);
  ASSERT_TRUE(loose.is_ok());
  // Tight: 2·0.96·(P−r)/r + 6·12000/r + 0.016 + 0.016 + 0.104 <= D.
  auto tight = orch.request_service(type0(), 2.0);
  ASSERT_TRUE(tight.is_ok());
  EXPECT_GT(tight.value().rate, loose.value().rate);
  EXPECT_LE(tight.value().e2e_bound, 2.0 + 1e-6);
  // Impossible: below the fixed chain latency.
  EXPECT_FALSE(orch.request_service(type0(), 0.05).is_ok());
}

TEST(InterDomain, TrunkHeadroomGates) {
  InterDomainOrchestrator orch = make_chain(/*trunk_rate=*/120000);
  auto a = orch.request_service(type0(), 5.0);
  auto b = orch.request_service(type0(), 5.0);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  // Third flow needs 50 kb/s; only 20 kb/s of trunk left.
  auto c = orch.request_service(type0(), 5.0);
  EXPECT_FALSE(c.is_ok());
  EXPECT_NE(c.status().message().find("trunk"), std::string::npos);
  // Edge domains untouched by the failed attempt.
  EXPECT_EQ(orch.domain("src").flows().count(), 2u);
}

TEST(InterDomain, ReleaseRestoresEverything) {
  InterDomainOrchestrator orch = make_chain();
  auto res = orch.request_service(type0(), 5.0);
  ASSERT_TRUE(res.is_ok());
  ASSERT_TRUE(orch.release_service(res.value().id).is_ok());
  EXPECT_DOUBLE_EQ(orch.trunk_headroom("transit"), 600000);
  EXPECT_EQ(orch.domain("src").flows().count(), 0u);
  EXPECT_EQ(orch.domain("dst").flows().count(), 0u);
  EXPECT_EQ(orch.flow_count(), 0u);
  EXPECT_FALSE(orch.release_service(res.value().id).is_ok());
}

TEST(InterDomain, SingleDomainDegeneratesToPlainAdmission) {
  InterDomainOrchestrator orch;
  orch.add_domain("only", chain_topology(edge_chain("A", 5)), "A0", "A5");
  auto res = orch.request_service(type0(), 2.44);
  ASSERT_TRUE(res.is_ok());
  EXPECT_NEAR(res.value().rate, 50000, 1e-6);
  EXPECT_NEAR(res.value().e2e_bound, 2.44, 1e-9);
  ASSERT_TRUE(orch.release_service(res.value().id).is_ok());
}

TEST(InterDomain, MissingTrunkIsFailedPrecondition) {
  InterDomainOrchestrator orch;
  orch.add_domain("src", chain_topology(edge_chain("A", 2)), "A0", "A2");
  orch.add_domain("transit", chain_topology(edge_chain("T", 3)), "T0", "T3");
  orch.add_domain("dst", chain_topology(edge_chain("B", 2)), "B0", "B2");
  auto res = orch.request_service(type0(), 5.0);
  EXPECT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), StatusCode::kFailedPrecondition);
}

TEST(InterDomain, MixedEdgeDomainRejectedInV1) {
  InterDomainOrchestrator orch;
  ChainOptions mixed = edge_chain("A", 2);
  mixed.policy = SchedPolicy::kVtEdf;
  orch.add_domain("src", chain_topology(mixed), "A0", "A2");
  orch.add_domain("transit", chain_topology(edge_chain("T", 3)), "T0", "T3");
  orch.add_domain("dst", chain_topology(edge_chain("B", 2)), "B0", "B2");
  ASSERT_TRUE(orch.provision_trunk("transit", 600000, 120000).is_ok());
  auto res = orch.request_service(type0(), 5.0);
  EXPECT_FALSE(res.is_ok());
  EXPECT_NE(res.status().message().find("rate-based-only"),
            std::string::npos);
}

TEST(InterDomain, FiveDomainChainSumsTrunkDelays) {
  InterDomainOrchestrator orch;
  orch.add_domain("src", chain_topology(edge_chain("A", 2)), "A0", "A2");
  orch.add_domain("t1", chain_topology(edge_chain("T", 3)), "T0", "T3");
  orch.add_domain("t2", chain_topology(edge_chain("U", 4)), "U0", "U4");
  orch.add_domain("dst", chain_topology(edge_chain("B", 2)), "B0", "B2");
  ASSERT_TRUE(orch.provision_trunk("t1", 600000, 120000).is_ok());
  ASSERT_TRUE(orch.provision_trunk("t2", 600000, 120000).is_ok());
  auto res = orch.request_service(type0(), 5.0);
  ASSERT_TRUE(res.is_ok());
  // Bound decomposes: two edge legs + both trunks.
  const double legs = res.value().e2e_bound - orch.trunk_delay("t1") -
                      orch.trunk_delay("t2");
  EXPECT_GT(legs, 0.0);
  EXPECT_LE(res.value().e2e_bound, 5.0 + 1e-9);
}

TEST(InterDomain, Contracts) {
  InterDomainOrchestrator orch = make_chain();
  EXPECT_THROW(orch.domain("nope"), std::logic_error);
  EXPECT_THROW(orch.trunk_headroom("src"), std::logic_error);
  EXPECT_THROW(orch.provision_trunk("transit", 1000, 120000),
               std::logic_error);  // already provisioned
}

}  // namespace
}  // namespace qosbb
