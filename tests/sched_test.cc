// Unit tests for the scheduler implementations: ordering disciplines,
// eligibility (non-work-conserving), per-flow state handling, error terms.

#include <gtest/gtest.h>

#include <cmath>

#include "sched/cjvc.h"
#include "sched/csvc.h"
#include "sched/fifo.h"
#include "sched/rcedf.h"
#include "sched/scheduler.h"
#include "sched/static_priority.h"
#include "sched/vc.h"
#include "sched/vtedf.h"
#include "sched/wfq.h"

namespace qosbb {
namespace {

Packet make_packet(FlowId flow, double rate, double delay, double vtime,
                   double size = 12000.0) {
  Packet p;
  p.flow = flow;
  p.size = size;
  p.state.rate = rate;
  p.state.delay_param = delay;
  p.state.virtual_time = vtime;
  p.state.delta = 0.0;
  return p;
}

TEST(VirtualDeadline, RateBasedUsesSizeOverRate) {
  Packet p = make_packet(1, 50000, 0.5, 10.0);
  EXPECT_DOUBLE_EQ(virtual_deadline(SchedulerKind::kRateBased, p), 0.24);
  EXPECT_DOUBLE_EQ(virtual_finish_time(SchedulerKind::kRateBased, p), 10.24);
}

TEST(VirtualDeadline, DelayBasedUsesDelayParam) {
  Packet p = make_packet(1, 50000, 0.5, 10.0);
  EXPECT_DOUBLE_EQ(virtual_deadline(SchedulerKind::kDelayBased, p), 0.5);
  EXPECT_DOUBLE_EQ(virtual_finish_time(SchedulerKind::kDelayBased, p), 10.5);
}

TEST(VirtualDeadline, DeltaAdjustsRateBasedDeadline) {
  Packet p = make_packet(1, 50000, 0.0, 10.0);
  p.state.delta = 0.1;
  EXPECT_DOUBLE_EQ(virtual_deadline(SchedulerKind::kRateBased, p), 0.34);
}

TEST(DeadlineQueue, OrdersByKeyThenFifo) {
  DeadlineQueue q;
  q.push(2.0, make_packet(1, 1, 0, 0));
  q.push(1.0, make_packet(2, 1, 0, 0));
  q.push(2.0, make_packet(3, 1, 0, 0));
  EXPECT_EQ(q.pop().flow, 2);
  EXPECT_EQ(q.pop().flow, 1);  // FIFO among equal keys
  EXPECT_EQ(q.pop().flow, 3);
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(Csvc, ServicesInVirtualFinishOrder) {
  CsvcScheduler s(1.5e6, 12000);
  // Flow 1 at rate 50k: d̃ = 0.24; flow 2 at rate 100k: d̃ = 0.12.
  s.enqueue(0.0, make_packet(1, 50000, 0, 0.0));
  s.enqueue(0.0, make_packet(2, 100000, 0, 0.0));
  auto first = s.dequeue(0.0);
  ASSERT_TRUE(first);
  EXPECT_EQ(first->flow, 2);
  EXPECT_EQ(s.dequeue(0.0)->flow, 1);
  EXPECT_FALSE(s.dequeue(0.0).has_value());
}

TEST(Csvc, ErrorTermIsLmaxOverC) {
  CsvcScheduler s(1.5e6, 12000);
  EXPECT_DOUBLE_EQ(s.error_term(), 0.008);
  EXPECT_EQ(s.kind(), SchedulerKind::kRateBased);
}

TEST(VtEdf, ServicesByVirtualTimePlusDelay) {
  VtEdfScheduler s(1.5e6, 12000);
  s.enqueue(0.0, make_packet(1, 50000, 0.5, 0.0));  // ν̃ = 0.5
  s.enqueue(0.0, make_packet(2, 50000, 0.1, 0.2));  // ν̃ = 0.3
  EXPECT_EQ(s.dequeue(0.0)->flow, 2);
  EXPECT_EQ(s.dequeue(0.0)->flow, 1);
  EXPECT_EQ(s.kind(), SchedulerKind::kDelayBased);
}

TEST(Cjvc, HoldsUntilVirtualArrival) {
  CjvcScheduler s(1.5e6, 12000);
  s.enqueue(0.0, make_packet(1, 50000, 0, 1.0));  // eligible at ω̃ = 1.0
  EXPECT_FALSE(s.dequeue(0.0).has_value());
  EXPECT_FALSE(s.empty());
  auto next = s.next_eligible_after(0.0);
  ASSERT_TRUE(next);
  EXPECT_DOUBLE_EQ(*next, 1.0);
  auto p = s.dequeue(1.0);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->flow, 1);
}

TEST(Cjvc, EligiblePacketsOrderedByFinishTime) {
  CjvcScheduler s(1.5e6, 12000);
  s.enqueue(0.0, make_packet(1, 50000, 0, 0.0));   // ν̃ = 0.24
  s.enqueue(0.0, make_packet(2, 100000, 0, 0.0));  // ν̃ = 0.12
  EXPECT_EQ(s.queue_length(), 2u);
  EXPECT_EQ(s.dequeue(0.0)->flow, 2);
}

TEST(Vc, PerFlowClockAdvances) {
  VcScheduler s(1.5e6, 12000);
  s.configure_flow(1, 50000);
  // Two back-to-back packets: VC tags 0.24 and 0.48.
  s.enqueue(0.0, make_packet(1, 0, 0, 0));  // carried rate ignored: configured
  s.enqueue(0.0, make_packet(1, 0, 0, 0));
  s.configure_flow(2, 100000);
  s.enqueue(0.0, make_packet(2, 0, 0, 0));  // VC tag 0.12 — goes first
  EXPECT_EQ(s.dequeue(0.0)->flow, 2);
  EXPECT_EQ(s.dequeue(0.0)->flow, 1);
  EXPECT_EQ(s.dequeue(0.0)->flow, 1);
  EXPECT_EQ(s.configured_flows(), 2u);
  s.remove_flow(1);
  EXPECT_EQ(s.configured_flows(), 1u);
}

TEST(Vc, FallsBackToCarriedRate) {
  VcScheduler s(1.5e6, 12000);
  s.enqueue(0.0, make_packet(9, 50000, 0, 0));
  EXPECT_EQ(s.dequeue(0.0)->flow, 9);
}

TEST(Vc, NoRateIsContractViolation) {
  VcScheduler s(1.5e6, 12000);
  EXPECT_THROW(s.enqueue(0.0, make_packet(9, 0, 0, 0)), std::logic_error);
}

TEST(Wfq, FinishTagsProportionalToRates) {
  WfqScheduler s(1.5e6, 12000);
  s.configure_flow(1, 50000);
  s.configure_flow(2, 100000);
  s.enqueue(0.0, make_packet(1, 0, 0, 0));
  s.enqueue(0.0, make_packet(2, 0, 0, 0));
  // Higher-rate flow finishes first in GPS.
  EXPECT_EQ(s.dequeue(0.0)->flow, 2);
  EXPECT_EQ(s.dequeue(0.0)->flow, 1);
}

TEST(Wfq, VirtualTimeTracksRealTimeWhenIdle) {
  WfqScheduler s(1.5e6, 12000);
  EXPECT_DOUBLE_EQ(s.virtual_time(5.0), 5.0);
}

TEST(Wfq, RemoveWhileBackloggedIsContractViolation) {
  WfqScheduler s(1.5e6, 12000);
  s.configure_flow(1, 50000);
  s.enqueue(0.0, make_packet(1, 0, 0, 0));
  EXPECT_THROW(s.remove_flow(1), std::logic_error);
  ASSERT_TRUE(s.dequeue(0.1).has_value());
  EXPECT_NO_THROW(s.remove_flow(1));
}

TEST(Wfq, BacklogAccountingSurvivesChurn) {
  WfqScheduler s(1.5e6, 12000);
  s.configure_flow(1, 50000);
  for (int round = 0; round < 10; ++round) {
    s.enqueue(round * 1.0, make_packet(1, 0, 0, 0));
    ASSERT_TRUE(s.dequeue(round * 1.0 + 0.5).has_value());
  }
  EXPECT_TRUE(s.empty());
}

TEST(RcEdf, RegulatorDelaysToReservedSpacing) {
  RcEdfScheduler s(1.5e6, 12000);
  s.configure_flow(1, 50000, 0.1);
  // Two packets arrive back-to-back; the second is eligible only after
  // L/r = 0.24 s.
  s.enqueue(0.0, make_packet(1, 0, 0, 0));
  s.enqueue(0.0, make_packet(1, 0, 0, 0));
  ASSERT_TRUE(s.dequeue(0.0).has_value());
  EXPECT_FALSE(s.dequeue(0.0).has_value());
  auto next = s.next_eligible_after(0.0);
  ASSERT_TRUE(next);
  EXPECT_DOUBLE_EQ(*next, 0.24);
  EXPECT_TRUE(s.dequeue(0.24).has_value());
  EXPECT_TRUE(s.empty());
}

TEST(RcEdf, EdfOrderAmongEligible) {
  RcEdfScheduler s(1.5e6, 12000);
  s.configure_flow(1, 50000, 0.5);
  s.configure_flow(2, 50000, 0.1);
  s.enqueue(0.0, make_packet(1, 0, 0, 0));  // deadline 0.5
  s.enqueue(0.0, make_packet(2, 0, 0, 0));  // deadline 0.1
  EXPECT_EQ(s.dequeue(0.0)->flow, 2);
  EXPECT_EQ(s.dequeue(0.0)->flow, 1);
  EXPECT_EQ(s.kind(), SchedulerKind::kDelayBased);
}

TEST(Fifo, OrderPreserved) {
  FifoScheduler s(1.5e6, 12000);
  s.enqueue(0.0, make_packet(1, 1, 0, 0));
  s.enqueue(0.0, make_packet(2, 1, 0, 0));
  EXPECT_EQ(s.dequeue(0.0)->flow, 1);
  EXPECT_EQ(s.dequeue(0.0)->flow, 2);
  EXPECT_TRUE(std::isinf(s.error_term()));
}

TEST(Scheduler, ConstructorContracts) {
  EXPECT_THROW(CsvcScheduler(0.0, 12000), std::logic_error);
  EXPECT_THROW(CsvcScheduler(1.5e6, 0.0), std::logic_error);
}

TEST(StaticPriority, LevelMappingByDelayParam) {
  StaticPriorityScheduler s(1.5e6, 12000, {0.1, 0.3, 1.0});
  EXPECT_EQ(s.levels(), 3);
  EXPECT_EQ(s.level_for(0.05), 0);
  EXPECT_EQ(s.level_for(0.1), 0);
  EXPECT_EQ(s.level_for(0.2), 1);
  EXPECT_EQ(s.level_for(0.9), 2);
  EXPECT_EQ(s.level_for(5.0), 2);  // looser than every level: lowest
}

TEST(StaticPriority, StrictPriorityAcrossLevels) {
  StaticPriorityScheduler s(1.5e6, 12000, {0.1, 0.5});
  s.enqueue(0.0, make_packet(1, 50000, 0.5, 0.0));  // low priority
  s.enqueue(0.0, make_packet(2, 50000, 0.1, 0.0));  // high priority
  s.enqueue(0.0, make_packet(3, 50000, 0.5, 0.0));  // low again
  EXPECT_EQ(s.level_backlog(0), 1u);
  EXPECT_EQ(s.level_backlog(1), 2u);
  EXPECT_EQ(s.dequeue(0.0)->flow, 2);  // high level drains first
  EXPECT_EQ(s.dequeue(0.0)->flow, 1);  // then FIFO within the low level
  EXPECT_EQ(s.dequeue(0.0)->flow, 3);
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.dequeue(0.0).has_value());
}

TEST(StaticPriority, FifoWithinALevel) {
  StaticPriorityScheduler s(1.5e6, 12000, {0.1});
  for (int i = 1; i <= 5; ++i) {
    s.enqueue(0.0, make_packet(i, 50000, 0.1, 0.0));
  }
  for (int i = 1; i <= 5; ++i) {
    EXPECT_EQ(s.dequeue(0.0)->flow, i);
  }
}

TEST(StaticPriority, IsDelayBasedWithStandardErrorTerm) {
  StaticPriorityScheduler s(1.5e6, 12000, {0.1});
  EXPECT_EQ(s.kind(), SchedulerKind::kDelayBased);
  EXPECT_DOUBLE_EQ(s.error_term(), 0.008);
  EXPECT_STREQ(s.name(), "SP");
}

TEST(StaticPriority, Contracts) {
  EXPECT_THROW(StaticPriorityScheduler(1.5e6, 12000, {}), std::logic_error);
  EXPECT_THROW(StaticPriorityScheduler(1.5e6, 12000, {0.5, 0.1}),
               std::logic_error);
  StaticPriorityScheduler s(1.5e6, 12000, {0.1});
  EXPECT_THROW(s.level_backlog(7), std::logic_error);
}

}  // namespace
}  // namespace qosbb
