// Unit tests for traffic: token buckets, profiles, envelopes, and source
// conformance (every source must emit a sequence conforming to its own
// dual-token-bucket profile — the precondition of all VTRS bounds).

#include <gtest/gtest.h>

#include <memory>

#include "traffic/envelope.h"
#include "traffic/profile.h"
#include "traffic/source.h"
#include "traffic/token_bucket.h"
#include "util/rng.h"

namespace qosbb {
namespace {

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

TEST(TokenBucket, StartsFullAndDrains) {
  TokenBucket tb(10000, 1000);
  EXPECT_DOUBLE_EQ(tb.tokens_at(0.0), 10000.0);
  tb.consume(0.0, 4000);
  EXPECT_DOUBLE_EQ(tb.tokens_at(0.0), 6000.0);
  EXPECT_DOUBLE_EQ(tb.tokens_at(2.0), 8000.0);  // refilled at 1000/s
}

TEST(TokenBucket, CapsAtBurst) {
  TokenBucket tb(1000, 100);
  tb.consume(0.0, 1000);
  EXPECT_DOUBLE_EQ(tb.tokens_at(100.0), 1000.0);  // capped
}

TEST(TokenBucket, EarliestConform) {
  TokenBucket tb(1000, 100);
  tb.consume(0.0, 1000);
  // Needs 500 tokens: 5 seconds at 100/s.
  EXPECT_DOUBLE_EQ(tb.earliest_conform(0.0, 500), 5.0);
  EXPECT_DOUBLE_EQ(tb.earliest_conform(10.0, 500), 10.0);
}

TEST(TokenBucket, OversizedPacketIsContractViolation) {
  TokenBucket tb(1000, 100);
  EXPECT_THROW(tb.earliest_conform(0.0, 2000), std::logic_error);
}

TEST(TokenBucket, NonConformingConsumeIsContractViolation) {
  TokenBucket tb(1000, 100);
  tb.consume(0.0, 1000);
  EXPECT_THROW(tb.consume(0.0, 100), std::logic_error);
}

TEST(DualTokenBucket, PeakSpacingEnforced) {
  // (σ=60k, ρ=50k, P=100k, L=12k): back-to-back packets are peak-spaced at
  // L/P = 0.12 s until the σ bucket empties.
  DualTokenBucket dtb(60000, 50000, 100000, 12000);
  Seconds t = dtb.earliest_conform(0.0, 12000);
  EXPECT_DOUBLE_EQ(t, 0.0);
  dtb.consume(t, 12000);
  t = dtb.earliest_conform(t, 12000);
  EXPECT_DOUBLE_EQ(t, 0.12);
}

TEST(DualTokenBucket, SustainedRateLimitsLongRun) {
  DualTokenBucket dtb(60000, 50000, 100000, 12000);
  Seconds t = 0.0;
  double bits = 0.0;
  for (int i = 0; i < 200; ++i) {
    t = dtb.earliest_conform(t, 12000);
    dtb.consume(t, 12000);
    bits += 12000;
  }
  // Long-run rate must approach ρ from above: bits <= ρ·t + σ.
  EXPECT_LE(bits, 50000.0 * t + 60000.0 + 1e-6);
}

TEST(TrafficProfile, InvariantsEnforced) {
  EXPECT_THROW(TrafficProfile::make(1000, 100, 50, 1200), std::logic_error);
  EXPECT_THROW(TrafficProfile::make(100, 100, 200, 1200), std::logic_error);
  EXPECT_THROW(TrafficProfile::make(1000, 0, 200, 120), std::logic_error);
}

TEST(TrafficProfile, TOnMatchesPaper) {
  // Type 0: T_on = (60000−12000)/(100000−50000) = 0.96 s.
  EXPECT_DOUBLE_EQ(type0().t_on(), 0.96);
}

TEST(TrafficProfile, EdgeDelayBoundEq3) {
  // d_edge(ρ) = 0.96·(100k−50k)/50k + 12k/50k = 0.96 + 0.24 = 1.2 s.
  EXPECT_DOUBLE_EQ(type0().edge_delay_bound(50000), 1.2);
  // At the peak rate only the packet term remains.
  EXPECT_DOUBLE_EQ(type0().edge_delay_bound(100000), 0.12);
  EXPECT_THROW(type0().edge_delay_bound(10000), std::logic_error);
}

TEST(TrafficProfile, AggregationIsComponentWise) {
  auto agg = type0() + type0();
  EXPECT_DOUBLE_EQ(agg.sigma, 120000);
  EXPECT_DOUBLE_EQ(agg.rho, 100000);
  EXPECT_DOUBLE_EQ(agg.peak, 200000);
  EXPECT_DOUBLE_EQ(agg.l_max, 24000);
  // T_on is invariant under homogeneous aggregation.
  EXPECT_DOUBLE_EQ(agg.t_on(), type0().t_on());
  auto back = agg - type0();
  EXPECT_EQ(back, type0());
}

TEST(Envelope, WorstCaseDelayMatchesEdgeBound) {
  for (double r : {50000.0, 60000.0, 80000.0, 100000.0}) {
    EXPECT_NEAR(worst_case_delay(type0(), r), type0().edge_delay_bound(r),
                1e-12);
  }
}

TEST(Envelope, WorstCaseBacklog) {
  // At r = ρ: L + (P−ρ)·T_on = 12000 + 48000 = 60000 = σ.
  EXPECT_NEAR(worst_case_backlog(type0(), 50000), 60000, 1e-9);
  // At r = P: just one packet.
  EXPECT_NEAR(worst_case_backlog(type0(), 100000), 12000, 1e-9);
}

TEST(Envelope, BusyPeriod) {
  // σ/(r−ρ) with r = 60000: 60000/10000 = 6 s.
  EXPECT_NEAR(worst_case_busy_period(type0(), 60000), 6.0, 1e-9);
  EXPECT_THROW(worst_case_busy_period(type0(), 50000), std::logic_error);
}

// --- Source conformance: every source type must emit within its envelope.
class SourceConformance : public ::testing::TestWithParam<int> {};

std::unique_ptr<TrafficSource> make_source(int kind, TrafficProfile p) {
  switch (kind) {
    case 0: return std::make_unique<GreedySource>(p, 0.0);
    case 1: return std::make_unique<CbrSource>(p, 0.0);
    case 2:
      return std::make_unique<OnOffSource>(p, 0.0, 0.5, 0.5, Rng(42));
    case 3: return std::make_unique<PoissonSource>(p, 0.0, Rng(43));
  }
  return nullptr;
}

TEST_P(SourceConformance, CumulativeArrivalsWithinEnvelope) {
  const TrafficProfile p = type0();
  auto src = make_source(GetParam(), p);
  double bits = 0.0;
  Seconds prev = -1.0;
  for (int i = 0; i < 500; ++i) {
    auto a = src->next();
    ASSERT_TRUE(a.has_value());
    EXPECT_GE(a->time, prev);  // non-decreasing times
    prev = a->time;
    bits += a->size;
    // A(0, t] <= E(t) = min{Pt + L, ρt + σ} evaluated at the arrival time.
    const double env = std::min(p.peak * a->time + p.l_max,
                                p.rho * a->time + p.sigma);
    EXPECT_LE(bits, env + 1e-6) << "packet " << i << " at t=" << a->time;
  }
}

std::string source_kind_name(const ::testing::TestParamInfo<int>& info) {
  switch (info.param) {
    case 0: return "Greedy";
    case 1: return "Cbr";
    case 2: return "OnOff";
    default: return "Poisson";
  }
}

INSTANTIATE_TEST_SUITE_P(AllSources, SourceConformance,
                         ::testing::Values(0, 1, 2, 3), source_kind_name);

TEST(GreedySource, TracksEnvelopeTightly) {
  const TrafficProfile p = type0();
  GreedySource src(p, 0.0);
  // First packet at t=0; the burst is spaced at the peak rate.
  auto a0 = src.next();
  ASSERT_TRUE(a0);
  EXPECT_DOUBLE_EQ(a0->time, 0.0);
  auto a1 = src.next();
  EXPECT_DOUBLE_EQ(a1->time, 0.12);  // L/P
  // After the σ bucket drains (≈ T_on), spacing relaxes to L/ρ = 0.24.
  Seconds prev = a1->time;
  Seconds spacing = 0.0;
  for (int i = 0; i < 100; ++i) {
    auto a = src.next();
    spacing = a->time - prev;
    prev = a->time;
  }
  EXPECT_NEAR(spacing, 12000.0 / 50000.0, 1e-9);
}

TEST(BoundedSource, StopsAtCaps) {
  auto inner = std::make_unique<CbrSource>(type0(), 0.0);
  BoundedSource src(std::move(inner), 5, 1e9);
  int n = 0;
  while (src.next()) ++n;
  EXPECT_EQ(n, 5);

  auto inner2 = std::make_unique<CbrSource>(type0(), 0.0);
  BoundedSource src2(std::move(inner2), 1000000, 1.0);
  n = 0;
  while (src2.next()) ++n;
  // CBR spacing 0.24 s: arrivals at 0, 0.24, ..., <= 1.0 → 5 packets.
  EXPECT_EQ(n, 5);
}

}  // namespace
}  // namespace qosbb
