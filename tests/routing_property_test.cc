// Golden-model tests for the routing module: on random small digraphs,
// Dijkstra must match exhaustive search, and Yen's k-shortest list must be
// exactly the k cheapest simple paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "topo/graph.h"
#include "topo/routing.h"
#include "util/rng.h"

namespace qosbb {
namespace {

struct RandomGraph {
  Graph g;
  int nodes;
};

RandomGraph random_graph(Rng& rng) {
  RandomGraph out;
  out.nodes = static_cast<int>(rng.uniform_int(3, 7));
  for (int i = 0; i < out.nodes; ++i) {
    out.g.add_node("n" + std::to_string(i));
  }
  for (int u = 0; u < out.nodes; ++u) {
    for (int v = 0; v < out.nodes; ++v) {
      if (u != v && rng.bernoulli(0.45)) {
        out.g.add_edge(u, v, rng.uniform(1.0, 10.0));
      }
    }
  }
  return out;
}

double min_edge_weight(const Graph& g, NodeIndex u, NodeIndex v) {
  double best = std::numeric_limits<double>::infinity();
  for (EdgeIndex e : g.edges_from(u)) {
    if (g.edge(e).to == v) best = std::min(best, g.edge(e).weight);
  }
  return best;
}

double cost_of(const Graph& g, const std::vector<NodeIndex>& path) {
  double c = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    c += min_edge_weight(g, path[i], path[i + 1]);
  }
  return c;
}

/// All simple paths src -> dst by DFS (graphs are tiny).
void all_simple_paths(const Graph& g, NodeIndex at, NodeIndex dst,
                      std::vector<NodeIndex>& stack,
                      std::vector<bool>& used,
                      std::vector<std::vector<NodeIndex>>& out) {
  if (at == dst) {
    out.push_back(stack);
    return;
  }
  for (EdgeIndex e : g.edges_from(at)) {
    const NodeIndex next = g.edge(e).to;
    if (used[static_cast<std::size_t>(next)]) continue;
    used[static_cast<std::size_t>(next)] = true;
    stack.push_back(next);
    all_simple_paths(g, next, dst, stack, used, out);
    stack.pop_back();
    used[static_cast<std::size_t>(next)] = false;
  }
}

class RoutingGolden : public ::testing::TestWithParam<int> {};

TEST_P(RoutingGolden, DijkstraAndYenMatchBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131);
  const RandomGraph rg = random_graph(rng);
  const NodeIndex src = 0;
  const NodeIndex dst = rg.nodes - 1;

  std::vector<std::vector<NodeIndex>> brute;
  std::vector<NodeIndex> stack{src};
  std::vector<bool> used(static_cast<std::size_t>(rg.nodes), false);
  used[static_cast<std::size_t>(src)] = true;
  all_simple_paths(rg.g, src, dst, stack, used, brute);
  std::stable_sort(brute.begin(), brute.end(),
                   [&](const auto& a, const auto& b) {
                     return cost_of(rg.g, a) < cost_of(rg.g, b);
                   });

  auto shortest = shortest_path(rg.g, src, dst);
  if (brute.empty()) {
    EXPECT_FALSE(shortest.is_ok());
    EXPECT_TRUE(k_shortest_paths(rg.g, src, dst, 5).empty());
    return;
  }
  ASSERT_TRUE(shortest.is_ok());
  EXPECT_NEAR(cost_of(rg.g, shortest.value()), cost_of(rg.g, brute[0]),
              1e-9);

  const int k = 5;
  auto yen = k_shortest_paths(rg.g, src, dst, k);
  const std::size_t expect_n =
      std::min<std::size_t>(brute.size(), static_cast<std::size_t>(k));
  ASSERT_EQ(yen.size(), expect_n);
  for (std::size_t i = 0; i < yen.size(); ++i) {
    // Costs must match the i-th cheapest (paths may tie and differ).
    EXPECT_NEAR(cost_of(rg.g, yen[i]), cost_of(rg.g, brute[i]), 1e-9)
        << "rank " << i;
    // Every Yen path is simple.
    std::set<NodeIndex> uniq(yen[i].begin(), yen[i].end());
    EXPECT_EQ(uniq.size(), yen[i].size());
    // And costs are non-decreasing.
    if (i > 0) {
      EXPECT_GE(cost_of(rg.g, yen[i]), cost_of(rg.g, yen[i - 1]) - 1e-9);
    }
  }
  // No duplicates in the Yen list.
  std::set<std::vector<NodeIndex>> dedup(yen.begin(), yen.end());
  EXPECT_EQ(dedup.size(), yen.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingGolden, ::testing::Range(1, 31));

}  // namespace
}  // namespace qosbb
