// Tests for RSVP-style soft state: refresh keeps router state alive, a dead
// sender's state decays and frees resources, explicit teardown cancels
// timers, and the message overhead scales as h·T/R.

#include <gtest/gtest.h>

#include "gs/soft_state.h"
#include "topo/fig8.h"

namespace qosbb {
namespace {

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

RsvpSoftStateDomain::Options fast_options() {
  RsvpSoftStateDomain::Options opt;
  opt.refresh_period = 1.0;
  opt.lifetime_refreshes = 3;
  opt.jitter = 0.0;  // deterministic timing for the assertions below
  return opt;
}

TEST(SoftState, RefreshKeepsStateAlive) {
  EventQueue events;
  RsvpSoftStateDomain rsvp(fig8_gs_topology(Fig8Setting::kRateBasedOnly),
                           events, fast_options(), 1);
  auto res = rsvp.reserve(fig8_path_s1(), type0(), 2.44);
  ASSERT_TRUE(res.admitted);
  events.run_until(50.0);
  EXPECT_TRUE(rsvp.alive(res.flow));
  EXPECT_EQ(rsvp.expired_flows(), 0u);
  EXPECT_NEAR(rsvp.domain().router_state("R2->R3").reserved(), 50000, 1e-6);
  // ~50 refreshes × 5 hops.
  EXPECT_NEAR(static_cast<double>(rsvp.refresh_messages()), 50.0 * 5.0, 10.0);
}

TEST(SoftState, DeadSenderStateDecays) {
  EventQueue events;
  RsvpSoftStateDomain rsvp(fig8_gs_topology(Fig8Setting::kRateBasedOnly),
                           events, fast_options(), 1);
  auto res = rsvp.reserve(fig8_path_s1(), type0(), 2.44);
  ASSERT_TRUE(res.admitted);
  events.schedule(10.0, [&] { rsvp.stop_refreshing(res.flow); });
  events.run_until(10.0 + 1.5);  // within the 3 s lifetime
  EXPECT_TRUE(rsvp.alive(res.flow));
  events.run_until(10.0 + 5.0);  // past it
  EXPECT_FALSE(rsvp.alive(res.flow));
  EXPECT_EQ(rsvp.expired_flows(), 1u);
  // Router resources reclaimed without any teardown message.
  EXPECT_DOUBLE_EQ(rsvp.domain().router_state("R2->R3").reserved(), 0.0);
}

TEST(SoftState, ExplicitTeardownCancelsTimers) {
  EventQueue events;
  RsvpSoftStateDomain rsvp(fig8_gs_topology(Fig8Setting::kRateBasedOnly),
                           events, fast_options(), 1);
  auto res = rsvp.reserve(fig8_path_s1(), type0(), 2.44);
  ASSERT_TRUE(res.admitted);
  events.run_until(5.0);
  ASSERT_TRUE(rsvp.release(res.flow).is_ok());
  EXPECT_FALSE(rsvp.alive(res.flow));
  const std::uint64_t msgs = rsvp.refresh_messages();
  events.run_until(100.0);  // stale timers must all be no-ops
  EXPECT_EQ(rsvp.refresh_messages(), msgs);
  EXPECT_EQ(rsvp.expired_flows(), 0u);
  EXPECT_FALSE(rsvp.release(res.flow).is_ok());
}

TEST(SoftState, OverheadScalesWithFlowsAndInverseRefreshPeriod) {
  auto run = [](double period, int flows) {
    EventQueue events;
    RsvpSoftStateDomain::Options opt;
    opt.refresh_period = period;
    opt.lifetime_refreshes = 3;
    opt.jitter = 0.0;
    RsvpSoftStateDomain rsvp(fig8_gs_topology(Fig8Setting::kRateBasedOnly),
                             events, opt, 1);
    for (int i = 0; i < flows; ++i) {
      auto res = rsvp.reserve(fig8_path_s1(), type0(), 2.44);
      EXPECT_TRUE(res.admitted);
    }
    events.run_until(100.0);
    return rsvp.refresh_messages();
  };
  const auto base = run(2.0, 10);
  EXPECT_NEAR(static_cast<double>(run(1.0, 10)),
              2.0 * static_cast<double>(base),
              0.1 * static_cast<double>(base));
  EXPECT_NEAR(static_cast<double>(run(2.0, 20)),
              2.0 * static_cast<double>(base),
              0.1 * static_cast<double>(base));
}

TEST(SoftState, JitterDesynchronizesButKeepsAlive) {
  EventQueue events;
  RsvpSoftStateDomain::Options opt;
  opt.refresh_period = 1.0;
  opt.lifetime_refreshes = 3;
  opt.jitter = 0.5;
  RsvpSoftStateDomain rsvp(fig8_gs_topology(Fig8Setting::kRateBasedOnly),
                           events, opt, 42);
  std::vector<FlowId> flows;
  for (int i = 0; i < 10; ++i) {
    auto res = rsvp.reserve(fig8_path_s1(), type0(), 2.44);
    ASSERT_TRUE(res.admitted);
    flows.push_back(res.flow);
  }
  events.run_until(60.0);
  for (FlowId f : flows) EXPECT_TRUE(rsvp.alive(f));
  EXPECT_EQ(rsvp.expired_flows(), 0u);
}

TEST(SoftState, OptionContracts) {
  EventQueue events;
  RsvpSoftStateDomain::Options bad;
  bad.refresh_period = 0.0;
  EXPECT_THROW(RsvpSoftStateDomain(
                   fig8_gs_topology(Fig8Setting::kRateBasedOnly), events,
                   bad, 1),
               std::logic_error);
}

}  // namespace
}  // namespace qosbb
