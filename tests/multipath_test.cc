// Tests for k-shortest-path routing (Yen) and the broker's multipath
// admission: widest-residual path selection and alternate-route fallback.

#include <gtest/gtest.h>

#include "core/broker.h"
#include "topo/fig8.h"
#include "topo/routing.h"

namespace qosbb {
namespace {

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

/// I -> E via a 2-hop upper route (I,A,E) and a 3-hop lower route
/// (I,B1,B2,E). All links 1.5 Mb/s C̸SVC.
DomainSpec two_route_spec() {
  DomainSpec spec;
  spec.nodes = {"I", "A", "B1", "B2", "E"};
  spec.l_max = 12000.0;
  auto add = [&](const char* f, const char* t) {
    spec.links.push_back(LinkSpec{f, t, 1.5e6, 0.0, SchedPolicy::kCsvc,
                                  std::numeric_limits<double>::infinity()});
  };
  add("I", "A");
  add("A", "E");
  add("I", "B1");
  add("B1", "B2");
  add("B2", "E");
  return spec;
}

TEST(KShortest, OrdersByCost) {
  const Graph g = two_route_spec().to_graph();
  auto paths = k_shortest_paths(g, "I", "E", 5);
  ASSERT_EQ(paths.size(), 2u);  // only two simple paths exist
  EXPECT_EQ(paths[0], (std::vector<std::string>{"I", "A", "E"}));
  EXPECT_EQ(paths[1], (std::vector<std::string>{"I", "B1", "B2", "E"}));
}

TEST(KShortest, KOneIsPlainShortest) {
  const Graph g = two_route_spec().to_graph();
  auto paths = k_shortest_paths(g, "I", "E", 1);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].size(), 3u);
}

TEST(KShortest, UnreachableGivesEmpty) {
  Graph g;
  g.add_node("X");
  g.add_node("Y");
  EXPECT_TRUE(k_shortest_paths(g, "X", "Y", 3).empty());
}

TEST(KShortest, Fig8HasSinglePathPerPair) {
  const Graph g = fig8_topology(Fig8Setting::kMixed).to_graph();
  EXPECT_EQ(k_shortest_paths(g, "I1", "E1", 4).size(), 1u);
}

TEST(KShortest, DiamondWithParallelCosts) {
  Graph g;
  for (const char* n : {"s", "a", "b", "t"}) g.add_node(n);
  g.add_edge("s", "a", 1.0);
  g.add_edge("a", "t", 1.0);
  g.add_edge("s", "b", 1.0);
  g.add_edge("b", "t", 2.0);
  g.add_edge("s", "t", 5.0);
  auto paths = k_shortest_paths(g, "s", "t", 10);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0], (std::vector<std::string>{"s", "a", "t"}));  // cost 2
  EXPECT_EQ(paths[1], (std::vector<std::string>{"s", "b", "t"}));  // cost 3
  EXPECT_EQ(paths[2], (std::vector<std::string>{"s", "t"}));       // cost 5
}

TEST(MultipathBroker, FallbackDoublesCapacity) {
  // Min-hop only: 30 mean-rate flows. With the alternate route as an
  // admission fallback the domain carries 60.
  BrokerOptions opts;
  opts.k_paths = 2;
  BandwidthBroker bb(two_route_spec(), opts);
  FlowServiceRequest req{type0(), 2.44, "I", "E"};
  int admitted = 0;
  while (bb.request_service(req).is_ok()) ++admitted;
  EXPECT_EQ(admitted, 60);
  EXPECT_NEAR(bb.nodes().link("A->E").reserved(), 1.5e6, 1e-6);
  EXPECT_NEAR(bb.nodes().link("B2->E").reserved(), 1.5e6, 1e-6);
}

TEST(MultipathBroker, SingleCandidateKeepsPaperBehavior) {
  BandwidthBroker bb(two_route_spec());  // defaults: k_paths = 1
  FlowServiceRequest req{type0(), 2.44, "I", "E"};
  int admitted = 0;
  while (bb.request_service(req).is_ok()) ++admitted;
  EXPECT_EQ(admitted, 30);
  EXPECT_DOUBLE_EQ(bb.nodes().link("B1->B2").reserved(), 0.0);
}

TEST(MultipathBroker, WidestResidualBalances) {
  BrokerOptions opts;
  opts.k_paths = 2;
  opts.path_selection = PathSelection::kWidestResidual;
  BandwidthBroker bb(two_route_spec(), opts);
  FlowServiceRequest req{type0(), 3.0, "I", "E"};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(bb.request_service(req).is_ok());
  }
  // Load spreads: neither route carries everything.
  const double upper = bb.nodes().link("A->E").reserved();
  const double lower = bb.nodes().link("B2->E").reserved();
  EXPECT_GT(upper, 0.0);
  EXPECT_GT(lower, 0.0);
  EXPECT_NEAR(upper + lower, 10 * 50000.0, 1e-6);
  // Balanced to within one flow's rate.
  EXPECT_LE(std::abs(upper - lower), 50000.0 + 1e-6);
}

TEST(MultipathBroker, LongerRouteNeedsHigherRate) {
  // The 3-hop fallback has a higher D_tot and one more packet term, so the
  // same delay requirement costs a higher reserved rate there.
  BrokerOptions opts;
  opts.k_paths = 2;
  opts.path_selection = PathSelection::kWidestResidual;
  BandwidthBroker bb(two_route_spec(), opts);
  // D = 1.0 s: tight enough that the minimal rate sits above ρ on both
  // routes (67.9 kb/s on 2 hops, 74.4 kb/s on 3).
  FlowServiceRequest req{type0(), 1.0, "I", "E"};
  auto a = bb.request_service(req);  // widest: both empty -> 2-hop route
  ASSERT_TRUE(a.is_ok());
  auto b = bb.request_service(req);  // now the 3-hop route is widest
  ASSERT_TRUE(b.is_ok());
  EXPECT_GT(b.value().params.rate, a.value().params.rate);
  EXPECT_LE(b.value().e2e_bound, 1.0 + 1e-9);
}

TEST(MultipathBroker, CandidatePathsOrderedByResidual) {
  BrokerOptions opts;
  opts.k_paths = 2;
  opts.path_selection = PathSelection::kWidestResidual;
  BandwidthBroker bb(two_route_spec(), opts);
  auto ids = bb.candidate_paths("I", "E");
  ASSERT_TRUE(ids.is_ok());
  ASSERT_EQ(ids.value().size(), 2u);
  // Equal residual: fewer hops first.
  EXPECT_EQ(bb.paths().record(ids.value()[0]).hop_count(), 2);
  // Load the short route; ordering flips.
  ASSERT_TRUE(bb.nodes().link("A->E").reserve(1.0e6).is_ok());
  ids = bb.candidate_paths("I", "E");
  EXPECT_EQ(bb.paths().record(ids.value()[0]).hop_count(), 3);
}

}  // namespace
}  // namespace qosbb
