// Tests for the Section-3 path-oriented admission algorithms, anchored to
// the analytically derivable numbers of the paper's evaluation (Section 5):
//   * rate-only path, D = 2.44 → r = ρ = 50 kb/s, 30 flows fill 1.5 Mb/s
//   * rate-only path, D = 2.19 → r = 168000/3.11 ≈ 54.02 kb/s, 27 flows
//   * mixed path: the Figure-4 scan returns the minimal feasible rate.

#include <gtest/gtest.h>

#include "core/broker.h"
#include "core/perflow_admission.h"
#include "topo/fig8.h"

namespace qosbb {
namespace {

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

class RateOnlyPath : public ::testing::Test {
 protected:
  RateOnlyPath()
      : bb_(fig8_topology(Fig8Setting::kRateBasedOnly)),
        path_(bb_.provision_path("I1", "E1").value()) {}

  BandwidthBroker bb_;
  PathId path_;
};

TEST_F(RateOnlyPath, LooseBoundAdmitsAtMeanRate) {
  auto out = admit_rate_only(bb_.path_view(path_), type0(), 2.44);
  ASSERT_TRUE(out.admitted);
  EXPECT_NEAR(out.params.rate, 50000, 1e-6);
  EXPECT_DOUBLE_EQ(out.params.delay, 0.0);
  EXPECT_NEAR(out.e2e_bound, 2.44, 1e-9);
}

TEST_F(RateOnlyPath, TightBoundNeedsMoreThanMean) {
  auto out = admit_rate_only(bb_.path_view(path_), type0(), 2.19);
  ASSERT_TRUE(out.admitted);
  EXPECT_NEAR(out.params.rate, 168000.0 / 3.11, 1e-6);
  EXPECT_LE(out.e2e_bound, 2.19 + 1e-9);
}

TEST_F(RateOnlyPath, ImpossibleBoundRejectedAsInfeasible) {
  auto out = admit_rate_only(bb_.path_view(path_), type0(), 0.1);
  EXPECT_FALSE(out.admitted);
  EXPECT_EQ(out.reason, RejectReason::kNoFeasibleRate);
}

TEST_F(RateOnlyPath, DispatcherPicksRateOnly) {
  auto out = admit_per_flow(bb_.path_view(path_), type0(), 2.44);
  EXPECT_TRUE(out.admitted);
}

TEST_F(RateOnlyPath, ResidualBandwidthGates) {
  // Fill the path with 29 mean-rate flows through the broker, then the
  // admissibility range collapses once residual < ρ.
  FlowServiceRequest req{type0(), 2.44, "I1", "E1"};
  for (int i = 0; i < 29; ++i) {
    ASSERT_TRUE(bb_.request_service(req).is_ok()) << "flow " << i;
  }
  auto out = admit_rate_only(bb_.path_view(path_), type0(), 2.44);
  EXPECT_TRUE(out.admitted);  // flow 30 fits exactly: 30·50k = 1.5M
  ASSERT_TRUE(bb_.request_service(req).is_ok());
  auto out31 = admit_rate_only(bb_.path_view(path_), type0(), 2.44);
  EXPECT_FALSE(out31.admitted);
  EXPECT_EQ(out31.reason, RejectReason::kInsufficientBandwidth);
}

class MixedPath : public ::testing::Test {
 protected:
  MixedPath()
      : bb_(fig8_topology(Fig8Setting::kMixed)),
        path_(bb_.provision_path("I1", "E1").value()) {}

  BandwidthBroker bb_;
  PathId path_;
};

TEST_F(MixedPath, FirstFlowGetsMeanRateAndMaximalDelay) {
  // t^ν = (2.19 − 0.04 + 0.96)/2 = 1.555; Ξ = (0.96·100k + 4·12k)/2 = 72000.
  // At r = ρ = 50 kb/s, d = t − Ξ/r = 0.115 — feasible on an empty path.
  auto out = admit_mixed(bb_.path_view(path_), type0(), 2.19);
  ASSERT_TRUE(out.admitted) << out.detail;
  EXPECT_NEAR(out.params.rate, 50000, 1e-3);
  EXPECT_NEAR(out.params.delay, 1.555 - 72000.0 / 50000.0, 1e-6);
  EXPECT_LE(out.e2e_bound, 2.19 + 1e-9);
}

TEST_F(MixedPath, E2eBoundTightAtReturnedPair) {
  auto out = admit_mixed(bb_.path_view(path_), type0(), 2.19);
  ASSERT_TRUE(out.admitted);
  const PathAbstract& pa = bb_.paths().record(path_).abstract;
  EXPECT_NEAR(e2e_delay_bound(pa, type0(), out.params.rate, out.params.delay,
                              12000),
              out.e2e_bound, 1e-12);
}

TEST_F(MixedPath, RatesNeverDecreaseAsPathFills) {
  // The minimal feasible rate is non-decreasing in the load (Theorem 1's
  // monotonicity); and every admitted pair passes the exact EDF check.
  FlowServiceRequest req{type0(), 2.19, "I1", "E1"};
  double prev_rate = 0.0;
  int admitted = 0;
  while (true) {
    auto res = bb_.request_service(req);
    if (!res.is_ok()) break;
    ++admitted;
    EXPECT_GE(res.value().params.rate, prev_rate - 1e-6);
    prev_rate = res.value().params.rate;
    ASSERT_LT(admitted, 40) << "runaway admission";
  }
  // Paper (Table 2, mixed, 2.19): 27 flows for per-flow BB/VTRS.
  EXPECT_EQ(admitted, 27);
}

TEST_F(MixedPath, DelayParamRespectsOwnDeadlineConstraint) {
  // Even with a huge delay budget the assigned d must keep L <= R_i(d):
  // on an empty link that means d >= L/C = 0.008.
  auto out = admit_mixed(bb_.path_view(path_), type0(), 10.0);
  ASSERT_TRUE(out.admitted);
  EXPECT_GE(out.params.delay, 0.008 - 1e-12);
}

TEST_F(MixedPath, UnattainableBoundRejected) {
  auto out = admit_mixed(bb_.path_view(path_), type0(), 0.03);
  EXPECT_FALSE(out.admitted);
  EXPECT_EQ(out.reason, RejectReason::kNoFeasibleRate);
}

TEST_F(MixedPath, ScanVisitsAtMostMPlusOneIntervals) {
  FlowServiceRequest req{type0(), 2.19, "I1", "E1"};
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(bb_.request_service(req).is_ok());
  auto out = admit_mixed(bb_.path_view(path_), type0(), 2.19);
  ASSERT_TRUE(out.admitted);
  // <= M+1 where M = number of distinct delay values.
  int distinct = 0;
  for (const LinkQosState* l : bb_.path_view(path_).edf_links) {
    distinct = std::max(distinct,
                        static_cast<int>(l->edf_buckets().size()));
  }
  EXPECT_LE(out.intervals_scanned, distinct + 1);
}

TEST_F(MixedPath, AdmittedPairsSurviveExactEdfAudit) {
  // Property: after any admission sequence, every delay-based link's knot
  // conditions hold with zero headroom violations.
  FlowServiceRequest req{type0(), 2.19, "I1", "E1"};
  while (bb_.request_service(req).is_ok()) {
  }
  for (const auto& ln : bb_.paths().record(path_).link_names) {
    const LinkQosState& link = bb_.nodes().link(ln);
    if (!link.delay_based()) continue;
    for (const auto& [d, s] : link.residual_service_at_knots()) {
      EXPECT_GE(s, -1e-6) << "knot " << d << " oversubscribed on " << ln;
    }
    EXPECT_LE(link.reserved(), link.capacity() + 1e-6);
  }
}

TEST(MixedPathS2, WorksWithThreeDelayHops) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kMixed));
  const PathId path = bb.provision_path("I2", "E2").value();
  ASSERT_EQ(bb.paths().record(path).rate_based_count(), 2);
  auto out = admit_mixed(bb.path_view(path), type0(), 2.19);
  ASSERT_TRUE(out.admitted) << out.detail;
  // h−q = 3: t^ν = 3.11/3, Ξ = (0.96·100k + 3·12k)/3 = 44000.
  EXPECT_NEAR(out.params.delay,
              3.11 / 3.0 - 44000.0 / out.params.rate, 1e-6);
}

// Table 1's loose delay bounds are calibrated so each type's minimal rate
// is EXACTLY its mean rate on the 5-hop rate-based path — the fill count is
// C/ρ for every type. (Analytic: r_min = [T_on·P + 6L]/[D − 0.04 + T_on].)
struct TypeCase {
  int type;
  double mean_rate;
  int expect_admitted;
};

class PerTypeCapacity : public ::testing::TestWithParam<TypeCase> {};

TEST_P(PerTypeCapacity, LooseBoundAdmitsAtMeanRate) {
  const TypeCase& tc = GetParam();
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly));
  const TrafficProfile profiles[] = {
      TrafficProfile::make(60000, 50000, 100000, 12000),
      TrafficProfile::make(48000, 40000, 100000, 12000),
      TrafficProfile::make(36000, 30000, 100000, 12000),
      TrafficProfile::make(24000, 20000, 100000, 12000),
  };
  const double loose[] = {2.44, 2.74, 3.24, 4.24};
  FlowServiceRequest req{profiles[tc.type], loose[tc.type], "I1", "E1"};
  int n = 0;
  while (true) {
    auto res = bb.request_service(req);
    if (!res.is_ok()) break;
    EXPECT_NEAR(res.value().params.rate, tc.mean_rate, 1e-3) << "flow " << n;
    ++n;
  }
  EXPECT_EQ(n, tc.expect_admitted);
}

INSTANTIATE_TEST_SUITE_P(
    Table1Types, PerTypeCapacity,
    ::testing::Values(TypeCase{0, 50000, 30}, TypeCase{1, 40000, 37},
                      TypeCase{2, 30000, 50}, TypeCase{3, 20000, 75}),
    [](const auto& info) {
      return "Type" + std::to_string(info.param.type);
    });

TEST(AdmissionContracts, ViewMustMatchAlgorithm) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kMixed));
  const PathId path = bb.provision_path("I1", "E1").value();
  EXPECT_THROW(admit_rate_only(bb.path_view(path), type0(), 2.44),
               std::logic_error);
}

}  // namespace
}  // namespace qosbb
