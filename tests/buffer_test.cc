// Buffer dimensioning tests: the node MIB's buffer capacity (Section 2.2
// lists it explicitly) participates in admission — per-hop backlog bounds
// are reserved per flow/macroflow and returned in full on teardown.

#include <gtest/gtest.h>

#include <cmath>

#include "core/broker.h"
#include "gs/gs_admission.h"
#include "topo/fig8.h"
#include "vtrs/delay_bounds.h"

namespace qosbb {
namespace {

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

DomainSpec finite_buffer_spec(Bits buffer, Fig8Setting setting =
                                               Fig8Setting::kRateBasedOnly) {
  DomainSpec spec = fig8_topology(setting);
  for (auto& l : spec.links) l.buffer = buffer;
  return spec;
}

TEST(BufferBound, RateBasedFormula) {
  // 2L + r·Ψ: 24000 + 50000·0.008 = 24400 bits.
  EXPECT_NEAR(per_hop_buffer_bound(SchedulerKind::kRateBased, 50000, 0.0,
                                   12000, 0.008),
              24400, 1e-9);
}

TEST(BufferBound, DelayBasedFormula) {
  // L + r·(d + Ψ): 12000 + 50000·0.108 = 17400 bits.
  EXPECT_NEAR(per_hop_buffer_bound(SchedulerKind::kDelayBased, 50000, 0.1,
                                   12000, 0.008),
              17400, 1e-9);
}

TEST(LinkBuffer, ReserveReleaseAndContracts) {
  NodeMib mib(finite_buffer_spec(100000));
  LinkQosState& l = mib.link("I1->R2");
  EXPECT_DOUBLE_EQ(l.buffer_capacity(), 100000);
  EXPECT_TRUE(l.reserve_buffer(60000).is_ok());
  EXPECT_DOUBLE_EQ(l.buffer_residual(), 40000);
  EXPECT_FALSE(l.reserve_buffer(50000).is_ok());
  EXPECT_DOUBLE_EQ(l.buffer_reserved(), 60000);
  l.release_buffer(60000);
  EXPECT_DOUBLE_EQ(l.buffer_reserved(), 0.0);
  EXPECT_THROW(l.release_buffer(1.0), std::logic_error);
}

TEST(LinkBuffer, InfiniteByDefault) {
  NodeMib mib(fig8_topology(Fig8Setting::kRateBasedOnly));
  LinkQosState& l = mib.link("I1->R2");
  EXPECT_TRUE(l.reserve_buffer(1e12).is_ok());
  EXPECT_TRUE(std::isinf(l.buffer_residual()));
}

TEST(BufferAdmission, PerFlowRejectsWhenBufferTight) {
  // Each type-0 flow at mean rate needs 24400 bits per hop; 3 flows fit in
  // a 75,000-bit buffer, the 4th does not (bandwidth would allow 30).
  BandwidthBroker bb(finite_buffer_spec(75000));
  FlowServiceRequest req{type0(), 2.44, "I1", "E1"};
  ASSERT_TRUE(bb.request_service(req).is_ok());
  ASSERT_TRUE(bb.request_service(req).is_ok());
  ASSERT_TRUE(bb.request_service(req).is_ok());
  auto fourth = bb.request_service(req);
  EXPECT_FALSE(fourth.is_ok());
  EXPECT_EQ(bb.last_outcome().reason, RejectReason::kInsufficientBuffer);
  // Bandwidth is NOT the binding constraint.
  EXPECT_GT(bb.nodes().link("I1->R2").residual(), 50000);
}

TEST(BufferAdmission, ReleaseRestoresBufferExactly) {
  BandwidthBroker bb(finite_buffer_spec(75000, Fig8Setting::kMixed));
  std::vector<FlowId> live;
  FlowServiceRequest req{type0(), 2.19, "I1", "E1"};
  while (true) {
    auto res = bb.request_service(req);
    if (!res.is_ok()) break;
    live.push_back(res.value().flow);
  }
  ASSERT_FALSE(live.empty());
  for (FlowId f : live) ASSERT_TRUE(bb.release_service(f).is_ok());
  for (const auto& spec_link : bb.spec().links) {
    const auto& link =
        bb.nodes().link(spec_link.from + "->" + spec_link.to);
    EXPECT_NEAR(link.buffer_reserved(), 0.0, 1e-6) << link.name();
  }
}

TEST(BufferAdmission, ClassBasedReservesOffsetPlusSlope) {
  BandwidthBroker bb(finite_buffer_spec(200000),
                     BrokerOptions{ContingencyMethod::kFeedback});
  const ClassId cls = bb.define_class(2.44, 0.0);
  auto j = bb.request_class_service(cls, type0(), "I1", "E1", 0.0, 0.0);
  ASSERT_TRUE(j.admitted) << j.detail;
  // Rate-based hop: offset 2L + slope Ψ·alloc = 24000 + 0.008·50000.
  EXPECT_NEAR(bb.nodes().link("I1->R2").buffer_reserved(),
              24000 + 0.008 * 50000, 1e-6);
  auto l = bb.leave_class_service(j.microflow, 10.0, 0.0);
  ASSERT_TRUE(l.is_ok());
  EXPECT_TRUE(l.value().macroflow_removed);
  EXPECT_NEAR(bb.nodes().link("I1->R2").buffer_reserved(), 0.0, 1e-6);
}

TEST(BufferAdmission, ClassBasedChurnReturnsAllBuffer) {
  BandwidthBroker bb(finite_buffer_spec(5e6, Fig8Setting::kMixed),
                     BrokerOptions{ContingencyMethod::kBounding});
  const ClassId cls = bb.define_class(2.19, 0.10);
  std::vector<FlowId> live;
  std::vector<std::pair<GrantId, Seconds>> timers;
  Seconds now = 0.0;
  for (int round = 0; round < 30; ++round) {
    now += 5.0;
    if (round % 3 == 2 && !live.empty()) {
      auto l = bb.leave_class_service(live.back(), now, 10000.0);
      ASSERT_TRUE(l.is_ok());
      live.pop_back();
      if (l.value().grant != kInvalidGrantId) {
        timers.emplace_back(l.value().grant,
                            l.value().contingency_expires_at);
      }
    } else {
      auto j = bb.request_class_service(cls, type0(), "I1", "E1", now);
      if (!j.admitted) continue;
      live.push_back(j.microflow);
      if (j.grant != kInvalidGrantId) {
        timers.emplace_back(j.grant, j.contingency_expires_at);
      }
    }
  }
  now += 1e6;
  for (auto [g, t] : timers) bb.expire_contingency(g, t);
  for (FlowId f : live) {
    auto l = bb.leave_class_service(f, now, 0.0);
    ASSERT_TRUE(l.is_ok());
    if (l.value().grant != kInvalidGrantId) {
      bb.expire_contingency(l.value().grant,
                            l.value().contingency_expires_at);
    }
  }
  for (const auto& spec_link : bb.spec().links) {
    const auto& link = bb.nodes().link(spec_link.from + "->" + spec_link.to);
    EXPECT_NEAR(link.buffer_reserved(), 0.0, 1e-3) << link.name();
    EXPECT_NEAR(link.reserved(), 0.0, 1e-3) << link.name();
  }
  EXPECT_EQ(bb.classes().macroflow_count(), 0u);
}

TEST(BufferAdmission, GsAlsoGatesOnBuffers) {
  DomainSpec spec = fig8_gs_topology(Fig8Setting::kRateBasedOnly);
  for (auto& l : spec.links) l.buffer = 75000;
  GsAdmissionControl gs(spec);
  FlowServiceRequest req{type0(), 2.44, "I1", "E1"};
  int admitted = 0;
  GsReservationResult last;
  while (true) {
    last = gs.request_service(req);
    if (!last.admitted) break;
    ++admitted;
  }
  EXPECT_EQ(admitted, 3);  // same 24400-bit bound per hop as the BB
  EXPECT_EQ(last.reason, RejectReason::kInsufficientBuffer);
  // Partial reservation fully rolled back, including buffers.
  EXPECT_NEAR(gs.domain().router_state("R5->E1").buffer_reserved(),
              3 * 24400.0, 1e-6);
}

}  // namespace
}  // namespace qosbb
