// Tests for the signaling wire format: round trips, header validation, and
// hardening against truncated / corrupted / hostile frames (every decode
// failure must be a Status, never UB or an exception).

#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "core/wire.h"
#include "traffic/profile.h"
#include "util/rng.h"

namespace qosbb {
namespace {

FlowServiceRequest sample_request() {
  FlowServiceRequest req;
  req.profile = TrafficProfile::make(60000, 50000, 100000, 12000);
  req.e2e_delay_req = 2.44;
  req.ingress = "I1";
  req.egress = "E1";
  return req;
}

TEST(Wire, RequestRoundTrip) {
  const FlowServiceRequest in = sample_request();
  auto buf = encode(in);
  auto out = decode_flow_service_request(buf);
  ASSERT_TRUE(out.is_ok()) << out.status().to_string();
  EXPECT_EQ(out.value().profile, in.profile);
  EXPECT_DOUBLE_EQ(out.value().e2e_delay_req, 2.44);
  EXPECT_EQ(out.value().ingress, "I1");
  EXPECT_EQ(out.value().egress, "E1");
}

TEST(Wire, ReservationRoundTrip) {
  Reservation in;
  in.flow = 42;
  in.path = 7;
  in.params = RateDelayPair{54019.3, 0.115};
  in.e2e_bound = 2.19;
  auto out = decode_reservation(encode(in));
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value().flow, 42);
  EXPECT_EQ(out.value().path, 7);
  EXPECT_DOUBLE_EQ(out.value().params.rate, 54019.3);
  EXPECT_DOUBLE_EQ(out.value().params.delay, 0.115);
  EXPECT_DOUBLE_EQ(out.value().e2e_bound, 2.19);
}

TEST(Wire, RejectAndTeardownRoundTrip) {
  RejectReply rej{RejectReason::kInsufficientBandwidth, "link R2->R3 full"};
  auto r = decode_reject_reply(encode(rej));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().reason, RejectReason::kInsufficientBandwidth);
  EXPECT_EQ(r.value().detail, "link R2->R3 full");

  auto t = decode_teardown_request(encode(TeardownRequest{99}));
  ASSERT_TRUE(t.is_ok());
  EXPECT_EQ(t.value().flow, 99);

  EdgeConditionerConfig cfg{5, 50000.0, 0.1};
  auto c = decode_edge_conditioner_config(encode(cfg));
  ASSERT_TRUE(c.is_ok());
  EXPECT_DOUBLE_EQ(c.value().rate, 50000.0);
}

TEST(Wire, PeekTypeIdentifiesFrames) {
  EXPECT_EQ(peek_type(encode(sample_request())).value(),
            MessageType::kFlowServiceRequest);
  EXPECT_EQ(peek_type(encode(TeardownRequest{1})).value(),
            MessageType::kTeardownRequest);
  EXPECT_FALSE(peek_type(WireBuffer{1, 2, 3}).is_ok());
}

TEST(Wire, EveryTruncationIsAGracefulError) {
  // Chop the frame at every possible length: each must fail cleanly.
  const auto full = encode(sample_request());
  for (std::size_t n = 0; n < full.size(); ++n) {
    WireBuffer cut(full.begin(), full.begin() + static_cast<long>(n));
    auto out = decode_flow_service_request(cut);
    EXPECT_FALSE(out.is_ok()) << "length " << n << " decoded successfully";
    EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(Wire, SingleByteCorruptionNeverCrashes) {
  // Flip every byte (all 8 bits at once) — decode must return either a
  // clean error or a VALID request; it must never throw.
  const auto full = encode(sample_request());
  int survived = 0;
  for (std::size_t i = 0; i < full.size(); ++i) {
    WireBuffer mutated = full;
    mutated[i] ^= 0xff;
    auto out = decode_flow_service_request(mutated);
    if (out.is_ok()) ++survived;
  }
  // Corrupting the magic/version/type/length must certainly fail.
  WireBuffer bad_magic = full;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(decode_flow_service_request(bad_magic).is_ok());
  // Most corruptions of float payloads fail validation; a few may survive
  // as different-but-valid profiles, which is fine for a checksum-free
  // format. The property under test is "no crash".
  SUCCEED() << survived << " mutations decoded as valid alternates";
}

TEST(Wire, WrongTypeRejected) {
  auto buf = encode(TeardownRequest{1});
  EXPECT_FALSE(decode_flow_service_request(buf).is_ok());
}

TEST(Wire, TrailingGarbageRejected) {
  auto buf = encode(sample_request());
  buf.push_back(0x00);
  // Header length no longer matches the frame size.
  EXPECT_FALSE(decode_flow_service_request(buf).is_ok());
}

TEST(Wire, HostileProfileRejected) {
  // σ < L and P < ρ must not reach TrafficProfile::make (which throws).
  FlowServiceRequest req = sample_request();
  auto buf = encode(req);
  // Patch sigma (first f64 of the body at offset 8) to 1.0.
  double tiny = 1.0;
  std::memcpy(buf.data() + 8, &tiny, sizeof(tiny));
  auto out = decode_flow_service_request(buf);
  EXPECT_FALSE(out.is_ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(Wire, NonFiniteFloatsRejected) {
  auto buf = encode(sample_request());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(buf.data() + 8, &nan, sizeof(nan));
  EXPECT_FALSE(decode_flow_service_request(buf).is_ok());
  const double inf = std::numeric_limits<double>::infinity();
  std::memcpy(buf.data() + 8, &inf, sizeof(inf));
  EXPECT_FALSE(decode_flow_service_request(buf).is_ok());
}

TEST(Wire, NegativeRateRejected) {
  Reservation res;
  res.flow = 1;
  res.path = 0;
  res.params = RateDelayPair{50000.0, 0.0};
  res.e2e_bound = 1.0;
  auto buf = encode(res);
  const double neg = -5.0;
  // rate is the third body field: 8 (header) + 16 (two i64).
  std::memcpy(buf.data() + 8 + 16, &neg, sizeof(neg));
  EXPECT_FALSE(decode_reservation(buf).is_ok());
}

TEST(Wire, LongStringsTruncatedNotOverflowed) {
  FlowServiceRequest req = sample_request();
  req.ingress = std::string(1000, 'x');
  auto buf = encode(req);
  auto out = decode_flow_service_request(buf);
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value().ingress.size(), 255u);
}

TEST(Wire, ReaderPrimitivesRoundTrip) {
  WireWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.14159);
  w.str("hello");
  WireBuffer buf = w.take();
  WireReader r(buf);
  EXPECT_EQ(r.u8().value(), 0xab);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.u64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64().value(), -42);
  EXPECT_DOUBLE_EQ(r.f64().value(), 3.14159);
  EXPECT_EQ(r.str().value(), "hello");
  EXPECT_TRUE(r.exhausted());
  EXPECT_FALSE(r.u8().is_ok());  // reading past the end is a clean error
}

TEST(Wire, ReaderTruncationHasDistinctCode) {
  // Every primitive read past the end of the buffer must report
  // kTruncated — journal recovery relies on this code to classify an
  // incomplete final record as a clean end of log.
  const WireBuffer empty;
  EXPECT_EQ(WireReader(empty).u8().status().code(), StatusCode::kTruncated);
  EXPECT_EQ(WireReader(empty).u16().status().code(), StatusCode::kTruncated);
  EXPECT_EQ(WireReader(empty).u32().status().code(), StatusCode::kTruncated);
  EXPECT_EQ(WireReader(empty).u64().status().code(), StatusCode::kTruncated);
  EXPECT_EQ(WireReader(empty).i64().status().code(), StatusCode::kTruncated);
  EXPECT_EQ(WireReader(empty).f64().status().code(), StatusCode::kTruncated);
  EXPECT_EQ(WireReader(empty).str().status().code(), StatusCode::kTruncated);
  // Partial fixed-width field: 4 bytes present, 8 wanted.
  WireWriter w;
  w.u32(7);
  const WireBuffer four = w.take();
  EXPECT_EQ(WireReader(four).u64().status().code(), StatusCode::kTruncated);
  // A string whose length prefix promises more bytes than remain is also a
  // truncation (the prefix may simply sit at the write frontier).
  WireWriter ws;
  ws.u8(10);
  ws.u8('x');
  const WireBuffer short_str = ws.take();
  EXPECT_EQ(WireReader(short_str).str().status().code(),
            StatusCode::kTruncated);
}

TEST(Wire, CorruptionIsNotReportedAsTruncation) {
  // Structurally invalid content inside a complete buffer must stay
  // kInvalidArgument — recovery treats it as corruption, not clean EOF.
  WireWriter w;
  std::uint64_t nan_bits = 0x7ff8000000000000ULL;
  w.u64(nan_bits);
  const WireBuffer buf = w.take();
  auto f = WireReader(buf).f64();
  EXPECT_FALSE(f.is_ok());
  EXPECT_EQ(f.status().code(), StatusCode::kInvalidArgument);
}

// ---- Streaming mode (Mode::kStreaming): a reader over a growing stream
// prefix reports short reads as kNeedMoreData, never kTruncated, and a
// failed read never advances the cursor — so the caller can re-decode from
// the same position once more bytes arrive.

TEST(WireStreaming, ShortReadIsNeedMoreDataAtEverySplitPoint) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.str("hello");
  w.bytes(WireBuffer{1, 2, 3, 4});
  const WireBuffer full = w.take();

  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const WireBuffer prefix(full.begin(),
                            full.begin() + static_cast<long>(cut));
    WireReader r(prefix, WireReader::Mode::kStreaming);
    // Drive the exact field sequence; the first read past `cut` must be
    // kNeedMoreData with the cursor left where that field began.
    bool starved = false;
    auto note_starved = [&](const Status& s) {
      if (!s.is_ok()) {
        EXPECT_EQ(s.code(), StatusCode::kNeedMoreData)
            << "cut=" << cut << ": " << s.to_string();
        starved = true;
      }
    };
    const std::size_t pos_before_u8 = r.position();
    if (!starved) note_starved(r.u8().status());
    if (starved) {
      EXPECT_EQ(r.position(), pos_before_u8);
      continue;
    }
    if (!starved) note_starved(r.u16().status());
    if (!starved) note_starved(r.u32().status());
    if (!starved) note_starved(r.u64().status());
    const std::size_t pos_before_str = r.position();
    if (!starved) {
      auto s = r.str();
      note_starved(s.status());
      if (starved) {
        // The length prefix was un-read too: retrying later re-decodes the
        // whole field, not just its tail.
        EXPECT_EQ(r.position(), pos_before_str) << "cut=" << cut;
      }
    }
    const std::size_t pos_before_bytes = r.position();
    if (!starved) {
      auto b = r.bytes();
      note_starved(b.status());
      if (starved) {
        EXPECT_EQ(r.position(), pos_before_bytes) << "cut=" << cut;
      }
    }
    EXPECT_TRUE(starved) << "cut=" << cut << " should starve some field";
  }

  // The complete buffer decodes fully in streaming mode too.
  WireReader r(full, WireReader::Mode::kStreaming);
  EXPECT_EQ(r.u8().value(), 0xAB);
  EXPECT_EQ(r.u16().value(), 0xBEEF);
  EXPECT_EQ(r.u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.str().value(), "hello");
  EXPECT_EQ(r.bytes().value(), (WireBuffer{1, 2, 3, 4}));
  EXPECT_TRUE(r.exhausted());
}

TEST(WireStreaming, CompleteModeStillReportsTruncated) {
  WireWriter w;
  w.u32(7);
  WireBuffer buf = w.take();
  buf.pop_back();
  EXPECT_EQ(WireReader(buf).u32().status().code(), StatusCode::kTruncated);
  EXPECT_EQ(WireReader(buf, WireReader::Mode::kStreaming).u32().status().code(),
            StatusCode::kNeedMoreData);
}

TEST(WireStreaming, RetryAfterGrowthSucceeds) {
  // Simulate a stream: decode fails with kNeedMoreData on the prefix, then
  // succeeds from the same position on the grown buffer.
  WireWriter w;
  w.str("bandwidth-broker");
  const WireBuffer full = w.take();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    WireBuffer grow(full.begin(), full.begin() + static_cast<long>(cut));
    WireReader r(grow, WireReader::Mode::kStreaming);
    auto first = r.str();
    ASSERT_FALSE(first.is_ok());
    ASSERT_EQ(first.status().code(), StatusCode::kNeedMoreData);
    ASSERT_EQ(r.position(), 0u);
    grow.insert(grow.end(), full.begin() + static_cast<long>(cut), full.end());
    WireReader r2(grow, WireReader::Mode::kStreaming);
    EXPECT_EQ(r2.str().value(), "bandwidth-broker");
  }
}

// ---- Overload-control and probe messages ----

TEST(Wire, RequestIdCarriedOnAdmitAndTeardown) {
  const FlowServiceRequest in = sample_request();
  const auto buf = encode(in, /*rid=*/0x123456789abcdefULL);
  RequestId rid = kNoRequestId;
  auto out = decode_flow_service_request(buf, &rid);
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(rid, 0x123456789abcdefULL);
  EXPECT_EQ(out.value().profile, in.profile);
  // Omitting the rid encodes the no-rid sentinel, not garbage.
  rid = 77;
  ASSERT_TRUE(decode_flow_service_request(encode(in), &rid).is_ok());
  EXPECT_EQ(rid, kNoRequestId);

  auto tear = decode_teardown_request(encode(TeardownRequest{99, 4242}));
  ASSERT_TRUE(tear.is_ok());
  EXPECT_EQ(tear.value().flow, 99u);
  EXPECT_EQ(tear.value().rid, 4242u);
}

TEST(Wire, OverloadedReplyRoundTrip) {
  OverloadedReply in;
  in.reason = ShedReason::kDeadline;
  in.retry_after_ms = 125;
  in.detail = "queued 312ms > 100ms deadline";
  auto out = decode_overloaded_reply(encode(in));
  ASSERT_TRUE(out.is_ok()) << out.status().to_string();
  EXPECT_EQ(out.value().reason, ShedReason::kDeadline);
  EXPECT_EQ(out.value().retry_after_ms, 125u);
  EXPECT_EQ(out.value().detail, in.detail);
}

TEST(Wire, OverloadedReplyRejectsUnknownShedReason) {
  auto buf = encode(OverloadedReply{ShedReason::kBrownout, 10, "x"});
  // The reason byte sits right after the 8-byte header; forge a value past
  // the enum range and the decoder must refuse, not cast blindly.
  buf[8] = 0xEE;
  EXPECT_FALSE(decode_overloaded_reply(buf).is_ok());
}

TEST(Wire, HealthRoundTrip) {
  ASSERT_TRUE(decode_health_request(encode(HealthRequest{})).is_ok());
  HealthReply in;
  in.inflight = 12;
  in.connections = 3;
  in.admits = 1000;
  in.rejects = 17;
  in.shed_global = 1;
  in.shed_conn = 2;
  in.shed_deadline = 3;
  in.shed_brownout = 4;
  in.reaped_partial = 5;
  in.reaped_idle = 6;
  in.journal_lsn = 991;
  in.dedup_entries = 128;
  in.live_flows = 983;
  in.brownout_active = 1;
  auto out = decode_health_reply(encode(in));
  ASSERT_TRUE(out.is_ok()) << out.status().to_string();
  EXPECT_EQ(out.value().inflight, 12u);
  EXPECT_EQ(out.value().connections, 3u);
  EXPECT_EQ(out.value().admits, 1000u);
  EXPECT_EQ(out.value().rejects, 17u);
  EXPECT_EQ(out.value().shed_global, 1u);
  EXPECT_EQ(out.value().shed_conn, 2u);
  EXPECT_EQ(out.value().shed_deadline, 3u);
  EXPECT_EQ(out.value().shed_brownout, 4u);
  EXPECT_EQ(out.value().reaped_partial, 5u);
  EXPECT_EQ(out.value().reaped_idle, 6u);
  EXPECT_EQ(out.value().journal_lsn, 991u);
  EXPECT_EQ(out.value().dedup_entries, 128u);
  EXPECT_EQ(out.value().live_flows, 983u);
  EXPECT_EQ(out.value().brownout_active, 1u);
}

TEST(Wire, SnapshotDigestRoundTrip) {
  ASSERT_TRUE(
      decode_snapshot_digest_request(encode(SnapshotDigestRequest{})).is_ok());
  SnapshotDigestReply in;
  in.digest = 0xdeadbeef;
  in.journal_lsn = 321;
  auto out = decode_snapshot_digest_reply(encode(in));
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value().digest, 0xdeadbeefu);
  EXPECT_EQ(out.value().journal_lsn, 321u);
}

TEST(Wire, ShedReasonNamesAreStable) {
  EXPECT_STREQ(shed_reason_name(ShedReason::kGlobalBudget), "global-budget");
  EXPECT_STREQ(shed_reason_name(ShedReason::kConnBudget), "conn-budget");
  EXPECT_STREQ(shed_reason_name(ShedReason::kDeadline), "deadline");
  EXPECT_STREQ(shed_reason_name(ShedReason::kBrownout), "brownout");
}

TEST(Wire, FuzzRandomBuffersNeverCrash) {
  Rng rng(2026);
  for (int i = 0; i < 2000; ++i) {
    WireBuffer buf(static_cast<std::size_t>(rng.uniform_int(0, 64)));
    for (auto& b : buf) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    // Must not throw or crash on arbitrary input; whether a given random
    // buffer happens to decode is irrelevant, but consume every status.
    int decoded = 0;
    decoded += peek_type(buf).status().is_ok();
    decoded += decode_flow_service_request(buf).status().is_ok();
    decoded += decode_reservation(buf).status().is_ok();
    decoded += decode_reject_reply(buf).status().is_ok();
    decoded += decode_edge_conditioner_config(buf).status().is_ok();
    decoded += decode_teardown_request(buf).status().is_ok();
    decoded += decode_overloaded_reply(buf).status().is_ok();
    decoded += decode_health_request(buf).status().is_ok();
    decoded += decode_health_reply(buf).status().is_ok();
    decoded += decode_snapshot_digest_request(buf).status().is_ok();
    decoded += decode_snapshot_digest_reply(buf).status().is_ok();
    decoded += decode_prepare_segment(buf).status().is_ok();
    decoded += decode_prepare_reply(buf).status().is_ok();
    decoded += decode_commit_segment(buf).status().is_ok();
    decoded += decode_abort_segment(buf).status().is_ok();
    decoded += decode_segment_ack(buf).status().is_ok();
    decoded += decode_federated_digest_request(buf).status().is_ok();
    decoded += decode_federated_digest_reply(buf).status().is_ok();
    EXPECT_GE(decoded, 0);
  }
  SUCCEED();
}

// ---- Federation 2PC messages (ops 12..18) ----

PrepareSegment sample_prepare() {
  PrepareSegment prep;
  prep.txn = 77;
  prep.rid_segment = 101;
  prep.rid_contingency = 102;
  prep.ingress = "D0I1";
  prep.egress = "D1L";
  prep.rate = 123456.25;
  prep.l_max = 12000;
  prep.contingency_rate = 9876.5;
  prep.boundary_from = "D0R";
  prep.boundary_to = "D1L";
  return prep;
}

TEST(Wire, PrepareSegmentRoundTrip) {
  const PrepareSegment in = sample_prepare();
  auto out = decode_prepare_segment(encode(in));
  ASSERT_TRUE(out.is_ok()) << out.status().to_string();
  EXPECT_EQ(out.value().txn, in.txn);
  EXPECT_EQ(out.value().rid_segment, in.rid_segment);
  EXPECT_EQ(out.value().rid_contingency, in.rid_contingency);
  EXPECT_EQ(out.value().ingress, in.ingress);
  EXPECT_EQ(out.value().egress, in.egress);
  EXPECT_DOUBLE_EQ(out.value().rate, in.rate);
  EXPECT_DOUBLE_EQ(out.value().l_max, in.l_max);
  EXPECT_DOUBLE_EQ(out.value().contingency_rate, in.contingency_rate);
  EXPECT_EQ(out.value().boundary_from, in.boundary_from);
  EXPECT_EQ(out.value().boundary_to, in.boundary_to);
}

TEST(Wire, PrepareReplyRoundTripBothOutcomes) {
  PrepareReply held;
  held.txn = 77;
  held.prepared = true;
  held.segment_flow = 5;
  held.contingency_flow = 6;
  auto out = decode_prepare_reply(encode(held));
  ASSERT_TRUE(out.is_ok()) << out.status().to_string();
  EXPECT_TRUE(out.value().prepared);
  EXPECT_EQ(out.value().segment_flow, 5);
  EXPECT_EQ(out.value().contingency_flow, 6);

  PrepareReply refused;
  refused.txn = 78;
  refused.prepared = false;
  refused.reason = RejectReason::kInsufficientBandwidth;
  refused.detail = "bottleneck full";
  out = decode_prepare_reply(encode(refused));
  ASSERT_TRUE(out.is_ok()) << out.status().to_string();
  EXPECT_FALSE(out.value().prepared);
  EXPECT_EQ(out.value().reason, RejectReason::kInsufficientBandwidth);
  EXPECT_EQ(out.value().detail, "bottleneck full");
  EXPECT_EQ(out.value().segment_flow, kInvalidFlowId);
}

TEST(Wire, CommitAbortAckRoundTrip) {
  CommitSegment commit;
  commit.txn = 9;
  commit.rid = 200;
  commit.contingency_flow = 31;
  auto c = decode_commit_segment(encode(commit));
  ASSERT_TRUE(c.is_ok()) << c.status().to_string();
  EXPECT_EQ(c.value().txn, 9u);
  EXPECT_EQ(c.value().rid, 200u);
  EXPECT_EQ(c.value().contingency_flow, 31);

  AbortSegment abort;
  abort.txn = 9;
  abort.rid_segment = 201;
  abort.rid_contingency = 202;
  abort.segment_flow = 30;
  abort.contingency_flow = kInvalidFlowId;
  auto a = decode_abort_segment(encode(abort));
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  EXPECT_EQ(a.value().segment_flow, 30);
  EXPECT_EQ(a.value().contingency_flow, kInvalidFlowId);

  SegmentAck ack;
  ack.txn = 9;
  ack.ok = false;
  ack.detail = "contingency: not found";
  auto k = decode_segment_ack(encode(ack));
  ASSERT_TRUE(k.is_ok()) << k.status().to_string();
  EXPECT_EQ(k.value().txn, 9u);
  EXPECT_FALSE(k.value().ok);
  EXPECT_EQ(k.value().detail, "contingency: not found");
}

TEST(Wire, FederatedDigestRoundTrip) {
  auto req = decode_federated_digest_request(encode(FederatedDigestRequest{}));
  ASSERT_TRUE(req.is_ok()) << req.status().to_string();

  FederatedDigestReply reply;
  reply.digest = 0xdeadbeef;
  reply.live_flows = 12;
  reply.journal_lsn = 345;
  auto out = decode_federated_digest_reply(encode(reply));
  ASSERT_TRUE(out.is_ok()) << out.status().to_string();
  EXPECT_EQ(out.value().digest, 0xdeadbeefu);
  EXPECT_EQ(out.value().live_flows, 12u);
  EXPECT_EQ(out.value().journal_lsn, 345u);
}

TEST(Wire, FederationFramesSurviveTruncationAndTypeConfusion) {
  const auto full = encode(sample_prepare());
  EXPECT_EQ(peek_type(full).value(), MessageType::kPrepareSegment);
  for (std::size_t n = 0; n < full.size(); ++n) {
    WireBuffer cut(full.begin(), full.begin() + static_cast<long>(n));
    auto out = decode_prepare_segment(cut);
    EXPECT_FALSE(out.is_ok()) << "length " << n << " decoded successfully";
  }
  // A prepare frame must not decode as any other federation message.
  EXPECT_FALSE(decode_commit_segment(full).is_ok());
  EXPECT_FALSE(decode_abort_segment(full).is_ok());
  EXPECT_FALSE(decode_segment_ack(full).is_ok());
  EXPECT_FALSE(decode_federated_digest_reply(full).is_ok());
}

}  // namespace
}  // namespace qosbb
