// Tests for the BandwidthBroker facade: the two-phase admission pipeline,
// policy gating, bookkeeping consistency, teardown, stats.

#include <gtest/gtest.h>

#include "core/broker.h"
#include "topo/fig8.h"

namespace qosbb {
namespace {

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

FlowServiceRequest req_s1(Seconds bound = 2.44) {
  return FlowServiceRequest{type0(), bound, "I1", "E1"};
}

TEST(Broker, ProvisionPathIsIdempotentAndRouted) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly));
  auto p1 = bb.provision_path("I1", "E1");
  ASSERT_TRUE(p1.is_ok());
  auto p2 = bb.provision_path("I1", "E1");
  ASSERT_TRUE(p2.is_ok());
  EXPECT_EQ(p1.value(), p2.value());
  EXPECT_EQ(bb.paths().record(p1.value()).nodes, fig8_path_s1());
  auto bad = bb.provision_path("E1", "I2");
  EXPECT_FALSE(bad.is_ok());
}

TEST(Broker, AdmissionReservesOnEveryLinkOfPath) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly));
  auto res = bb.request_service(req_s1());
  ASSERT_TRUE(res.is_ok());
  for (const char* ln : {"I1->R2", "R2->R3", "R3->R4", "R4->R5", "R5->E1"}) {
    EXPECT_NEAR(bb.nodes().link(ln).reserved(), res.value().params.rate, 1e-9)
        << ln;
    EXPECT_EQ(bb.nodes().link(ln).flow_count(), 1u) << ln;
  }
  // Off-path link untouched.
  EXPECT_DOUBLE_EQ(bb.nodes().link("I2->R2").reserved(), 0.0);
  EXPECT_DOUBLE_EQ(bb.nodes().link("R5->E2").reserved(), 0.0);
}

TEST(Broker, ReleaseRestoresAllState) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kMixed));
  auto res = bb.request_service(req_s1(2.19));
  ASSERT_TRUE(res.is_ok());
  ASSERT_TRUE(bb.release_service(res.value().flow).is_ok());
  for (const char* ln : {"I1->R2", "R2->R3", "R3->R4", "R4->R5", "R5->E1"}) {
    EXPECT_DOUBLE_EQ(bb.nodes().link(ln).reserved(), 0.0) << ln;
    EXPECT_EQ(bb.nodes().link(ln).flow_count(), 0u) << ln;
  }
  EXPECT_TRUE(bb.nodes().link("R3->R4").edf_buckets().empty());
  EXPECT_EQ(bb.flows().count(), 0u);
  // Double release reports not-found.
  EXPECT_EQ(bb.release_service(res.value().flow).code(),
            StatusCode::kNotFound);
}

TEST(Broker, AdmitReleaseChurnIsLossless) {
  // Property: any admit/release sequence that ends empty leaves zero
  // reservations everywhere.
  BandwidthBroker bb(fig8_topology(Fig8Setting::kMixed));
  std::vector<FlowId> live;
  for (int round = 0; round < 50; ++round) {
    if (round % 3 == 2 && !live.empty()) {
      ASSERT_TRUE(bb.release_service(live.back()).is_ok());
      live.pop_back();
    } else {
      auto res = bb.request_service(req_s1(2.19));
      if (res.is_ok()) live.push_back(res.value().flow);
    }
  }
  for (FlowId f : live) ASSERT_TRUE(bb.release_service(f).is_ok());
  EXPECT_DOUBLE_EQ(bb.nodes().total_reserved(), 0.0);
  EXPECT_TRUE(bb.nodes().link("R3->R4").edf_buckets().empty());
}

TEST(Broker, PolicyRejectsBeforeAdmission) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly));
  PolicyRule rule;
  rule.max_flows = 2;
  bb.policy().set_ingress_rule("I1", rule);
  ASSERT_TRUE(bb.request_service(req_s1()).is_ok());
  ASSERT_TRUE(bb.request_service(req_s1()).is_ok());
  auto third = bb.request_service(req_s1());
  EXPECT_FALSE(third.is_ok());
  EXPECT_EQ(bb.last_outcome().reason, RejectReason::kPolicy);
  // Other ingresses unaffected.
  EXPECT_TRUE(bb.request_service({type0(), 2.44, "I2", "E2"}).is_ok());
}

TEST(Broker, PolicyDenyAndCaps) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly));
  PolicyRule deny;
  deny.deny = true;
  bb.policy().set_ingress_rule("I2", deny);
  EXPECT_FALSE(bb.request_service({type0(), 2.44, "I2", "E2"}).is_ok());
  bb.policy().clear_ingress_rule("I2");
  EXPECT_TRUE(bb.request_service({type0(), 2.44, "I2", "E2"}).is_ok());

  PolicyRule caps;
  caps.max_peak_rate = 50000;  // below type-0 peak
  bb.policy().set_default_rule(caps);
  EXPECT_FALSE(bb.request_service(req_s1()).is_ok());
  PolicyRule delay_floor;
  delay_floor.min_delay_req = 3.0;
  bb.policy().set_default_rule(delay_floor);
  EXPECT_FALSE(bb.request_service(req_s1(2.44)).is_ok());
  EXPECT_TRUE(bb.request_service(req_s1(3.5)).is_ok());
}

TEST(Broker, StatsCountReasons) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly));
  while (bb.request_service(req_s1()).is_ok()) {
  }
  const BrokerStats& st = bb.stats();
  EXPECT_EQ(st.admitted, 30u);
  EXPECT_EQ(st.requests, 31u);
  EXPECT_EQ(st.total_rejected(), 1u);
  EXPECT_EQ(st.rejected.at(RejectReason::kInsufficientBandwidth), 1u);
  EXPECT_NEAR(st.blocking_rate(), 1.0 / 31.0, 1e-12);
}

TEST(Broker, UnknownEndpointIsNoPath) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly));
  auto res = bb.request_service({type0(), 2.44, "I1", "nowhere"});
  EXPECT_FALSE(res.is_ok());
  EXPECT_EQ(bb.last_outcome().reason, RejectReason::kNoPath);
}

TEST(Broker, TwoPathsContendOnSharedLinks) {
  // S1 and S2 share R2->R3->R4->R5: totals add up on shared links only.
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly));
  int admitted = 0;
  for (int i = 0; i < 40; ++i) {
    const bool s1 = (i % 2 == 0);
    auto res = bb.request_service(
        {type0(), 2.44, s1 ? "I1" : "I2", s1 ? "E1" : "E2"});
    if (res.is_ok()) ++admitted;
  }
  // The shared 1.5 Mb/s core still caps the total at 30 mean-rate flows.
  EXPECT_EQ(admitted, 30);
  EXPECT_NEAR(bb.nodes().link("R2->R3").reserved(), 1.5e6, 1e-6);
  EXPECT_NEAR(bb.nodes().link("I1->R2").reserved(), 15 * 50000.0, 1e-6);
}

TEST(Broker, MicroflowReleaseViaWrongApiIsContractViolation) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly));
  const ClassId cls = bb.define_class(2.44, 0.0);
  auto join = bb.request_class_service(cls, type0(), "I1", "E1", 0.0, 0.0);
  ASSERT_TRUE(join.admitted);
  EXPECT_THROW((void)bb.release_service(join.microflow), std::logic_error);
}

}  // namespace
}  // namespace qosbb
