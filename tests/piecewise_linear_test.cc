// Unit tests for the piecewise-linear algebra underpinning envelopes and the
// fluid edge model.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/piecewise_linear.h"

namespace qosbb {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(PiecewiseLinear, AffineEvaluation) {
  auto f = PiecewiseLinear::affine(3.0, 2.0);
  EXPECT_DOUBLE_EQ(f(0.0), 3.0);
  EXPECT_DOUBLE_EQ(f(5.0), 13.0);
}

TEST(PiecewiseLinear, FromPointsEvaluation) {
  auto f = PiecewiseLinear::from_points({{0.0, 0.0}, {2.0, 4.0}}, 1.0);
  EXPECT_DOUBLE_EQ(f(1.0), 2.0);   // slope 2 on [0,2]
  EXPECT_DOUBLE_EQ(f(2.0), 4.0);
  EXPECT_DOUBLE_EQ(f(4.0), 6.0);   // final slope 1
}

TEST(PiecewiseLinear, FromPointsValidatesInput) {
  EXPECT_THROW(PiecewiseLinear::from_points({}, 0.0), std::logic_error);
  EXPECT_THROW(PiecewiseLinear::from_points({{1.0, 0.0}}, 0.0),
               std::logic_error);
  EXPECT_THROW(
      PiecewiseLinear::from_points({{0.0, 0.0}, {0.0, 1.0}}, 0.0),
      std::logic_error);
}

TEST(PiecewiseLinear, DualTokenBucketKnee) {
  // E(t) = min{Pt + L, ρt + σ} with P=100k, ρ=50k, L=12k, σ=60k:
  // knee at T_on = 48000/50000 = 0.96.
  auto e = PiecewiseLinear::dual_token_bucket(60000, 50000, 100000, 12000);
  EXPECT_DOUBLE_EQ(e(0.0), 12000.0);
  EXPECT_DOUBLE_EQ(e(0.96), 12000.0 + 100000.0 * 0.96);
  EXPECT_DOUBLE_EQ(e(2.0), 50000.0 * 2.0 + 60000.0);
  EXPECT_DOUBLE_EQ(e.final_slope(), 50000.0);
}

TEST(PiecewiseLinear, DualTokenBucketDegenerate) {
  // P == ρ: single line.
  auto e = PiecewiseLinear::dual_token_bucket(60000, 50000, 50000, 12000);
  EXPECT_DOUBLE_EQ(e(1.0), 12000.0 + 50000.0);
}

TEST(PiecewiseLinear, Addition) {
  auto a = PiecewiseLinear::affine(1.0, 1.0);
  auto b = PiecewiseLinear::from_points({{0.0, 0.0}, {1.0, 2.0}}, 0.0);
  auto c = a + b;
  EXPECT_DOUBLE_EQ(c(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c(1.0), 4.0);
  EXPECT_DOUBLE_EQ(c(2.0), 5.0);
}

TEST(PiecewiseLinear, Subtraction) {
  auto a = PiecewiseLinear::affine(5.0, 3.0);
  auto b = PiecewiseLinear::affine(1.0, 1.0);
  auto c = a - b;
  EXPECT_DOUBLE_EQ(c(0.0), 4.0);
  EXPECT_DOUBLE_EQ(c(10.0), 24.0);
}

TEST(PiecewiseLinear, MinFindsCrossing) {
  auto a = PiecewiseLinear::affine(0.0, 2.0);   // 2t
  auto b = PiecewiseLinear::affine(3.0, 1.0);   // t + 3, crosses at t=3
  auto m = PiecewiseLinear::min(a, b);
  EXPECT_DOUBLE_EQ(m(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m(3.0), 6.0);
  EXPECT_DOUBLE_EQ(m(10.0), 13.0);
  EXPECT_DOUBLE_EQ(m.final_slope(), 1.0);
}

TEST(PiecewiseLinear, MaxMirrorsMin) {
  auto a = PiecewiseLinear::affine(0.0, 2.0);
  auto b = PiecewiseLinear::affine(3.0, 1.0);
  auto m = PiecewiseLinear::max(a, b);
  EXPECT_DOUBLE_EQ(m(0.0), 3.0);
  EXPECT_DOUBLE_EQ(m(10.0), 20.0);
}

TEST(PiecewiseLinear, SupOnInterval) {
  auto f = PiecewiseLinear::from_points({{0.0, 0.0}, {1.0, 5.0}, {2.0, 1.0}},
                                        0.0);
  EXPECT_DOUBLE_EQ(f.sup(0.0, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(f.sup(1.5, 2.0), f(1.5));
  EXPECT_DOUBLE_EQ(f.sup(0.0, kInf), 5.0);
}

TEST(PiecewiseLinear, SupUnboundedWhenGrowing) {
  auto f = PiecewiseLinear::affine(0.0, 1.0);
  EXPECT_TRUE(std::isinf(f.sup(0.0, kInf)));
}

TEST(PiecewiseLinear, FirstNonpositive) {
  // Starts at 4, decreases with slope −2: crosses zero at t=2.
  auto f = PiecewiseLinear::affine(4.0, -2.0);
  EXPECT_DOUBLE_EQ(f.first_nonpositive(0.0), 2.0);
  EXPECT_DOUBLE_EQ(f.first_nonpositive(3.0), 3.0);  // already non-positive
}

TEST(PiecewiseLinear, FirstNonpositiveNeverCrossing) {
  auto f = PiecewiseLinear::affine(1.0, 0.5);
  EXPECT_TRUE(std::isinf(f.first_nonpositive(0.0)));
}

TEST(PiecewiseLinear, BacklogOfEnvelopeMinusService) {
  // Worst-case backlog sup[E(t) − r t] for the Table-1 type-0 profile at
  // r = ρ: attained at the knee, E(T_on) − ρ·T_on = 12000 + 48000·0.96 ≈
  // 12000 + (P−ρ)·T_on = 60000.
  auto e = PiecewiseLinear::dual_token_bucket(60000, 50000, 100000, 12000);
  auto f = e - PiecewiseLinear::affine(0.0, 50000.0);
  EXPECT_NEAR(f.sup(0.0, kInf), 12000.0 + 50000.0 * 0.96, 1e-6);
}

}  // namespace
}  // namespace qosbb
