// Tests for the flow-level simulator: workload generation, the fluid edge
// model, and the qualitative Figure-10 ordering of blocking rates.

#include <gtest/gtest.h>

#include <sstream>

#include "flowsim/blocking.h"
#include "flowsim/flow_sim.h"
#include "flowsim/fluid_edge.h"
#include "flowsim/workload.h"

namespace qosbb {
namespace {

TEST(Workload, Table1ProfilesMatchPaper) {
  const TrafficProfile t0 = paper_traffic_type(0);
  EXPECT_DOUBLE_EQ(t0.sigma, 60000);
  EXPECT_DOUBLE_EQ(t0.rho, 50000);
  EXPECT_DOUBLE_EQ(t0.peak, 100000);
  EXPECT_DOUBLE_EQ(t0.l_max, 12000);
  EXPECT_DOUBLE_EQ(paper_traffic_type(3).rho, 20000);
  EXPECT_DOUBLE_EQ(paper_delay_loose(0), 2.44);
  EXPECT_DOUBLE_EQ(paper_delay_tight(0), 2.19);
  EXPECT_DOUBLE_EQ(paper_delay_loose(3), 4.24);
  EXPECT_THROW(paper_traffic_type(4), std::logic_error);
}

TEST(Workload, GeneratorIsSortedAndSeeded) {
  WorkloadConfig cfg;
  cfg.arrival_rate_per_source = 0.1;
  cfg.horizon = 2000;
  Rng r1(42), r2(42);
  auto w1 = generate_workload(cfg, r1);
  auto w2 = generate_workload(cfg, r2);
  ASSERT_FALSE(w1.empty());
  ASSERT_EQ(w1.size(), w2.size());
  for (std::size_t i = 1; i < w1.size(); ++i) {
    EXPECT_LE(w1[i - 1].arrival, w1[i].arrival);
  }
  for (std::size_t i = 0; i < w1.size(); ++i) {
    EXPECT_DOUBLE_EQ(w1[i].arrival, w2[i].arrival);
    EXPECT_EQ(w1[i].type, w2[i].type);
  }
  // Roughly λ·T·sources arrivals.
  EXPECT_NEAR(static_cast<double>(w1.size()), 0.1 * 2000 * 2, 60);
}

TEST(Workload, CsvRoundTrip) {
  WorkloadConfig cfg;
  cfg.arrival_rate_per_source = 0.1;
  cfg.horizon = 500;
  Rng rng(3);
  const auto original = generate_workload(cfg, rng);
  ASSERT_FALSE(original.empty());
  std::stringstream buf;
  save_workload_csv(original, buf);
  auto loaded = load_workload_csv(buf);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  ASSERT_EQ(loaded.value().size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(loaded.value()[i].arrival, original[i].arrival, 1e-4);
    EXPECT_NEAR(loaded.value()[i].holding, original[i].holding, 1e-4);
    EXPECT_EQ(loaded.value()[i].type, original[i].type);
    EXPECT_EQ(loaded.value()[i].source, original[i].source);
  }
}

TEST(Workload, CsvRejectsMalformedInput) {
  auto check_bad = [](const std::string& text) {
    std::istringstream is(text);
    EXPECT_FALSE(load_workload_csv(is).is_ok()) << text;
  };
  check_bad("");                                      // no header
  check_bad("wrong,header\n");
  check_bad("arrival,holding,type,source\n1.0,2.0\n");       // short line
  check_bad("arrival,holding,type,source\n1.0,2.0,9,0\n");   // bad type
  check_bad("arrival,holding,type,source\n5,1,0,0\n2,1,0,0\n");  // unsorted
  check_bad("arrival,holding,type,source\n1.0,-2.0,0,0\n");  // neg holding
  // Empty body is a valid empty workload.
  std::istringstream ok("arrival,holding,type,source\n");
  EXPECT_TRUE(load_workload_csv(ok).is_ok());
}

TEST(Workload, OfferedLoadNormalization) {
  std::vector<FlowArrival> w = {{0.0, 100.0, 0, 0}};  // ρ=50k for 100 s
  // 50k·100 / (1000 · 1.5e6) = 1/300.
  EXPECT_NEAR(offered_load(w, 1000.0, 1.5e6), 5e6 / 1.5e9, 1e-12);
}

TEST(FluidEdge, BacklogGrowsAtPeakMinusService) {
  EventQueue events;
  FluidMacroflowQueue q(events, Rng(1));
  q.set_service_rate(50000);
  events.schedule(0.0, [&] {
    q.add_microflow(1, paper_traffic_type(0));  // ON at peak 100k
  });
  events.run_until(0.0);
  // Peek shortly after: net +50 kb/s while the flow stays ON. The first
  // toggle is exponential(mean 0.96); advance a tiny window to stay inside
  // it with this seed.
  events.run_until(0.01);
  EXPECT_NEAR(q.backlog(), 500.0, 500.0 + 1e-6);
  EXPECT_DOUBLE_EQ(q.service_rate(), 50000);
  EXPECT_EQ(q.microflows(), 1u);
}

TEST(FluidEdge, DrainCallbackFires) {
  EventQueue events;
  FluidMacroflowQueue q(events, Rng(7));
  Seconds drained = -1;
  q.set_drain_callback([&](Seconds t) { drained = t; });
  events.schedule(0.0, [&] {
    q.add_microflow(1, paper_traffic_type(0));
  });
  // Generous service: any accumulated backlog drains between ON periods.
  q.set_service_rate(500000);
  events.run_until(50.0);
  // The queue must be empty at the horizon with 5x-peak service.
  EXPECT_NEAR(q.backlog(), 0.0, 1e-6);
  q.remove_microflow(1);
  EXPECT_EQ(q.microflows(), 0u);
}

TEST(FluidEdge, RemoveUnknownFlowIsContractViolation) {
  EventQueue events;
  FluidMacroflowQueue q(events, Rng(1));
  EXPECT_THROW(q.remove_microflow(5), std::logic_error);
}

FlowSimConfig base_config(AdmissionScheme scheme, double rate) {
  FlowSimConfig cfg;
  cfg.scheme = scheme;
  cfg.setting = Fig8Setting::kRateBasedOnly;
  cfg.workload.arrival_rate_per_source = rate;
  cfg.workload.mean_holding = 200.0;
  cfg.workload.horizon = 4000.0;
  cfg.workload.types = {0, 1, 2, 3};
  cfg.seed = 11;
  return cfg;
}

TEST(FlowSim, LowLoadAdmitsEverything) {
  for (AdmissionScheme s :
       {AdmissionScheme::kPerFlowBB, AdmissionScheme::kIntServGs,
        AdmissionScheme::kAggrFeedback, AdmissionScheme::kAggrBounding}) {
    auto res = run_flow_sim(base_config(s, 0.002));
    EXPECT_GT(res.offered, 0u);
    EXPECT_EQ(res.blocked, 0u) << admission_scheme_name(s);
  }
}

TEST(FlowSim, HighLoadBlocksAndConserves) {
  // Mean concurrency λ·2·200 must exceed the ~42-flow capacity of the
  // 1.5 Mb/s bottleneck for blocking to appear: λ = 0.3 → ~120 offered.
  auto res = run_flow_sim(base_config(AdmissionScheme::kPerFlowBB, 0.3));
  EXPECT_EQ(res.offered, res.admitted + res.blocked);
  EXPECT_GT(res.blocked, 0u);
  EXPECT_GT(res.mean_active_flows, 0.0);
  EXPECT_LE(res.mean_bottleneck_reserved, 1.5e6 + 1e-6);
}

TEST(FlowSim, Fig10OrderingAtModerateLoad) {
  // Paper Figure 10: blocking(per-flow) <= blocking(feedback) <=
  // blocking(bounding), with a strict gap for bounding at moderate load.
  const double rate = 0.12;
  double per_flow = 0, feedback = 0, bounding = 0;
  const int runs = 3;
  for (int i = 0; i < runs; ++i) {
    auto c1 = base_config(AdmissionScheme::kPerFlowBB, rate);
    auto c2 = base_config(AdmissionScheme::kAggrFeedback, rate);
    auto c3 = base_config(AdmissionScheme::kAggrBounding, rate);
    c1.seed = c2.seed = c3.seed = 100 + i;
    per_flow += run_flow_sim(c1).blocking_rate;
    feedback += run_flow_sim(c2).blocking_rate;
    bounding += run_flow_sim(c3).blocking_rate;
  }
  EXPECT_LE(per_flow, feedback + 0.02);
  EXPECT_LE(feedback, bounding + 0.02);
  EXPECT_GT(bounding, per_flow);
}

TEST(FlowSim, GsAndPerFlowBbTrackEachOther) {
  auto gs = run_flow_sim(base_config(AdmissionScheme::kIntServGs, 0.2));
  auto bb = run_flow_sim(base_config(AdmissionScheme::kPerFlowBB, 0.2));
  // Same workload, same admission arithmetic: identical outcomes.
  EXPECT_EQ(gs.admitted, bb.admitted);
  EXPECT_EQ(gs.blocked, bb.blocked);
}

TEST(BlockingSweep, MonotoneInLoadAndAveraged) {
  BlockingSweepConfig cfg;
  cfg.base = base_config(AdmissionScheme::kPerFlowBB, 0.0);
  cfg.base.workload.horizon = 3000.0;
  cfg.arrival_rates = {0.01, 0.25};
  cfg.runs_per_point = 2;
  auto pts = blocking_sweep(cfg);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_LT(pts[0].offered_load, pts[1].offered_load);
  EXPECT_LE(pts[0].blocking_rate, pts[1].blocking_rate);
  EXPECT_EQ(pts[0].runs, 2);
}

}  // namespace
}  // namespace qosbb
