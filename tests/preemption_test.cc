// Tests for priority preemption and the broker's signaling rate limiter.

#include <gtest/gtest.h>

#include "core/broker.h"
#include "topo/fig8.h"

namespace qosbb {
namespace {

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

FlowServiceRequest req(FlowPriority prio = kDefaultPriority,
                       double bound = 2.44) {
  FlowServiceRequest r{type0(), bound, "I1", "E1"};
  r.priority = prio;
  return r;
}

BrokerOptions preempting() {
  BrokerOptions opt;
  opt.allow_preemption = true;
  return opt;
}

TEST(Preemption, HighPriorityEvictsExactlyEnough) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly),
                     preempting());
  std::vector<FlowId> low;
  for (int i = 0; i < 30; ++i) {
    auto r = bb.request_service(req(0));
    ASSERT_TRUE(r.is_ok());
    low.push_back(r.value().flow);
  }
  // Full: a priority-0 request fails outright.
  EXPECT_FALSE(bb.request_service(req(0)).is_ok());
  // A priority-5 request evicts exactly one mean-rate flow.
  auto vip = bb.request_service(req(5));
  ASSERT_TRUE(vip.is_ok());
  ASSERT_EQ(vip.value().preempted.size(), 1u);
  EXPECT_FALSE(bb.flows().contains(vip.value().preempted[0]));
  EXPECT_EQ(bb.flows().count(), 30u);  // 29 low + 1 vip
  EXPECT_NEAR(bb.nodes().link("R2->R3").reserved(), 1.5e6, 1e-6);
  // The audit trail records the eviction.
  EXPECT_NE(bb.audit().last().detail.find("preempted 1"), std::string::npos);
}

TEST(Preemption, EvictsCheapestVictimsFirst) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly),
                     preempting());
  // 28 priority-2 flows + 2 priority-1 flows fill the path.
  std::vector<FlowId> prio1;
  for (int i = 0; i < 28; ++i) ASSERT_TRUE(bb.request_service(req(2)).is_ok());
  for (int i = 0; i < 2; ++i) {
    auto r = bb.request_service(req(1));
    ASSERT_TRUE(r.is_ok());
    prio1.push_back(r.value().flow);
  }
  // A priority-3 arrival must take a priority-1 victim, not a priority-2.
  auto vip = bb.request_service(req(3));
  ASSERT_TRUE(vip.is_ok());
  ASSERT_EQ(vip.value().preempted.size(), 1u);
  EXPECT_TRUE(vip.value().preempted[0] == prio1[0] ||
              vip.value().preempted[0] == prio1[1]);
}

TEST(Preemption, EqualPriorityNeverPreempts) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly),
                     preempting());
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(bb.request_service(req(5)).is_ok());
  auto same = bb.request_service(req(5));
  EXPECT_FALSE(same.is_ok());
  EXPECT_EQ(bb.flows().count(), 30u);
}

TEST(Preemption, DisabledByDefault) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly));
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(bb.request_service(req(0)).is_ok());
  EXPECT_FALSE(bb.request_service(req(9)).is_ok());
  EXPECT_EQ(bb.flows().count(), 30u);
}

TEST(Preemption, InsufficientVictimsRestoresEverything) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly),
                     preempting());
  // 29 TOP-priority flows (not preemptible by the arrival below) plus one
  // low-priority flow. The arrival needs 54 kb/s (tight bound) but its only
  // victim frees 50 kb/s -> the attempt must fail and restore the victim.
  for (int i = 0; i < 29; ++i) ASSERT_TRUE(bb.request_service(req(9)).is_ok());
  auto low = bb.request_service(req(1));
  ASSERT_TRUE(low.is_ok());
  auto vip = bb.request_service(req(5, 2.19));
  EXPECT_FALSE(vip.is_ok());
  // The low-priority flow survived the failed attempt.
  EXPECT_TRUE(bb.flows().contains(low.value().flow));
  EXPECT_EQ(bb.flows().count(), 30u);
  EXPECT_NEAR(bb.nodes().link("R2->R3").reserved(), 1.5e6, 1e-6);
}

TEST(Preemption, WorksOnMixedPaths) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kMixed), preempting());
  FlowServiceRequest low{type0(), 2.19, "I1", "E1"};
  while (bb.request_service(low).is_ok()) {
  }
  FlowServiceRequest vip{type0(), 2.19, "I1", "E1"};
  vip.priority = 7;
  auto r = bb.request_service(vip);
  ASSERT_TRUE(r.is_ok());
  EXPECT_GE(r.value().preempted.size(), 1u);
  // EDF knot accounting stays sound after the eviction + admission.
  for (const auto& [d, s] :
       bb.nodes().link("R3->R4").residual_service_at_knots()) {
    EXPECT_GE(s, -1e-6);
  }
}

TEST(RateLimiter, CapsSignalingPerIngress) {
  BrokerOptions opt;
  opt.max_request_rate_per_ingress = 2.0;  // 2 req/s
  opt.request_burst = 3.0;
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly), opt);
  // Burst of 3 passes at t=0; the 4th is throttled.
  int ok = 0;
  for (int i = 0; i < 4; ++i) {
    if (bb.request_service(req(), 0.0).is_ok()) ++ok;
  }
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(bb.stats().rejected.at(RejectReason::kPolicy), 1u);
  // Tokens refill: one second buys two more requests.
  EXPECT_TRUE(bb.request_service(req(), 1.0).is_ok());
  EXPECT_TRUE(bb.request_service(req(), 1.0).is_ok());
  EXPECT_FALSE(bb.request_service(req(), 1.0).is_ok());
  // Another ingress has its own budget.
  EXPECT_TRUE(
      bb.request_service({type0(), 2.44, "I2", "E2"}, 1.0).is_ok());
}

TEST(RateLimiter, ThrottledRequestsAreAudited) {
  BrokerOptions opt;
  opt.max_request_rate_per_ingress = 1.0;
  opt.request_burst = 1.0;
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly), opt);
  ASSERT_TRUE(bb.request_service(req(), 0.0).is_ok());
  ASSERT_FALSE(bb.request_service(req(), 0.0).is_ok());
  EXPECT_NE(bb.audit().last().detail.find("signaling rate"),
            std::string::npos);
}

TEST(Snapshot, PrioritysurvivesRoundTrip) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly),
                     preempting());
  auto r = bb.request_service(req(7));
  ASSERT_TRUE(r.is_ok());
  auto frame = bb.snapshot();
  ASSERT_TRUE(frame.is_ok());
  auto restored = BandwidthBroker::restore(
      fig8_topology(Fig8Setting::kRateBasedOnly), preempting(),
      frame.value());
  ASSERT_TRUE(restored.is_ok());
  EXPECT_EQ(restored.value()->flows().get(r.value().flow).value().priority,
            7);
}

}  // namespace
}  // namespace qosbb
