// End-to-end integration tests: control plane (bandwidth broker) admits
// flows, the packet-level data plane carries greedy worst-case traffic, and
// measured per-packet delays must respect the analytic bounds the BB
// promised — with zero VTRS property violations. This validates the entire
// stack: admission arithmetic, edge conditioning, dynamic packet state,
// per-hop virtual time updates, and the schedulers.

#include <gtest/gtest.h>

#include <memory>

#include "core/broker.h"
#include "gs/gs_admission.h"
#include "topo/fig8.h"
#include "vtrs/delay_bounds.h"
#include "vtrs/provisioned_network.h"

namespace qosbb {
namespace {

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

struct Installed {
  FlowId flow;
  Reservation reservation;
};

/// Admit `n` type-0 flows at the given bound and install them with greedy
/// sources over [0, horizon].
std::vector<Installed> admit_and_install(BandwidthBroker& bb,
                                         ProvisionedNetwork& pn, int n,
                                         Seconds bound, Seconds horizon) {
  std::vector<Installed> out;
  const PathAbstract pa =
      path_abstract(bb.spec(), fig8_path_s1());
  for (int i = 0; i < n; ++i) {
    auto res = bb.request_service({type0(), bound, "I1", "E1"});
    if (!res.is_ok()) break;
    const Reservation& r = res.value();
    pn.install_flow(r.flow, fig8_path_s1(), r.params.rate, r.params.delay);
    pn.attach_source(r.flow, std::make_unique<GreedySource>(type0(), 0.0),
                     r.flow, horizon)
        .start();
    pn.expect_bounds(r.flow,
                     core_delay_bound(pa, r.params.rate, r.params.delay,
                                      type0().l_max),
                     r.e2e_bound);
    out.push_back(Installed{r.flow, r});
  }
  return out;
}

class E2eDelayBounds
    : public ::testing::TestWithParam<std::pair<Fig8Setting, double>> {};

TEST_P(E2eDelayBounds, GreedyTrafficStaysWithinBounds) {
  const auto [setting, bound] = GetParam();
  const DomainSpec spec = fig8_topology(setting);
  BandwidthBroker bb(spec);
  ProvisionedNetwork pn(spec);
  const Seconds horizon = 30.0;
  // Fill the path completely — worst case load at worst case burstiness.
  auto flows = admit_and_install(bb, pn, 40, bound, horizon);
  ASSERT_EQ(flows.size(), bound == 2.44 ? 30u : 27u);
  pn.run_until(horizon + 20.0);

  EXPECT_GT(pn.meter().total_packets(), 1000u);
  for (const auto& f : flows) {
    const auto& rec = pn.meter().record(f.flow);
    EXPECT_EQ(rec.total_violations, 0u)
        << "flow " << f.flow << " worst slack " << rec.min_total_slack;
    EXPECT_EQ(rec.core_violations, 0u)
        << "flow " << f.flow << " worst slack " << rec.min_core_slack;
  }
  EXPECT_EQ(pn.vtrs().total_reality_check_violations(), 0u);
  EXPECT_EQ(pn.vtrs().total_spacing_violations(), 0u);
  EXPECT_EQ(pn.vtrs().total_guarantee_violations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Settings, E2eDelayBounds,
    ::testing::Values(std::make_pair(Fig8Setting::kRateBasedOnly, 2.44),
                      std::make_pair(Fig8Setting::kRateBasedOnly, 2.19),
                      std::make_pair(Fig8Setting::kMixed, 2.19)),
    [](const auto& info) {
      std::string n = info.param.first == Fig8Setting::kRateBasedOnly
                          ? "RateOnly"
                          : "Mixed";
      n += info.param.second == 2.44 ? "Loose" : "Tight";
      return n;
    });

TEST(E2eDelayBounds, BoundIsNearlyTightForGreedySources) {
  // The VTRS bound should not be wildly loose: a fully loaded rate-only
  // path with greedy sources reaches the full worst-case edge delay
  // (1.2 s of the 2.44 s bound); the core term is the loose part because
  // the shaped flows rarely synchronize inside the core.
  const DomainSpec spec = fig8_topology(Fig8Setting::kRateBasedOnly);
  BandwidthBroker bb(spec);
  ProvisionedNetwork pn(spec);
  auto flows = admit_and_install(bb, pn, 30, 2.44, 30.0);
  ASSERT_EQ(flows.size(), 30u);
  pn.run_until(60.0);
  Seconds worst = 0.0;
  for (const auto& f : flows) {
    worst = std::max(worst, pn.meter().record(f.flow).total_delay.max());
  }
  EXPECT_GT(worst, 0.45 * 2.44);
  EXPECT_LE(worst, 2.44 + 1e-9);
}

TEST(E2eAggregation, MacroflowRateChangeKeepsBounds) {
  // Class-based service with a microflow joining mid-run: the conditioner
  // re-shapes at the higher rate; packets must meet the class bound
  // throughout (contingency bandwidth covers the transient).
  const DomainSpec spec = fig8_topology(Fig8Setting::kRateBasedOnly);
  BandwidthBroker bb(spec, BrokerOptions{ContingencyMethod::kBounding});
  ProvisionedNetwork pn(spec);
  const ClassId cls = bb.define_class(2.44, 0.0);

  auto j1 = bb.request_class_service(cls, type0(), "I1", "E1", 0.0);
  ASSERT_TRUE(j1.admitted);
  EdgeConditioner& cond = pn.install_flow(j1.macroflow, fig8_path_s1(),
                                          bb.classes().allocated(j1.macroflow),
                                          0.0);
  pn.attach_source(j1.macroflow, std::make_unique<GreedySource>(type0(), 0.0),
                   1001, 60.0)
      .start();

  // Second microflow joins at t = 20 s.
  pn.events().schedule(20.0, [&] {
    auto j2 = bb.request_class_service(cls, type0(), "I1", "E1", 20.0);
    ASSERT_TRUE(j2.admitted);
    cond.set_rate(20.0, bb.classes().allocated(j2.macroflow));
    if (j2.grant != kInvalidGrantId) {
      pn.events().schedule(j2.contingency_expires_at, [&bb, j2] {
        bb.expire_contingency(j2.grant, j2.contingency_expires_at);
      });
      // When the contingency lapses, shape down to the base rate.
      pn.events().schedule(j2.contingency_expires_at, [&cond, &bb, j2] {
        cond.set_rate(j2.contingency_expires_at,
                      bb.classes().allocated(j2.macroflow));
      });
    }
    pn.attach_source(j2.macroflow,
                     std::make_unique<GreedySource>(type0(), 20.0), 1002,
                     60.0)
        .start();
  });

  pn.run_until(90.0);
  // The class bound holds for every packet of the macroflow.
  const auto& rec = pn.meter().record(j1.macroflow);
  EXPECT_GT(rec.total_delay.count(), 100u);
  EXPECT_LE(rec.total_delay.max(), 2.44 + 1e-9);
  EXPECT_EQ(pn.vtrs().total_guarantee_violations(), 0u);
}

TEST(E2eStateful, GsDataPlaneAlsoMeetsBounds) {
  // The stateful VC data plane under per-router reservation state delivers
  // the same guarantee — at the cost of per-flow state in every router.
  const DomainSpec spec = fig8_gs_topology(Fig8Setting::kRateBasedOnly);
  GsAdmissionControl gs(spec);
  ProvisionedNetwork pn(spec);
  std::vector<GsReservationResult> admitted;
  for (int i = 0; i < 30; ++i) {
    auto r = gs.request_service({type0(), 2.44, "I1", "E1"});
    ASSERT_TRUE(r.admitted);
    pn.install_flow(r.flow, fig8_path_s1(), r.rate, 0.0);
    pn.configure_stateful_flow(r.flow, fig8_path_s1(), r.rate, 0.0);
    pn.attach_source(r.flow, std::make_unique<GreedySource>(type0(), 0.0),
                     r.flow, 20.0)
        .start();
    pn.expect_bounds(r.flow, r.e2e_bound, r.e2e_bound);
    admitted.push_back(r);
  }
  pn.run_until(40.0);
  for (const auto& r : admitted) {
    EXPECT_EQ(pn.meter().record(r.flow).total_violations, 0u);
  }
}

TEST(E2eMixedSources, NonGreedyTrafficAlsoConforms) {
  const DomainSpec spec = fig8_topology(Fig8Setting::kMixed);
  BandwidthBroker bb(spec);
  ProvisionedNetwork pn(spec);
  Rng rng(77);
  for (int i = 0; i < 12; ++i) {
    auto res = bb.request_service({type0(), 2.19, "I1", "E1"});
    ASSERT_TRUE(res.is_ok());
    const Reservation& r = res.value();
    pn.install_flow(r.flow, fig8_path_s1(), r.params.rate, r.params.delay);
    std::unique_ptr<TrafficSource> src;
    switch (i % 3) {
      case 0: src = std::make_unique<GreedySource>(type0(), 0.0); break;
      case 1: src = std::make_unique<CbrSource>(type0(), 0.0); break;
      default:
        src = std::make_unique<PoissonSource>(type0(), 0.0, rng.fork());
    }
    pn.attach_source(r.flow, std::move(src), r.flow, 30.0).start();
    pn.expect_bounds(r.flow, 1e9, r.e2e_bound);
  }
  pn.run_until(60.0);
  EXPECT_EQ(pn.vtrs().total_reality_check_violations(), 0u);
  for (const auto& [flow, rec] : pn.meter().records()) {
    EXPECT_EQ(rec.total_violations, 0u) << "flow " << flow;
  }
}

}  // namespace
}  // namespace qosbb
