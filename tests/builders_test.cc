// Tests for the parametric topology builders and their interaction with the
// broker: chains scale the Figure-8 arithmetic, dumbbells concentrate
// contention on one bottleneck, stars route leaf-to-leaf through the hub.

#include <gtest/gtest.h>

#include "core/broker.h"
#include "topo/builders.h"
#include "topo/routing.h"

namespace qosbb {
namespace {

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

TEST(Chain, ShapeAndPath) {
  ChainOptions opt;
  opt.hops = 7;
  const DomainSpec spec = chain_topology(opt);
  EXPECT_EQ(spec.nodes.size(), 8u);
  EXPECT_EQ(spec.links.size(), 7u);
  EXPECT_EQ(chain_path(opt).front(), "N0");
  EXPECT_EQ(chain_path(opt).back(), "N7");
  const Graph g = spec.to_graph();
  auto p = shortest_path(g, "N0", "N7");
  ASSERT_TRUE(p.is_ok());
  EXPECT_EQ(p.value(), chain_path(opt));
}

TEST(Chain, DelayBoundScalesWithHops) {
  // On an h-hop chain at rate ρ the type-0 bound is
  // 1.2 + h·(0.24 + 0.008): h=5 reproduces the paper's 2.44.
  for (int h : {1, 3, 5, 9}) {
    ChainOptions opt;
    opt.hops = h;
    BandwidthBroker bb(chain_topology(opt));
    FlowServiceRequest req{type0(), 10.0, "N0",
                           "N" + std::to_string(h)};
    auto res = bb.request_service(req);
    ASSERT_TRUE(res.is_ok());
    EXPECT_NEAR(res.value().e2e_bound, 1.2 + h * 0.248, 1e-9) << h;
  }
}

TEST(Dumbbell, AllPairsShareTheBottleneck) {
  DumbbellOptions opt;
  opt.edge_pairs = 4;
  BandwidthBroker bb(dumbbell_topology(opt));
  // Mean-rate flows: the 1.5 Mb/s bottleneck carries 30 total regardless of
  // which pair they come from.
  int admitted = 0;
  for (int i = 0; i < 40; ++i) {
    const int pair = i % 4;
    FlowServiceRequest req{type0(), 3.0, "I" + std::to_string(pair),
                           "E" + std::to_string(pair)};
    if (bb.request_service(req).is_ok()) ++admitted;
  }
  EXPECT_EQ(admitted, 30);
  EXPECT_NEAR(bb.nodes().link("L->R").reserved(), 1.5e6, 1e-6);
  // Access links are far from full.
  EXPECT_LT(bb.nodes().link("I0->L").reserved(), 1.0e6);
}

TEST(Dumbbell, PathHelperMatchesRouting) {
  const DomainSpec spec = dumbbell_topology(DumbbellOptions{});
  const Graph g = spec.to_graph();
  auto p = shortest_path(g, "I2", "E2");
  ASSERT_TRUE(p.is_ok());
  EXPECT_EQ(p.value(), dumbbell_path(2));
}

TEST(Star, LeafToLeafThroughHub) {
  StarOptions opt;
  opt.leaves = 5;
  const DomainSpec spec = star_topology(opt);
  EXPECT_EQ(spec.links.size(), 10u);  // up + down per leaf
  BandwidthBroker bb(spec);
  FlowServiceRequest req{type0(), 3.0, "H0", "H3"};
  auto res = bb.request_service(req);
  ASSERT_TRUE(res.is_ok());
  EXPECT_EQ(bb.paths().record(res.value().path).nodes, star_path(0, 3));
  // Both directions of a leaf are independent links.
  EXPECT_NEAR(bb.nodes().link("H0->hub").reserved(), 50000, 1e-6);
  EXPECT_DOUBLE_EQ(bb.nodes().link("hub->H0").reserved(), 0.0);
}

TEST(Star, HubContentionIsPerDirection) {
  StarOptions opt;
  opt.leaves = 3;
  BandwidthBroker bb(star_topology(opt));
  // Fill hub->H2: all traffic converging on one leaf contends there.
  int admitted = 0;
  for (int i = 0; i < 40; ++i) {
    const int src = (i % 2 == 0) ? 0 : 1;
    FlowServiceRequest req{type0(), 3.0, "H" + std::to_string(src), "H2"};
    if (bb.request_service(req).is_ok()) ++admitted;
  }
  EXPECT_EQ(admitted, 30);
  EXPECT_NEAR(bb.nodes().link("hub->H2").reserved(), 1.5e6, 1e-6);
}

TEST(Builders, Contracts) {
  ChainOptions bad_chain;
  bad_chain.hops = 0;
  EXPECT_THROW(chain_topology(bad_chain), std::logic_error);
  DumbbellOptions bad_db;
  bad_db.edge_pairs = 0;
  EXPECT_THROW(dumbbell_topology(bad_db), std::logic_error);
  StarOptions bad_star;
  bad_star.leaves = 1;
  EXPECT_THROW(star_topology(bad_star), std::logic_error);
  EXPECT_THROW(star_path(1, 1), std::logic_error);
}

}  // namespace
}  // namespace qosbb
