// Property-based tests.
//
//  1. Golden model for the §3.2 Figure-4 algorithm: against randomized
//     pre-existing EDF state, the algorithm's minimal feasible rate must
//     match an exhaustive grid search over the (r, d) space — both in
//     feasibility and in minimality.
//  2. Random-domain end-to-end soundness: on random chains of random
//     schedulers/capacities, every reservation the BB grants must hold at
//     packet level for worst-case (greedy) traffic, with zero VTRS property
//     violations.

#include <gtest/gtest.h>

#include <memory>

#include "core/broker.h"
#include "core/perflow_admission.h"
#include "topo/fig8.h"
#include "util/rng.h"
#include "vtrs/delay_bounds.h"
#include "vtrs/provisioned_network.h"

namespace qosbb {
namespace {

TrafficProfile random_profile(Rng& rng) {
  const double l_max = 12000.0;
  const double rho = rng.uniform(20000.0, 80000.0);
  const double peak = rho * rng.uniform(1.2, 3.0);
  const double sigma = l_max + rng.uniform(10000.0, 80000.0);
  return TrafficProfile::make(sigma, rho, peak, l_max);
}

// ---------- 1. Golden-model comparison ----------

class Fig4GoldenModel : public ::testing::TestWithParam<int> {};

TEST_P(Fig4GoldenModel, MinimalRateMatchesExhaustiveSearch) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  BandwidthBroker bb(fig8_topology(Fig8Setting::kMixed));
  const PathId path = bb.provision_path("I1", "E1").value();
  const PathRecord& rec = bb.paths().record(path);

  // Seed random pre-existing state: EDF entries on the delay-based links
  // and background reservations on every link (Σr <= C respected).
  const int n_entries = static_cast<int>(rng.uniform_int(0, 12));
  double committed = 0.0;
  for (int i = 0; i < n_entries; ++i) {
    const double r = rng.uniform(10000.0, 80000.0);
    if (committed + r > 1.1e6) break;
    const double d = rng.uniform(0.01, 1.2);
    for (const auto& ln : rec.link_names) {
      LinkQosState& link = bb.nodes().link(ln);
      ASSERT_TRUE(link.reserve(r).is_ok());
      if (link.delay_based()) link.add_edf_entry(r, d, 12000.0);
    }
    committed += r;
  }

  const TrafficProfile profile = random_profile(rng);
  const Seconds d_req = rng.uniform(0.8, 3.5);
  const PathView view = bb.path_view(path);
  const AdmissionOutcome out = admit_mixed(view, profile, d_req);

  // Exhaustive grid search over r; for each r the best d is the maximal
  // one allowed by eq. (7): d = t − Ξ/r (larger d only relaxes eq. 8).
  const int h = rec.hop_count();
  const int q = rec.rate_based_count();
  const double hq = h - q;
  const double t_nu = (d_req - rec.d_tot() + profile.t_on()) / hq;
  const double xi =
      (profile.t_on() * profile.peak + (q + 1) * profile.l_max) / hq;
  const double r_cap = std::min(profile.peak, view.c_res);
  auto feasible = [&](double r) {
    if (r < profile.rho || r > r_cap) return false;
    const double d = t_nu - xi / r;
    if (d < 0.0) return false;
    for (const LinkQosState* link : view.edf_links) {
      if (!link->edf_schedulable_with(r, d, profile.l_max)) return false;
    }
    return true;
  };
  const double step = 25.0;  // 25 b/s grid
  double brute_min = -1.0;
  for (double r = profile.rho; r <= r_cap + step; r += step) {
    const double rr = std::min(r, r_cap);
    if (feasible(rr)) {
      brute_min = rr;
      break;
    }
    if (rr >= r_cap) break;
  }

  if (out.admitted) {
    ASSERT_GE(brute_min, 0.0)
        << "algorithm admitted at " << out.params.rate
        << " but brute force found nothing";
    // The algorithm's pair itself must be feasible...
    EXPECT_TRUE(feasible(out.params.rate))
        << "rate " << out.params.rate << " d " << out.params.delay;
    // ...and minimal up to the grid resolution.
    EXPECT_LE(out.params.rate, brute_min + step + 1e-6);
    EXPECT_GE(out.params.rate, profile.rho - 1e-6);
    // And the promised bound must really hold at that pair.
    EXPECT_LE(e2e_delay_bound(rec.abstract, profile, out.params.rate,
                              out.params.delay, profile.l_max),
              d_req + 1e-6);
  } else {
    EXPECT_LT(brute_min, 0.0)
        << "algorithm rejected but r = " << brute_min << " is feasible";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fig4GoldenModel, ::testing::Range(1, 41));

// ---------- 2. Random-domain end-to-end soundness ----------

struct RandomDomain {
  DomainSpec spec;
  std::vector<std::string> path;
};

RandomDomain random_chain(Rng& rng) {
  RandomDomain out;
  const int hops = static_cast<int>(rng.uniform_int(2, 7));
  out.spec.l_max = 12000.0;
  for (int i = 0; i <= hops; ++i) {
    out.spec.nodes.push_back("N" + std::to_string(i));
  }
  for (int i = 0; i < hops; ++i) {
    LinkSpec l;
    l.from = out.spec.nodes[static_cast<std::size_t>(i)];
    l.to = out.spec.nodes[static_cast<std::size_t>(i) + 1];
    l.capacity = rng.uniform(1.0e6, 8.0e6);
    l.propagation_delay = rng.uniform(0.0, 0.01);
    const auto kind = rng.uniform_int(0, 2);
    l.policy = kind == 0   ? SchedPolicy::kCsvc
               : kind == 1 ? SchedPolicy::kVtEdf
                           : SchedPolicy::kCjvc;
    out.spec.links.push_back(l);
  }
  out.path = out.spec.nodes;
  return out;
}

class RandomDomainE2e : public ::testing::TestWithParam<int> {};

TEST_P(RandomDomainE2e, EveryGrantHoldsAtPacketLevel) {
  Rng rng(static_cast<std::uint64_t>(1000 + GetParam()));
  const RandomDomain domain = random_chain(rng);
  BandwidthBroker bb(domain.spec);
  ProvisionedNetwork pn(domain.spec);
  const Seconds horizon = 20.0;

  int admitted = 0;
  std::vector<std::pair<FlowId, Seconds>> bounds;
  for (int i = 0; i < 25; ++i) {
    const TrafficProfile profile = random_profile(rng);
    FlowServiceRequest req{profile, rng.uniform(0.5, 4.0),
                           domain.path.front(), domain.path.back()};
    auto res = bb.request_service(req);
    if (!res.is_ok()) continue;
    ++admitted;
    const Reservation& r = res.value();
    pn.install_flow(r.flow, domain.path, r.params.rate, r.params.delay);
    std::unique_ptr<TrafficSource> src;
    if (rng.bernoulli(0.6)) {
      src = std::make_unique<GreedySource>(profile, 0.0);
    } else {
      src = std::make_unique<PoissonSource>(profile, 0.0, rng.fork());
    }
    pn.attach_source(r.flow, std::move(src), r.flow, horizon).start();
    pn.expect_bounds(r.flow, 1e9, r.e2e_bound);
    bounds.emplace_back(r.flow, r.e2e_bound);
  }
  if (admitted == 0) GTEST_SKIP() << "random domain admitted nothing";
  pn.run_until(horizon + 30.0);

  for (const auto& [flow, bound] : bounds) {
    const auto& rec = pn.meter().record(flow);
    EXPECT_GT(rec.total_delay.count(), 0u);
    EXPECT_EQ(rec.total_violations, 0u)
        << "flow " << flow << " bound " << bound << " max "
        << rec.total_delay.max();
  }
  EXPECT_EQ(pn.vtrs().total_reality_check_violations(), 0u);
  EXPECT_EQ(pn.vtrs().total_spacing_violations(), 0u);
  EXPECT_EQ(pn.vtrs().total_guarantee_violations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDomainE2e, ::testing::Range(1, 21));

// ---------- 3. MIB conservation under random churn ----------

TEST(RandomChurn, MibsConserveUnderMixedWorkload) {
  Rng rng(77);
  BandwidthBroker bb(fig8_topology(Fig8Setting::kMixed),
                     BrokerOptions{ContingencyMethod::kFeedback});
  const ClassId cls = bb.define_class(2.19, 0.10);
  std::vector<FlowId> per_flow, micro;
  Seconds now = 0.0;
  for (int round = 0; round < 400; ++round) {
    now += rng.exponential(2.0);
    const int action = static_cast<int>(rng.uniform_int(0, 3));
    const bool s1 = rng.bernoulli(0.5);
    const char* in = s1 ? "I1" : "I2";
    const char* out = s1 ? "E1" : "E2";
    switch (action) {
      case 0: {
        auto res = bb.request_service(
            {random_profile(rng), rng.uniform(1.5, 4.0), in, out}, now);
        if (res.is_ok()) per_flow.push_back(res.value().flow);
        break;
      }
      case 1: {
        auto join = bb.request_class_service(
            cls, TrafficProfile::make(60000, 50000, 100000, 12000), in, out,
            now, rng.uniform(0.0, 30000.0));
        if (join.admitted) {
          micro.push_back(join.microflow);
          if (join.grant != kInvalidGrantId) {
            bb.expire_contingency(join.grant, join.contingency_expires_at);
          }
        }
        break;
      }
      case 2: {
        if (per_flow.empty()) break;
        const std::size_t i = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(per_flow.size()) - 1));
        ASSERT_TRUE(bb.release_service(per_flow[i]).is_ok());
        per_flow.erase(per_flow.begin() + static_cast<long>(i));
        break;
      }
      default: {
        if (micro.empty()) break;
        const std::size_t i = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(micro.size()) - 1));
        auto leave = bb.leave_class_service(micro[i], now, 0.0);
        ASSERT_TRUE(leave.is_ok());
        if (leave.value().grant != kInvalidGrantId) {
          bb.expire_contingency(leave.value().grant,
                                leave.value().contingency_expires_at);
        }
        micro.erase(micro.begin() + static_cast<long>(i));
        break;
      }
    }
    // Invariants after every step: no link oversubscribed, EDF knots sound.
    for (const auto& l : bb.spec().links) {
      const LinkQosState& link = bb.nodes().link(l.from + "->" + l.to);
      ASSERT_LE(link.reserved(), link.capacity() + 1e-3) << link.name();
      if (link.delay_based()) {
        for (const auto& [d, s] : link.residual_service_at_knots()) {
          ASSERT_GE(s, -1e-3) << link.name() << " knot " << d;
        }
      }
    }
  }
  // Drain everything; the domain must return to pristine state.
  for (FlowId f : per_flow) ASSERT_TRUE(bb.release_service(f).is_ok());
  for (FlowId f : micro) {
    auto leave = bb.leave_class_service(f, now, 0.0);
    ASSERT_TRUE(leave.is_ok());
    if (leave.value().grant != kInvalidGrantId) {
      bb.expire_contingency(leave.value().grant,
                            leave.value().contingency_expires_at);
    }
  }
  for (const auto& l : bb.spec().links) {
    const LinkQosState& link = bb.nodes().link(l.from + "->" + l.to);
    EXPECT_NEAR(link.reserved(), 0.0, 1e-3) << link.name();
    EXPECT_NEAR(link.buffer_reserved(), 0.0, 1e-3) << link.name();
    EXPECT_TRUE(link.edf_buckets().empty()) << link.name();
  }
  EXPECT_EQ(bb.flows().count(), 0u);
  EXPECT_EQ(bb.classes().macroflow_count(), 0u);
}

}  // namespace
}  // namespace qosbb
