// Property: after ANY quiesced churn history, snapshot+restore yields a
// broker whose observable behavior is indistinguishable from the original —
// identical MIB accounting and the identical next admission decision.

#include <gtest/gtest.h>

#include "core/broker.h"
#include "topo/fig8.h"
#include "util/rng.h"

namespace qosbb {
namespace {

TrafficProfile random_profile(Rng& rng) {
  const double l_max = 12000.0;
  const double rho = rng.uniform(20000.0, 60000.0);
  const double peak = rho * rng.uniform(1.2, 2.5);
  const double sigma = l_max + rng.uniform(10000.0, 60000.0);
  return TrafficProfile::make(sigma, rho, peak, l_max);
}

class ChurnSnapshot : public ::testing::TestWithParam<int> {};

TEST_P(ChurnSnapshot, RestoreIsObservationallyEquivalent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977);
  const DomainSpec spec = fig8_topology(Fig8Setting::kMixed);
  BandwidthBroker bb(spec, BrokerOptions{ContingencyMethod::kFeedback});
  const ClassId cls = bb.define_class(2.19, 0.10, "cls");

  std::vector<FlowId> per_flow, micro;
  Seconds now = 0.0;
  for (int round = 0; round < 80; ++round) {
    now += 1.0;
    switch (rng.uniform_int(0, 3)) {
      case 0: {
        const bool s1 = rng.bernoulli(0.5);
        auto res = bb.request_service(
            {random_profile(rng), rng.uniform(1.8, 4.0),
             s1 ? "I1" : "I2", s1 ? "E1" : "E2"},
            now);
        if (res.is_ok()) per_flow.push_back(res.value().flow);
        break;
      }
      case 1: {
        auto j = bb.request_class_service(
            cls, TrafficProfile::make(60000, 50000, 100000, 12000), "I1",
            "E1", now, 0.0);
        if (j.admitted) {
          micro.push_back(j.microflow);
          if (j.grant != kInvalidGrantId) {
            bb.expire_contingency(j.grant, j.contingency_expires_at);
          }
        }
        break;
      }
      case 2: {
        if (per_flow.empty()) break;
        ASSERT_TRUE(bb.release_service(per_flow.back()).is_ok());
        per_flow.pop_back();
        break;
      }
      default: {
        if (micro.empty()) break;
        auto l = bb.leave_class_service(micro.back(), now, 0.0);
        ASSERT_TRUE(l.is_ok());
        if (l.value().grant != kInvalidGrantId) {
          bb.expire_contingency(l.value().grant,
                                l.value().contingency_expires_at);
        }
        micro.pop_back();
        break;
      }
    }
  }

  auto frame = bb.snapshot();
  ASSERT_TRUE(frame.is_ok()) << frame.status().to_string();
  auto restored = BandwidthBroker::restore(
      spec, BrokerOptions{ContingencyMethod::kFeedback}, frame.value());
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  BandwidthBroker& rb = *restored.value();

  // Identical accounting on every link.
  for (const auto& l : spec.links) {
    const std::string name = l.from + "->" + l.to;
    EXPECT_NEAR(bb.nodes().link(name).reserved(),
                rb.nodes().link(name).reserved(), 1e-6)
        << name;
    EXPECT_NEAR(bb.nodes().link(name).buffer_reserved(),
                rb.nodes().link(name).buffer_reserved(), 1e-6)
        << name;
    EXPECT_EQ(bb.nodes().link(name).edf_buckets().size(),
              rb.nodes().link(name).edf_buckets().size())
        << name;
  }
  EXPECT_EQ(bb.flows().count(), rb.flows().count());

  // Identical next decision on a probe request.
  const TrafficProfile probe =
      TrafficProfile::make(60000, 50000, 100000, 12000);
  auto a = bb.request_service({probe, 2.19, "I1", "E1"}, now + 1.0);
  auto b = rb.request_service({probe, 2.19, "I1", "E1"}, now + 1.0);
  ASSERT_EQ(a.is_ok(), b.is_ok());
  if (a.is_ok()) {
    EXPECT_NEAR(a.value().params.rate, b.value().params.rate, 1e-6);
    EXPECT_NEAR(a.value().params.delay, b.value().params.delay, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnSnapshot, ::testing::Range(1, 13));

// Rate-only golden sweep: on the all-rate-based path the returned rate must
// equal the closed form for random profiles and requirements.
class RateOnlyGolden : public ::testing::TestWithParam<int> {};

TEST_P(RateOnlyGolden, MatchesClosedForm) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly));
  for (int i = 0; i < 10; ++i) {
    const TrafficProfile p = random_profile(rng);
    const Seconds d_req = rng.uniform(0.3, 5.0);
    auto res = bb.request_service({p, d_req, "I1", "E1"});
    const double t_on = p.t_on();
    const double denom = d_req - 0.04 + t_on;
    const double r_min =
        denom > 0.0 ? (t_on * p.peak + 6.0 * p.l_max) / denom : 1e18;
    const double expect = std::max(r_min, p.rho);
    const double residual = bb.path_residual(bb.paths().find("I1", "E1")) +
                            (res.is_ok() ? res.value().params.rate : 0.0);
    if (expect <= p.peak && expect <= residual + 1e-6) {
      ASSERT_TRUE(res.is_ok()) << "profile " << p.to_string();
      EXPECT_NEAR(res.value().params.rate, expect, 1e-6);
    } else {
      EXPECT_FALSE(res.is_ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RateOnlyGolden, ::testing::Range(1, 16));

}  // namespace
}  // namespace qosbb
