// Unit tests for the write-ahead journal (core/journal.h) and the
// crash-consistent broker facade (core/durable_broker.h): record framing,
// torn-tail vs. corruption classification, recovery, anchoring, and
// idempotent duplicate delivery. The fault-injection FaultyJournalFile
// comes from the fuzz harness library.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "core/durable_broker.h"
#include "core/journal.h"
#include "tools/fuzz_harness.h"
#include "topo/fig8.h"

namespace qosbb {
namespace {

using fuzz::FaultyJournalFile;

WireBuffer payload_bytes(std::initializer_list<std::uint8_t> bytes) {
  return WireBuffer(bytes);
}

// ---- Framing + scanning ----

TEST(JournalFraming, FrameAndScanRoundTrip) {
  WireBuffer image;
  const WireBuffer p1 = payload_bytes({1, 2, 3});
  const WireBuffer p2 = payload_bytes({});
  const WireBuffer p3 = payload_bytes({0xff});
  for (const auto& [lsn, kind, payload] :
       {std::tuple{std::uint64_t{1}, JournalOpKind::kAdmit, p1},
        std::tuple{std::uint64_t{2}, JournalOpKind::kRelease, p2},
        std::tuple{std::uint64_t{3}, JournalOpKind::kAnchor, p3}}) {
    const WireBuffer rec = frame_journal_record(lsn, kind, payload);
    image.insert(image.end(), rec.begin(), rec.end());
  }
  const JournalScan scan = scan_journal(image);
  ASSERT_TRUE(scan.error.is_ok()) << scan.error.to_string();
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.clean_bytes, image.size());
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[0].lsn, 1u);
  EXPECT_EQ(scan.records[0].kind, JournalOpKind::kAdmit);
  EXPECT_EQ(scan.records[0].payload, p1);
  EXPECT_EQ(scan.records[1].payload, p2);
  EXPECT_EQ(scan.records[2].kind, JournalOpKind::kAnchor);
}

TEST(JournalFraming, EmptyImageScansClean) {
  const JournalScan scan = scan_journal({});
  EXPECT_TRUE(scan.error.is_ok());
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_TRUE(scan.records.empty());
}

// A record cut off by end-of-file with a consistent header is a torn tail:
// the crash hit mid-append, nothing acknowledged was lost.
TEST(JournalFraming, TornTailIsCleanNotCorrupt) {
  const WireBuffer r1 =
      frame_journal_record(1, JournalOpKind::kAdmit, payload_bytes({7, 8}));
  const WireBuffer r2 =
      frame_journal_record(2, JournalOpKind::kRelease,
                           payload_bytes({9, 10, 11, 12}));
  // Cut inside the header and at several points inside the region.
  for (std::size_t cut = 1; cut < r2.size(); ++cut) {
    WireBuffer image = r1;
    image.insert(image.end(), r2.begin(),
                 r2.begin() + static_cast<std::ptrdiff_t>(cut));
    const JournalScan scan = scan_journal(image);
    ASSERT_TRUE(scan.error.is_ok()) << "cut " << cut;
    EXPECT_TRUE(scan.torn_tail) << "cut " << cut;
    EXPECT_EQ(scan.clean_bytes, r1.size()) << "cut " << cut;
    ASSERT_EQ(scan.records.size(), 1u) << "cut " << cut;
    EXPECT_EQ(scan.records[0].lsn, 1u);
  }
}

// A multi-record group frame (frame_journal_group) cut at EVERY byte must
// scan as all-or-prefix: the complete member records before the cut, plus
// at most one torn member dropped as the usual torn tail — never an error,
// never a half-parsed member.
TEST(JournalFraming, GroupFrameEveryByteCutIsAllOrPrefix) {
  const WireBuffer head =
      frame_journal_record(1, JournalOpKind::kAdmit, payload_bytes({9}));
  const std::vector<WireBuffer> payloads = {payload_bytes({1, 2, 3}),
                                            payload_bytes({}),
                                            payload_bytes({4, 5})};
  const WireBuffer group =
      frame_journal_group(2, JournalOpKind::kAdmit, payloads);
  WireBuffer image = head;
  image.insert(image.end(), group.begin(), group.end());

  // The intact frame: one head record plus three members, consecutive LSNs.
  const JournalScan full = scan_journal(image);
  ASSERT_TRUE(full.error.is_ok()) << full.error.to_string();
  EXPECT_FALSE(full.torn_tail);
  ASSERT_EQ(full.records.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(full.records[i].lsn, i + 1) << "record " << i;
  }
  EXPECT_EQ(full.records[1].payload, payloads[0]);
  EXPECT_EQ(full.records[3].payload, payloads[2]);

  // Member record boundaries inside the group portion of the image.
  std::vector<std::size_t> boundaries = {head.size()};
  for (std::size_t i = 1; i < full.records.size(); ++i) {
    boundaries.push_back(boundaries.back() + 12 +
                         9 /* lsn+kind */ + full.records[i].payload.size());
  }
  ASSERT_EQ(boundaries.back(), image.size());

  for (std::size_t cut = head.size(); cut < image.size(); ++cut) {
    const WireBuffer prefix(image.begin(),
                            image.begin() + static_cast<std::ptrdiff_t>(cut));
    const JournalScan scan = scan_journal(prefix);
    ASSERT_TRUE(scan.error.is_ok())
        << "cut " << cut << ": " << scan.error.to_string();
    std::size_t complete = 0;
    while (complete + 1 < boundaries.size() &&
           boundaries[complete + 1] <= cut) {
      ++complete;
    }
    EXPECT_EQ(scan.records.size(), 1 + complete) << "cut " << cut;
    EXPECT_EQ(scan.clean_bytes, boundaries[complete]) << "cut " << cut;
    EXPECT_EQ(scan.torn_tail, cut != boundaries[complete]) << "cut " << cut;
  }
}

// A bit flip anywhere inside a group frame is CORRUPTION (kDataLoss), with
// the member prefix before the damage surviving — same classification as
// single-record framing.
TEST(JournalFraming, GroupFrameBitFlipIsDataLoss) {
  const std::vector<WireBuffer> payloads = {payload_bytes({1, 2}),
                                            payload_bytes({3})};
  const WireBuffer group =
      frame_journal_group(1, JournalOpKind::kAdmit, payloads);
  for (std::size_t bit = 0; bit < group.size() * 8; ++bit) {
    WireBuffer bad = group;
    bad[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    const JournalScan scan = scan_journal(bad);
    EXPECT_EQ(scan.error.code(), StatusCode::kDataLoss) << "bit " << bit;
  }
}

// A bit flip in the length field must read as CORRUPTION (the ones-
// complement copy disagrees), never as a plausible torn tail.
TEST(JournalFraming, LengthBitFlipIsDataLoss) {
  WireBuffer image =
      frame_journal_record(1, JournalOpKind::kAdmit, payload_bytes({1}));
  image[0] ^= 0x40;  // low byte of len
  const JournalScan scan = scan_journal(image);
  EXPECT_EQ(scan.error.code(), StatusCode::kDataLoss);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_TRUE(scan.records.empty());
}

TEST(JournalFraming, RegionBitFlipIsDataLoss) {
  const WireBuffer r1 =
      frame_journal_record(1, JournalOpKind::kAdmit, payload_bytes({1, 2}));
  WireBuffer image = r1;
  const WireBuffer r2 =
      frame_journal_record(2, JournalOpKind::kRelease, payload_bytes({3}));
  image.insert(image.end(), r2.begin(), r2.end());
  // Flip every bit of the second record's region in turn: CRC must catch
  // each one, and the valid prefix must survive.
  for (std::size_t bit = 12 * 8; bit < r2.size() * 8; ++bit) {
    WireBuffer bad = image;
    bad[r1.size() + bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    const JournalScan scan = scan_journal(bad);
    EXPECT_EQ(scan.error.code(), StatusCode::kDataLoss) << "bit " << bit;
    EXPECT_EQ(scan.records.size(), 1u) << "bit " << bit;
  }
}

TEST(JournalFraming, LsnGapIsDataLoss) {
  WireBuffer image =
      frame_journal_record(1, JournalOpKind::kAdmit, payload_bytes({}));
  const WireBuffer r3 =
      frame_journal_record(3, JournalOpKind::kRelease, payload_bytes({}));
  image.insert(image.end(), r3.begin(), r3.end());
  const JournalScan scan = scan_journal(image);
  EXPECT_EQ(scan.error.code(), StatusCode::kDataLoss);
  EXPECT_NE(scan.error.to_string().find("LSN"), std::string::npos);
}

TEST(JournalFraming, UnknownKindIsDataLoss) {
  const WireBuffer image = frame_journal_record(
      1, static_cast<JournalOpKind>(0), payload_bytes({}));
  const JournalScan scan = scan_journal(image);
  EXPECT_EQ(scan.error.code(), StatusCode::kDataLoss);
}

TEST(JournalFile, FsBackingRoundTrips) {
  const std::string path = ::testing::TempDir() + "/qosbb_journal_wal.bin";
  std::remove(path.c_str());
  FsJournalFile file(path);
  EXPECT_TRUE(file.read_all().is_ok());  // absent file reads as empty
  EXPECT_TRUE(file.read_all().value().empty());
  const WireBuffer r1 =
      frame_journal_record(1, JournalOpKind::kAdmit, payload_bytes({1, 2}));
  ASSERT_TRUE(file.append(r1).is_ok());
  ASSERT_TRUE(file.append(r1).is_ok());
  auto all = file.read_all();
  ASSERT_TRUE(all.is_ok());
  EXPECT_EQ(all.value().size(), 2 * r1.size());
  ASSERT_TRUE(file.replace(r1).is_ok());
  all = file.read_all();
  ASSERT_TRUE(all.is_ok());
  EXPECT_EQ(all.value(), r1);
  std::remove(path.c_str());
}

// ---- DurableBroker recovery + idempotency ----

class DurableBrokerTest : public ::testing::Test {
 protected:
  DomainSpec spec_ = fig8_topology(Fig8Setting::kMixed);
  BrokerOptions opts_;
  FaultyJournalFile file_;

  std::unique_ptr<DurableBroker> open(DurableBrokerOptions dopts = {}) {
    auto db = DurableBroker::open(spec_, opts_, file_, dopts);
    EXPECT_TRUE(db.is_ok()) << db.status().to_string();
    return std::move(db.value());
  }

  static FlowServiceRequest probe_request() {
    return {TrafficProfile::make(60000, 50000, 100000, 12000), 2.19, "I2",
            "E2", 0};
  }
};

TEST_F(DurableBrokerTest, RecoveryReproducesAcknowledgedState) {
  auto db = open();
  ASSERT_TRUE(db->provision_path(1, "I2", "E2").is_ok());
  auto r1 = db->request_service(2, probe_request(), 0.0);
  ASSERT_TRUE(r1.is_ok());
  auto r2 = db->request_service(3, probe_request(), 1.0);
  ASSERT_TRUE(r2.is_ok());
  ASSERT_TRUE(db->release_service(4, r1.value().flow).is_ok());
  const double reserved =
      db->broker().nodes().link("R3->R4").reserved();

  auto db2 = open();
  EXPECT_EQ(db2->stats().replayed, db->stats().appended);
  EXPECT_EQ(db2->next_lsn(), db->next_lsn());
  EXPECT_EQ(db2->broker().flows().count(), 1u);
  // Exact equality: deterministic redo from the identical base state.
  EXPECT_EQ(db2->broker().nodes().link("R3->R4").reserved(), reserved);
}

TEST_F(DurableBrokerTest, DuplicateDeliveryReplaysWithoutStateChange) {
  auto db = open();
  ASSERT_TRUE(db->provision_path(1, "I2", "E2").is_ok());
  auto first = db->request_service(2, probe_request(), 0.0);
  ASSERT_TRUE(first.is_ok());
  const std::uint64_t appended = db->stats().appended;
  const double reserved = db->broker().nodes().link("R3->R4").reserved();

  auto dup = db->request_service(2, probe_request(), 5.0);
  ASSERT_TRUE(dup.is_ok());
  EXPECT_EQ(dup.value().flow, first.value().flow);
  EXPECT_EQ(dup.value().params.rate, first.value().params.rate);
  EXPECT_EQ(db->stats().appended, appended);  // no new record
  EXPECT_EQ(db->stats().dedup_hits, 1u);
  EXPECT_EQ(db->broker().flows().count(), 1u);
  EXPECT_EQ(db->broker().nodes().link("R3->R4").reserved(), reserved);
}

// The acid test of the dedup window: a retry of an ADMIT that arrives after
// the flow was already RELEASED must replay the original accept — not
// re-admit a ghost flow.
TEST_F(DurableBrokerTest, DuplicateAfterReleaseDoesNotReadmit) {
  auto db = open();
  ASSERT_TRUE(db->provision_path(1, "I2", "E2").is_ok());
  auto first = db->request_service(2, probe_request(), 0.0);
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(db->release_service(3, first.value().flow).is_ok());
  ASSERT_EQ(db->broker().flows().count(), 0u);

  auto dup = db->request_service(2, probe_request(), 9.0);
  ASSERT_TRUE(dup.is_ok());
  EXPECT_EQ(dup.value().flow, first.value().flow);
  EXPECT_EQ(db->broker().flows().count(), 0u);  // nothing re-admitted
  EXPECT_EQ(db->broker().nodes().link("R3->R4").reserved(), 0.0);
}

TEST_F(DurableBrokerTest, RequestIdReuseAcrossKindsIsRejected) {
  auto db = open();
  ASSERT_TRUE(db->provision_path(1, "I2", "E2").is_ok());
  auto first = db->request_service(2, probe_request(), 0.0);
  ASSERT_TRUE(first.is_ok());
  const Status s = db->release_service(2, first.value().flow);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db->broker().flows().count(), 1u);  // nothing released
}

TEST_F(DurableBrokerTest, DedupWindowEvictsFifo) {
  DurableBrokerOptions dopts;
  dopts.dedup_window = 2;
  auto db = open(dopts);
  ASSERT_TRUE(db->provision_path(1, "I2", "E2").is_ok());
  ASSERT_TRUE(db->request_service(2, probe_request(), 0.0).is_ok());
  ASSERT_TRUE(db->request_service(3, probe_request(), 1.0).is_ok());
  EXPECT_FALSE(db->remembers(1));  // evicted
  EXPECT_TRUE(db->remembers(2));
  EXPECT_TRUE(db->remembers(3));
}

// Group commit: a batch of fresh admits is ONE durable append carrying one
// journal record per member with consecutive LSNs, and both whole-batch
// redelivery and in-batch duplicate rids dedup against recorded decisions.
TEST_F(DurableBrokerTest, BatchAdmitGroupCommitIsOneAppend) {
  auto db = open();
  ASSERT_TRUE(db->provision_path(1, "I2", "E2").is_ok());
  const std::uint64_t appends_before = file_.appends();
  const std::uint64_t lsn_before = db->next_lsn();

  const std::vector<RequestId> rids = {2, 3, 4};
  const std::vector<FlowServiceRequest> reqs(3, probe_request());
  const auto results = db->request_service_batch(rids, reqs, 0.0);
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    ASSERT_TRUE(results[j].is_ok()) << "member " << j << ": "
                                    << results[j].status().to_string();
  }
  EXPECT_EQ(file_.appends(), appends_before + 1);  // one flush for three
  EXPECT_EQ(db->next_lsn(), lsn_before + 3);
  const JournalScan scan = scan_journal(file_.contents());
  ASSERT_TRUE(scan.error.is_ok());
  ASSERT_EQ(scan.records.size(), 4u);  // provision + three admits
  EXPECT_EQ(scan.records[3].lsn, scan.records[1].lsn + 2);

  // Whole-batch redelivery: every member replays its recorded decision —
  // same flows, no execution, no new journal bytes.
  const auto dup = db->request_service_batch(rids, reqs, 9.0);
  EXPECT_EQ(db->stats().dedup_hits, 3u);
  EXPECT_EQ(file_.appends(), appends_before + 1);
  for (std::size_t j = 0; j < 3; ++j) {
    ASSERT_TRUE(dup[j].is_ok());
    EXPECT_EQ(dup[j].value().flow, results[j].value().flow);
  }
  EXPECT_EQ(db->broker().flows().count(), 3u);

  // An rid repeated WITHIN a batch dedups against the earlier member: one
  // fresh record, identical results.
  const std::vector<RequestId> rids2 = {5, 5};
  const std::vector<FlowServiceRequest> reqs2(2, probe_request());
  const auto twice = db->request_service_batch(rids2, reqs2, 10.0);
  EXPECT_EQ(db->stats().dedup_hits, 4u);
  ASSERT_EQ(twice[0].is_ok(), twice[1].is_ok());
  if (twice[0].is_ok()) {
    EXPECT_EQ(twice[0].value().flow, twice[1].value().flow);
  }

  // Recovery replays the group frame like any tail records.
  auto db2 = open();
  EXPECT_EQ(db2->broker().flows().count(), db->broker().flows().count());
  EXPECT_EQ(db2->next_lsn(), db->next_lsn());
  EXPECT_TRUE(db2->remembers(3));
}

// Results are indexed by SUBMISSION position while execution happens in
// batch_grouped_order: members of the same path group run back to back, so
// flow ids hand out in grouped order, not submission order.
TEST_F(DurableBrokerTest, BatchResultsSubmissionIndexedGroupedExecution) {
  auto db = open();
  ASSERT_TRUE(db->provision_path(1, "I2", "E2").is_ok());
  ASSERT_TRUE(db->provision_path(2, "I1", "E1").is_ok());
  FlowServiceRequest a = probe_request();  // I2 -> E2
  FlowServiceRequest b = probe_request();
  b.ingress = "I1";
  b.egress = "E1";
  const std::vector<RequestId> rids = {3, 4, 5, 6};
  const std::vector<FlowServiceRequest> reqs = {a, b, a, b};
  const auto results = db->request_service_batch(rids, reqs, 0.0);
  for (std::size_t j = 0; j < 4; ++j) {
    ASSERT_TRUE(results[j].is_ok()) << "member " << j;
  }
  // Grouped order is [0, 2, 1, 3]; sequential flow ids expose it.
  EXPECT_LT(results[0].value().flow, results[2].value().flow);
  EXPECT_LT(results[2].value().flow, results[1].value().flow);
  EXPECT_LT(results[1].value().flow, results[3].value().flow);
}

// Crash anywhere inside the group frame: recovery must land on the
// all-or-prefix state — the complete member prefix applied and remembered,
// the torn member cleanly absent — at EVERY byte cut.
TEST_F(DurableBrokerTest, BatchFrameCutAtEveryByteRecoversAllOrPrefix) {
  auto db = open();
  ASSERT_TRUE(db->provision_path(1, "I2", "E2").is_ok());
  const WireBuffer before = file_.contents();

  const std::vector<RequestId> rids = {2, 3, 4};
  const std::vector<FlowServiceRequest> reqs(3, probe_request());
  const auto results = db->request_service_batch(rids, reqs, 0.0);
  for (std::size_t j = 0; j < 3; ++j) ASSERT_TRUE(results[j].is_ok());
  const WireBuffer after = file_.contents();
  ASSERT_GT(after.size(), before.size());

  // Member record boundaries inside the appended frame.
  const JournalScan scan = scan_journal(after);
  ASSERT_TRUE(scan.error.is_ok());
  std::vector<std::size_t> boundaries = {before.size()};
  for (std::size_t i = scan.records.size() - 3; i < scan.records.size();
       ++i) {
    boundaries.push_back(boundaries.back() + 12 + 9 +
                         scan.records[i].payload.size());
  }
  ASSERT_EQ(boundaries.back(), after.size());

  for (std::size_t cut = before.size(); cut <= after.size(); ++cut) {
    FaultyJournalFile partial;
    partial.set_contents(WireBuffer(
        after.begin(), after.begin() + static_cast<std::ptrdiff_t>(cut)));
    auto r = DurableBroker::open(spec_, opts_, partial);
    ASSERT_TRUE(r.is_ok()) << "cut " << cut << ": "
                           << r.status().to_string();
    std::size_t complete = 0;
    while (complete + 1 < boundaries.size() &&
           boundaries[complete + 1] <= cut) {
      ++complete;
    }
    EXPECT_EQ(r.value()->broker().flows().count(), complete)
        << "cut " << cut;
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(r.value()->remembers(rids[j]), j < complete)
          << "cut " << cut << " member " << j;
    }
  }
}

// A silently dropped GROUP append (the broker acks a batch that never
// reached the log) must be caught by recovery as an LSN discontinuity once
// the next real append lands — the same guarantee the single-record
// sabotage canary enforces, now spanning a whole batch of LSNs.
TEST_F(DurableBrokerTest, BatchDroppedAppendIsCaughtOnRecovery) {
  auto db = open();
  ASSERT_TRUE(db->provision_path(1, "I2", "E2").is_ok());
  // Swallow the NEXT append (index = appends so far): the group frame.
  file_.set_drop_append_index(file_.appends());
  const std::vector<RequestId> rids = {2, 3};
  const std::vector<FlowServiceRequest> reqs(2, probe_request());
  const auto results = db->request_service_batch(rids, reqs, 0.0);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(db->remembers(2));
  EXPECT_TRUE(db->remembers(3));
  ASSERT_TRUE(db->request_service(4, probe_request(), 1.0).is_ok());
  auto rec = DurableBroker::open(spec_, opts_, file_);
  EXPECT_FALSE(rec.is_ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kDataLoss);
}

TEST_F(DurableBrokerTest, AnchorTruncatesJournalAndSurvivesRecovery) {
  auto db = open();
  ASSERT_TRUE(db->provision_path(1, "I2", "E2").is_ok());
  auto first = db->request_service(2, probe_request(), 0.0);
  ASSERT_TRUE(first.is_ok());
  const std::uint64_t lsn_before = db->next_lsn();
  ASSERT_TRUE(db->checkpoint().is_ok());
  // The journal is now a single anchor whose LSN continues the sequence.
  const JournalScan scan = scan_journal(file_.contents());
  ASSERT_TRUE(scan.error.is_ok());
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].kind, JournalOpKind::kAnchor);
  EXPECT_EQ(scan.records[0].lsn, lsn_before);

  // Post-anchor ops append after the anchor; recovery = anchor + tail.
  auto second = db->request_service(3, probe_request(), 2.0);
  ASSERT_TRUE(second.is_ok());
  auto db2 = open();
  EXPECT_EQ(db2->broker().flows().count(), 2u);
  EXPECT_EQ(db2->next_lsn(), db->next_lsn());
  // The dedup window rode along in the anchor: a pre-anchor rid still
  // replays instead of re-executing.
  auto dup = db2->request_service(2, probe_request(), 9.0);
  ASSERT_TRUE(dup.is_ok());
  EXPECT_EQ(dup.value().flow, first.value().flow);
  EXPECT_EQ(db2->broker().flows().count(), 2u);
}

TEST_F(DurableBrokerTest, AutoAnchorFiresAfterThreshold) {
  DurableBrokerOptions dopts;
  dopts.anchor_every = 3;
  auto db = open(dopts);
  ASSERT_TRUE(db->provision_path(1, "I2", "E2").is_ok());
  ASSERT_TRUE(db->request_service(2, probe_request(), 0.0).is_ok());
  ASSERT_TRUE(db->request_service(3, probe_request(), 1.0).is_ok());
  EXPECT_GE(db->stats().checkpoints, 1u);
  auto db2 = open(dopts);
  EXPECT_EQ(db2->broker().flows().count(), 2u);
}

TEST_F(DurableBrokerTest, TornFinalRecordIsDroppedAndTruncated) {
  auto db = open();
  ASSERT_TRUE(db->provision_path(1, "I2", "E2").is_ok());
  ASSERT_TRUE(db->request_service(2, probe_request(), 0.0).is_ok());
  const WireBuffer clean = file_.contents();
  // Simulate a crash mid-append of a record that was never acknowledged.
  WireBuffer torn = frame_journal_record(db->next_lsn(),
                                         JournalOpKind::kRelease,
                                         payload_bytes({1, 2, 3, 4}));
  WireBuffer image = clean;
  image.insert(image.end(), torn.begin(), torn.end() - 3);
  file_.set_contents(image);

  auto db2 = open();
  EXPECT_EQ(db2->broker().flows().count(), 1u);
  EXPECT_EQ(db2->next_lsn(), db->next_lsn());
  // Recovery truncated the torn bytes so the next append lands cleanly.
  EXPECT_EQ(file_.contents(), clean);
}

TEST_F(DurableBrokerTest, CorruptJournalIsRefused) {
  auto db = open();
  ASSERT_TRUE(db->provision_path(1, "I2", "E2").is_ok());
  ASSERT_TRUE(db->request_service(2, probe_request(), 0.0).is_ok());
  db.reset();
  file_.flip_bit(file_.contents().size() * 8 / 2);
  auto bad = DurableBroker::open(spec_, opts_, file_);
  ASSERT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kDataLoss);
}

TEST_F(DurableBrokerTest, DroppedAppendIsCaughtOnRecovery) {
  file_.set_drop_append_index(1);  // swallow the first admit's record
  auto db = open();
  ASSERT_TRUE(db->provision_path(1, "I2", "E2").is_ok());
  ASSERT_TRUE(db->request_service(2, probe_request(), 0.0).is_ok());
  ASSERT_TRUE(db->request_service(3, probe_request(), 1.0).is_ok());
  db.reset();
  auto bad = DurableBroker::open(spec_, opts_, file_);
  ASSERT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(bad.status().to_string().find("LSN"), std::string::npos);
}

// A syntactically valid record whose recorded decision the broker cannot
// reproduce (here: "release of a flow that does not exist succeeded") must
// fail recovery as a replay divergence — never rebuild a different state.
TEST_F(DurableBrokerTest, ReplayDivergenceIsRefused) {
  auto db = open();
  ASSERT_TRUE(db->provision_path(1, "I2", "E2").is_ok());
  const std::uint64_t lsn = db->next_lsn();
  db.reset();
  WireWriter payload;
  payload.u64(99);      // rid
  payload.i64(424242);  // nonexistent flow
  payload.u8(0);        // recorded outcome: OK
  WireBuffer image = file_.contents();
  const WireBuffer rec =
      frame_journal_record(lsn, JournalOpKind::kRelease, payload.take());
  image.insert(image.end(), rec.begin(), rec.end());
  file_.set_contents(image);

  auto bad = DurableBroker::open(spec_, opts_, file_);
  ASSERT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(bad.status().to_string().find("divergence"), std::string::npos);
}

}  // namespace
}  // namespace qosbb
