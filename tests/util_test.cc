// Unit tests for util: Status/Result, Rng, RunningStats, Histogram,
// TimeWeightedMean, TextTable.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/backoff.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table.h"
#include "util/units.h"

namespace qosbb {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(Status, RejectedCarriesMessage) {
  Status s = Status::rejected("not enough bandwidth");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kRejected);
  EXPECT_EQ(s.message(), "not enough bandwidth");
  EXPECT_EQ(s.to_string(), "REJECTED: not enough bandwidth");
}

TEST(Status, CodeNames) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "OK");
  EXPECT_STREQ(status_code_name(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(status_code_name(StatusCode::kInternal), "INTERNAL");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  Result<int> r(Status::not_found("flow 7"));
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
  EXPECT_THROW(r.value(), std::logic_error);
}

TEST(Result, OkStatusWithoutValueIsContractViolation) {
  EXPECT_THROW(Result<int> r((Status())), std::logic_error);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(kilobits(1.5), 1500.0);
  EXPECT_DOUBLE_EQ(megabits_per_second(1.5), 1.5e6);
  EXPECT_DOUBLE_EQ(bytes(1500), 12000.0);
  EXPECT_DOUBLE_EQ(milliseconds(8), 0.008);
  EXPECT_DOUBLE_EQ(transmission_time(bytes(1500), megabits_per_second(1.5)),
                   0.008);
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, ForkDecorrelates) {
  Rng a(7);
  Rng c = a.fork();
  // A forked stream must not replay the parent's stream.
  Rng a2(7);
  bool all_equal = true;
  for (int i = 0; i < 20; ++i) {
    if (a2.uniform() != c.uniform()) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

TEST(Rng, ExponentialMeanCloseToRequested) {
  Rng r(123);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(200.0);
  EXPECT_NEAR(sum / n, 200.0, 5.0);
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng r(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    auto v = r.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ContractChecks) {
  Rng r(1);
  EXPECT_THROW(r.exponential(0.0), std::logic_error);
  EXPECT_THROW(r.uniform(2.0, 1.0), std::logic_error);
  EXPECT_THROW(r.bernoulli(1.5), std::logic_error);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  RunningStats a, b, all;
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0, 10);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i * 0.1);  // uniform over [0, 10)
  EXPECT_EQ(h.total(), 100u);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(99.0);
  EXPECT_EQ(h.counts().front(), 1u);
  EXPECT_EQ(h.counts().back(), 1u);
}

TEST(TimeWeightedMean, PiecewiseConstantSignal) {
  TimeWeightedMean m;
  m.update(0.0, 10.0);   // 10 for 2 s
  m.update(2.0, 0.0);    // 0 for 2 s
  EXPECT_DOUBLE_EQ(m.mean_so_far(4.0), 5.0);
  EXPECT_DOUBLE_EQ(m.finish(4.0), 5.0);
}

TEST(TimeWeightedMean, RejectsTimeTravel) {
  TimeWeightedMean m;
  m.update(5.0, 1.0);
  EXPECT_THROW(m.update(4.0, 1.0), std::logic_error);
}

TEST(TextTable, AlignedRender) {
  TextTable t({"scheme", "admitted"});
  t.add_row({"IntServ/GS", "30"});
  t.add_row({"Per-flow BB/VTRS", "30"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("scheme"), std::string::npos);
  EXPECT_NE(s.find("Per-flow BB/VTRS"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, CsvRender) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, RowWidthEnforced) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::fmt(2.44, 2), "2.44");
  EXPECT_EQ(TextTable::fmt_int(29), "29");
}

TEST(Backoff, DeterministicGrowthWithoutJitter) {
  BackoffPolicy p;
  p.base = 0.1;
  p.cap = 1.0;
  p.multiplier = 2.0;
  p.max_retries = 8;
  p.jitter = 0.0;
  Backoff b(p, Rng(1));
  EXPECT_DOUBLE_EQ(b.next(), 0.1);
  EXPECT_DOUBLE_EQ(b.next(), 0.2);
  EXPECT_DOUBLE_EQ(b.next(), 0.4);
  EXPECT_DOUBLE_EQ(b.next(), 0.8);
  EXPECT_DOUBLE_EQ(b.next(), 1.0);  // capped
  EXPECT_DOUBLE_EQ(b.next(), 1.0);
}

TEST(Backoff, FullJitterStaysInsideCeiling) {
  BackoffPolicy p;
  p.base = 0.05;
  p.cap = 5.0;
  Backoff b(p, Rng(42));
  double ceiling = p.base;
  for (int k = 0; k < 20; ++k) {
    const Seconds d = b.next();
    EXPECT_GE(d, 0.0) << "attempt " << k;
    EXPECT_LE(d, ceiling) << "attempt " << k;
    ceiling = std::min(p.cap, ceiling * p.multiplier);
  }
}

TEST(Backoff, PartialJitterBlendsFixedAndRandom) {
  BackoffPolicy p;
  p.base = 1.0;
  p.cap = 1.0;  // ceiling pinned to 1 from the first retry
  p.jitter = 0.25;
  Backoff b(p, Rng(7));
  for (int k = 0; k < 10; ++k) {
    const Seconds d = b.next();
    EXPECT_GE(d, 0.75);  // ceiling*(1-j)
    EXPECT_LE(d, 1.0);
  }
}

TEST(Backoff, ExhaustionAndReset) {
  BackoffPolicy p;
  p.max_retries = 3;
  Backoff b(p, Rng(5));
  EXPECT_FALSE(b.exhausted());
  (void)b.next();
  (void)b.next();
  (void)b.next();
  EXPECT_TRUE(b.exhausted());
  EXPECT_EQ(b.attempts(), 3u);
  // Delays keep flowing past exhaustion (caller decides when to give up)...
  EXPECT_GT(b.next(), 0.0);
  EXPECT_EQ(b.attempts(), 3u);
  // ...and reset() re-arms the schedule for the next request.
  b.reset();
  EXPECT_FALSE(b.exhausted());
  EXPECT_EQ(b.attempts(), 0u);
}

TEST(Backoff, NeverExceedsCapEvenPastExhaustion) {
  BackoffPolicy p;
  p.base = 0.010;
  p.cap = 0.080;
  p.max_retries = 4;
  Backoff b(p, Rng(2024));
  // Long past exhaustion the draw must still respect the cap: a retry
  // storm that keeps going cannot escalate its own sleep ceiling.
  for (int k = 0; k < 200; ++k) {
    const Seconds d = b.next();
    EXPECT_LE(d, p.cap) << "attempt " << k;
    EXPECT_GE(d, 0.0) << "attempt " << k;
  }
  EXPECT_TRUE(b.exhausted());
}

TEST(Backoff, JitteredDrawFlooredFromSecondRetry) {
  BackoffPolicy p;
  p.base = 0.050;
  Backoff b(p, Rng(31337));
  (void)b.next();  // first retry may legitimately draw ~0
  // From the second retry on, the draw is floored at base/10: a zero
  // sleep would re-synchronize the storm the jitter exists to break up.
  for (int k = 1; k < 100; ++k) {
    EXPECT_GE(b.next(), p.base / 10.0) << "attempt " << k;
  }
}

TEST(Backoff, SameSeedSameSchedule) {
  BackoffPolicy p;
  Backoff a(p, Rng(99));
  Backoff b(p, Rng(99));
  for (int k = 0; k < 12; ++k) EXPECT_DOUBLE_EQ(a.next(), b.next());
}

TEST(Backoff, IllFormedPolicyThrows) {
  Rng rng(1);
  BackoffPolicy bad;
  bad.base = 0.0;
  EXPECT_THROW(Backoff(bad, Rng(1)), std::invalid_argument);
  bad = {};
  bad.cap = 0.01;  // cap < base
  EXPECT_THROW(Backoff(bad, Rng(1)), std::invalid_argument);
  bad = {};
  bad.multiplier = 0.5;
  EXPECT_THROW(Backoff(bad, Rng(1)), std::invalid_argument);
  bad = {};
  bad.jitter = 1.5;
  EXPECT_THROW(Backoff(bad, Rng(1)), std::invalid_argument);
}

}  // namespace
}  // namespace qosbb
