// Tests for the admission audit log and per-flow renegotiation.

#include <gtest/gtest.h>

#include <sstream>

#include "core/broker.h"
#include "topo/fig8.h"

namespace qosbb {
namespace {

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

FlowServiceRequest req(double bound = 2.44) {
  return FlowServiceRequest{type0(), bound, "I1", "E1"};
}

TEST(AuditLog, RingSemanticsAndCsv) {
  AuditLog log(2);
  AuditEntry e;
  e.kind = AuditKind::kPerFlowRequest;
  e.admitted = true;
  e.flow = 1;
  log.record(e);
  e.flow = 2;
  log.record(e);
  e.flow = 3;
  log.record(e);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.total_recorded(), 3u);
  EXPECT_EQ(log.entries().front().flow, 2);
  EXPECT_EQ(log.last().flow, 3);
  std::ostringstream os;
  log.dump_csv(os);
  EXPECT_NE(os.str().find("time,kind,admitted"), std::string::npos);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_THROW(log.last(), std::logic_error);
  EXPECT_THROW(AuditLog(0), std::logic_error);
}

TEST(BrokerAudit, RecordsAdmissionsAndRejections) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly));
  while (bb.request_service(req()).is_ok()) {
  }
  // 30 admissions + 1 rejection.
  EXPECT_EQ(bb.audit().total_recorded(), 31u);
  EXPECT_EQ(bb.audit().rejections(RejectReason::kInsufficientBandwidth), 1u);
  const AuditEntry& last = bb.audit().last();
  EXPECT_FALSE(last.admitted);
  EXPECT_EQ(last.ingress, "I1");
  EXPECT_DOUBLE_EQ(last.requested_rho, 50000);
  // Residual recorded at decision time: 0 after the path filled.
  EXPECT_NEAR(last.path_residual, 0.0, 1e-6);
}

TEST(BrokerAudit, RecordsGrantedParameters) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kMixed));
  ASSERT_TRUE(bb.request_service(req(2.19)).is_ok());
  const AuditEntry& e = bb.audit().last();
  EXPECT_TRUE(e.admitted);
  EXPECT_NEAR(e.granted_rate, 50000, 1e-3);
  EXPECT_GT(e.granted_delay, 0.0);
  EXPECT_EQ(e.kind, AuditKind::kPerFlowRequest);
}

TEST(BrokerAudit, RecordsClassEvents) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly));
  const ClassId cls = bb.define_class(2.44, 0.0);
  auto j = bb.request_class_service(cls, type0(), "I1", "E1", 5.0, 0.0);
  ASSERT_TRUE(j.admitted);
  EXPECT_EQ(bb.audit().last().kind, AuditKind::kMicroflowJoin);
  EXPECT_DOUBLE_EQ(bb.audit().last().time, 5.0);
  ASSERT_TRUE(bb.leave_class_service(j.microflow, 10.0, 0.0).is_ok());
  EXPECT_EQ(bb.audit().last().kind, AuditKind::kMicroflowLeave);
}

TEST(Renegotiation, TightenRaisesRate) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly));
  auto res = bb.request_service(req(2.44));
  ASSERT_TRUE(res.is_ok());
  EXPECT_NEAR(res.value().params.rate, 50000, 1e-6);
  auto tightened = bb.renegotiate_service(res.value().flow, 2.19);
  ASSERT_TRUE(tightened.is_ok());
  EXPECT_EQ(tightened.value().flow, res.value().flow);  // same id
  EXPECT_NEAR(tightened.value().params.rate, 168000.0 / 3.11, 1e-3);
  EXPECT_LE(tightened.value().e2e_bound, 2.19 + 1e-9);
  // MIBs reflect the new rate exactly once.
  EXPECT_NEAR(bb.nodes().link("R2->R3").reserved(), 168000.0 / 3.11, 1e-3);
  EXPECT_EQ(bb.nodes().link("R2->R3").flow_count(), 1u);
}

TEST(Renegotiation, LoosenLowersRate) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly));
  auto res = bb.request_service(req(2.19));
  ASSERT_TRUE(res.is_ok());
  auto loosened = bb.renegotiate_service(res.value().flow, 2.44);
  ASSERT_TRUE(loosened.is_ok());
  EXPECT_NEAR(loosened.value().params.rate, 50000, 1e-6);
}

TEST(Renegotiation, InfeasibleKeepsOriginal) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly));
  // Fill 29 flows, then the 30th cannot tighten past what residual allows.
  std::vector<FlowId> flows;
  for (int i = 0; i < 30; ++i) {
    auto r = bb.request_service(req(2.44));
    ASSERT_TRUE(r.is_ok());
    flows.push_back(r.value().flow);
  }
  auto tightened = bb.renegotiate_service(flows.back(), 2.19);
  EXPECT_FALSE(tightened.is_ok());  // needs 54 kb/s, only its own 50k free
  // Original reservation intact.
  auto rec = bb.flows().get(flows.back());
  ASSERT_TRUE(rec.is_ok());
  EXPECT_NEAR(rec.value().reservation.rate, 50000, 1e-6);
  EXPECT_DOUBLE_EQ(rec.value().e2e_delay_req, 2.44);
  EXPECT_NEAR(bb.nodes().link("R2->R3").reserved(), 1.5e6, 1e-6);
  // Impossible requirement also keeps the original.
  EXPECT_FALSE(bb.renegotiate_service(flows.front(), 0.01).is_ok());
  EXPECT_NEAR(bb.nodes().link("R2->R3").reserved(), 1.5e6, 1e-6);
}

TEST(Renegotiation, MixedPathSwapsEdfEntries) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kMixed));
  auto res = bb.request_service(req(2.19));
  ASSERT_TRUE(res.is_ok());
  auto renew = bb.renegotiate_service(res.value().flow, 2.30);
  ASSERT_TRUE(renew.is_ok());
  const LinkQosState& edf = bb.nodes().link("R3->R4");
  // Exactly one entry, at the NEW delay parameter.
  ASSERT_EQ(edf.edf_buckets().size(), 1u);
  EXPECT_TRUE(edf.edf_buckets().contains(renew.value().params.delay));
  ASSERT_TRUE(bb.release_service(res.value().flow).is_ok());
  EXPECT_TRUE(edf.edf_buckets().empty());
}

TEST(Renegotiation, UnknownFlowIsNotFound) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly));
  EXPECT_EQ(bb.renegotiate_service(999, 2.0).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace qosbb
