// Unit tests for the discrete-event simulator: event ordering, link
// serialization, node forwarding, meters.

#include <gtest/gtest.h>

#include <vector>

#include "sched/csvc.h"
#include "sched/fifo.h"
#include "sim/event_queue.h"
#include "sim/meter.h"
#include "sim/network.h"

namespace qosbb {
namespace {

TEST(EventQueue, DispatchesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(3.0, [&] { order.push_back(3); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_EQ(q.dispatched(), 3u);
}

TEST(EventQueue, TiesBrokenByInsertion) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(2.0, [&] { ++fired; });
  q.schedule(3.0, [&] { ++fired; });
  q.run_until(2.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) q.schedule_in(0.5, recurse);
  };
  q.schedule(0.0, recurse);
  q.run_all();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(q.now(), 4.5);
}

TEST(EventQueue, SchedulingIntoThePastIsContractViolation) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.run_all();
  EXPECT_THROW(q.schedule(1.0, [] {}), std::logic_error);
}

Packet mk(FlowId flow, double rate, double size = 12000.0) {
  Packet p;
  p.flow = flow;
  p.size = size;
  p.state.rate = rate;
  return p;
}

TEST(Network, LinkSerializesAtCapacity) {
  Network net;
  net.add_node("A");
  net.add_node("B");
  Link& l = net.add_link("A", "B",
                         std::make_unique<FifoScheduler>(1.5e6, 12000), 0.0);
  DelayMeter meter;
  net.node("B").set_sink(1, &meter);
  net.node("A").set_route(1, &l);

  // Two 12 kb packets injected at t=0: transmissions finish at 8 ms, 16 ms.
  net.events().schedule(0.0, [&] {
    Packet p = mk(1, 50000);
    p.source_time = p.edge_time = 0.0;
    net.node("A").receive(0.0, p);
    Packet p2 = mk(1, 50000);
    p2.seq = 1;
    p2.source_time = p2.edge_time = 0.0;
    net.node("A").receive(0.0, p2);
  });
  net.run_all();
  ASSERT_EQ(meter.total_packets(), 2u);
  const auto& rec = meter.record(1);
  EXPECT_NEAR(rec.core_delay.min(), 0.008, 1e-12);
  EXPECT_NEAR(rec.core_delay.max(), 0.016, 1e-12);
  EXPECT_EQ(l.packets_sent(), 2u);
  EXPECT_DOUBLE_EQ(l.bits_sent(), 24000.0);
}

TEST(Network, PropagationDelayAdds) {
  Network net;
  net.add_node("A");
  net.add_node("B");
  net.add_link("A", "B", std::make_unique<FifoScheduler>(1.5e6, 12000),
               0.050);
  DelayMeter meter;
  net.install_flow_path(7, {"A", "B"}, &meter);
  net.events().schedule(0.0, [&] {
    Packet p = mk(7, 50000);
    net.node("A").receive(0.0, p);
  });
  net.run_all();
  EXPECT_NEAR(meter.record(7).core_delay.mean(), 0.058, 1e-12);
}

TEST(Network, MultiHopPathDelivery) {
  Network net;
  for (const char* n : {"A", "B", "C"}) net.add_node(n);
  net.add_link("A", "B", std::make_unique<CsvcScheduler>(1.5e6, 12000), 0.0);
  net.add_link("B", "C", std::make_unique<CsvcScheduler>(1.5e6, 12000), 0.0);
  DelayMeter meter;
  net.install_flow_path(1, {"A", "B", "C"}, &meter);
  net.events().schedule(0.0, [&] {
    Packet p = mk(1, 50000);
    net.node("A").receive(0.0, p);
  });
  net.run_all();
  EXPECT_EQ(meter.total_packets(), 1u);
  EXPECT_NEAR(meter.record(1).core_delay.mean(), 0.016, 1e-12);
}

TEST(Network, UnroutedPacketsCountedAsDropped) {
  Network net;
  net.add_node("A");
  net.events().schedule(0.0, [&] { net.node("A").receive(0.0, mk(99, 1)); });
  net.run_all();
  EXPECT_EQ(net.node("A").packets_dropped(), 1u);
}

TEST(Network, DuplicateNodeIsContractViolation) {
  Network net;
  net.add_node("A");
  EXPECT_THROW(net.add_node("A"), std::logic_error);
  EXPECT_THROW(net.node("Z"), std::logic_error);
}

TEST(DelayMeter, ViolationAccounting) {
  DelayMeter meter;
  meter.set_bounds(1, 0.010, 0.020);
  Packet p = mk(1, 50000);
  p.edge_time = 0.0;
  p.source_time = 0.0;
  meter.deliver(0.005, p);  // within both bounds
  meter.deliver(0.015, p);  // violates core bound only
  meter.deliver(0.025, p);  // violates both
  const auto& rec = meter.record(1);
  EXPECT_EQ(rec.core_violations, 2u);
  EXPECT_EQ(rec.total_violations, 1u);
  EXPECT_EQ(meter.total_violations(), 3u);
  EXPECT_NEAR(rec.min_core_slack, -0.015, 1e-12);
}

TEST(Network, LinksOnPathValidates) {
  Network net;
  net.add_node("A");
  net.add_node("B");
  net.add_link("A", "B", std::make_unique<FifoScheduler>(1e6, 12000), 0.0);
  EXPECT_EQ(net.links_on_path({"A", "B"}).size(), 1u);
  EXPECT_THROW(net.links_on_path({"A"}), std::logic_error);
  EXPECT_THROW(net.links_on_path({"B", "A"}), std::logic_error);
}

}  // namespace
}  // namespace qosbb
