// Tests for broker state snapshot / crash recovery: round trip fidelity,
// id preservation, MIB reconstruction, quiescence precondition, and
// hostile-frame handling.

#include <gtest/gtest.h>

#include "core/broker.h"
#include "core/hierarchical.h"
#include "core/interdomain.h"
#include "core/wire.h"
#include "federation/federated_front.h"
#include "federation/member.h"
#include "federation/partition.h"
#include "topo/builders.h"
#include "topo/fig8.h"
#include "util/rng.h"

namespace qosbb {
namespace {

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

TrafficProfile type2() {
  return TrafficProfile::make(36000, 30000, 100000, 12000);
}

/// A broker with mixed state: per-flow reservations on both paths, two
/// classes, two macroflows.
std::unique_ptr<BandwidthBroker> populated_broker() {
  auto bb = std::make_unique<BandwidthBroker>(
      fig8_topology(Fig8Setting::kMixed),
      BrokerOptions{ContingencyMethod::kFeedback});
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(bb->request_service({type0(), 2.19, "I1", "E1"}).is_ok());
  }
  EXPECT_TRUE(bb->request_service({type2(), 2.91, "I2", "E2"}).is_ok());
  const ClassId gold = bb->define_class(2.19, 0.10, "gold");
  const ClassId silver = bb->define_class(2.91, 0.24, "silver");
  for (int i = 0; i < 3; ++i) {
    auto j = bb->request_class_service(gold, type0(), "I1", "E1",
                                       10.0 + i, 0.0);
    EXPECT_TRUE(j.admitted);
  }
  auto j = bb->request_class_service(silver, type2(), "I2", "E2", 20.0, 0.0);
  EXPECT_TRUE(j.admitted);
  return bb;
}

/// Every piece of link-level accounting must agree between two brokers.
void expect_same_mibs(const BandwidthBroker& a, const BandwidthBroker& b) {
  for (const auto& l : a.spec().links) {
    const std::string name = l.from + "->" + l.to;
    const LinkQosState& la = a.nodes().link(name);
    const LinkQosState& lb = b.nodes().link(name);
    EXPECT_NEAR(la.reserved(), lb.reserved(), 1e-6) << name;
    EXPECT_NEAR(la.buffer_reserved(), lb.buffer_reserved(), 1e-6) << name;
    ASSERT_EQ(la.edf_buckets().size(), lb.edf_buckets().size()) << name;
    for (const auto& [d, bucket] : la.edf_buckets()) {
      ASSERT_TRUE(lb.edf_buckets().contains(d)) << name << " knot " << d;
      EXPECT_NEAR(bucket.sum_rate, lb.edf_buckets().at(d).sum_rate, 1e-6);
      EXPECT_EQ(bucket.count, lb.edf_buckets().at(d).count);
    }
  }
}

TEST(Snapshot, RoundTripReconstructsEverything) {
  auto original = populated_broker();
  auto frame = original->snapshot();
  ASSERT_TRUE(frame.is_ok()) << frame.status().to_string();
  EXPECT_EQ(peek_type(frame.value()).value(), MessageType::kBrokerSnapshot);

  auto restored = BandwidthBroker::restore(
      fig8_topology(Fig8Setting::kMixed),
      BrokerOptions{ContingencyMethod::kFeedback}, frame.value());
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  BandwidthBroker& bb = *restored.value();

  EXPECT_EQ(bb.flows().count(), original->flows().count());
  EXPECT_EQ(bb.classes().macroflow_count(),
            original->classes().macroflow_count());
  expect_same_mibs(*original, bb);
  // Flow records identical, ids preserved.
  for (const auto& [id, rec] : original->flows().all()) {
    auto got = bb.flows().get(id);
    ASSERT_TRUE(got.is_ok()) << "flow " << id;
    EXPECT_EQ(got.value().kind, rec.kind);
    EXPECT_EQ(got.value().profile, rec.profile);
    EXPECT_NEAR(got.value().reservation.rate, rec.reservation.rate, 1e-9);
    EXPECT_EQ(got.value().path, rec.path);
  }
}

TEST(Snapshot, RestoredBrokerKeepsWorking) {
  auto original = populated_broker();
  // Record what the original would do next.
  auto frame = original->snapshot().value();
  auto next_original = original->request_service({type0(), 2.19, "I1", "E1"});

  auto restored = BandwidthBroker::restore(
      fig8_topology(Fig8Setting::kMixed),
      BrokerOptions{ContingencyMethod::kFeedback}, frame);
  ASSERT_TRUE(restored.is_ok());
  BandwidthBroker& bb = *restored.value();
  // The restored broker makes the SAME next decision...
  auto next_restored = bb.request_service({type0(), 2.19, "I1", "E1"});
  ASSERT_EQ(next_original.is_ok(), next_restored.is_ok());
  if (next_original.is_ok()) {
    EXPECT_NEAR(next_restored.value().params.rate,
                next_original.value().params.rate, 1e-6);
  }
  // ...and can tear down pre-crash state (id continuity).
  for (const auto& [id, rec] : bb.flows().all()) {
    if (rec.kind == FlowKind::kPerFlow && id != next_restored.value().flow) {
      EXPECT_TRUE(bb.release_service(id).is_ok()) << id;
      break;
    }
  }
}

TEST(Snapshot, MicroflowLeaveWorksAfterRestore) {
  auto original = populated_broker();
  auto frame = original->snapshot().value();
  auto restored = BandwidthBroker::restore(
      fig8_topology(Fig8Setting::kMixed),
      BrokerOptions{ContingencyMethod::kFeedback}, frame);
  ASSERT_TRUE(restored.is_ok());
  BandwidthBroker& bb = *restored.value();
  // Find a microflow and leave.
  FlowId micro = kInvalidFlowId;
  for (const auto& [id, rec] : bb.flows().all()) {
    if (rec.kind == FlowKind::kMicroflow) {
      micro = id;
      break;
    }
  }
  ASSERT_NE(micro, kInvalidFlowId);
  auto leave = bb.leave_class_service(micro, 100.0, 0.0);
  ASSERT_TRUE(leave.is_ok()) << leave.status().to_string();
}

TEST(Snapshot, RequiresQuiescence) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly),
                     BrokerOptions{ContingencyMethod::kBounding});
  const ClassId cls = bb.define_class(2.44, 0.0);
  ASSERT_TRUE(bb.request_class_service(cls, type0(), "I1", "E1", 0.0)
                  .admitted);
  auto j2 = bb.request_class_service(cls, type0(), "I1", "E1", 1.0);
  ASSERT_TRUE(j2.admitted);
  ASSERT_NE(j2.grant, kInvalidGrantId);  // live transient
  auto frame = bb.snapshot();
  EXPECT_FALSE(frame.is_ok());
  // Typed transient error: settle the grants and retry.
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
  // After the grant expires, snapshotting works.
  bb.expire_contingency(j2.grant, j2.contingency_expires_at);
  EXPECT_TRUE(bb.snapshot().is_ok());
}

TEST(Snapshot, EmptyBrokerRoundTrips) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly));
  auto frame = bb.snapshot();
  ASSERT_TRUE(frame.is_ok());
  auto restored = BandwidthBroker::restore(
      fig8_topology(Fig8Setting::kRateBasedOnly), BrokerOptions{},
      frame.value());
  ASSERT_TRUE(restored.is_ok());
  EXPECT_EQ(restored.value()->flows().count(), 0u);
  EXPECT_DOUBLE_EQ(restored.value()->nodes().total_reserved(), 0.0);
}

// Out-of-band link reservations (reserve_link_external) are first-class
// snapshot state: they serialize, restore, and stay releasable.
TEST(Snapshot, ExternalReservationsRoundTrip) {
  const DomainSpec spec = fig8_topology(Fig8Setting::kRateBasedOnly);
  BandwidthBroker bb(spec);
  ASSERT_TRUE(bb.request_service({type0(), 2.44, "I1", "E1"}).is_ok());
  ASSERT_TRUE(bb.reserve_link_external("R2->R3", 120000).is_ok());
  ASSERT_TRUE(bb.reserve_link_external("R4->R5", 80000).is_ok());
  auto frame = bb.snapshot();
  ASSERT_TRUE(frame.is_ok()) << frame.status().to_string();

  auto restored = BandwidthBroker::restore(spec, {}, frame.value());
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  EXPECT_EQ(restored.value()->external_reserved().size(), 2u);
  EXPECT_DOUBLE_EQ(restored.value()->external_reserved().at("R2->R3"),
                   120000.0);
  expect_same_mibs(bb, *restored.value());
  // The restored booking is live, not just cosmetic: it can be released.
  auto freed = restored.value()->release_link_external("R2->R3", 120000);
  ASSERT_TRUE(freed.is_ok());
  EXPECT_DOUBLE_EQ(freed.value(), 120000.0);
}

// A hierarchical quota lease books bandwidth directly on the central node
// MIB — state the snapshot records cannot explain. Snapshotting then MUST
// fail loudly (kFailedPrecondition), never emit a frame that would silently
// lose the lease on recovery. Once the lease is returned, the same broker
// snapshots fine.
TEST(Snapshot, HierarchicalLeaseFailsLoudlyThenRoundTripsAfterRestore) {
  CentralBroker central(fig8_topology(Fig8Setting::kRateBasedOnly));
  const PathId path = central.domain().provision_path("I1", "E1").value();
  ASSERT_TRUE(
      central.domain().request_service({type0(), 2.44, "I1", "E1"}).is_ok());
  EXPECT_DOUBLE_EQ(central.lease("edge1", path, 200000), 200000.0);

  auto frame = central.domain().snapshot();
  ASSERT_FALSE(frame.is_ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kFailedPrecondition);

  central.restore("edge1", path, 200000);
  frame = central.domain().snapshot();
  ASSERT_TRUE(frame.is_ok()) << frame.status().to_string();
  auto restored = BandwidthBroker::restore(
      fig8_topology(Fig8Setting::kRateBasedOnly), {}, frame.value());
  ASSERT_TRUE(restored.is_ok());
  expect_same_mibs(central.domain(), *restored.value());
}

// An SLA trunk lives inside the transit domain's broker as an ordinary
// per-flow reservation, so a transit BB snapshot round-trips it: same link
// accounting, same flow record, still releasable after restore.
TEST(Snapshot, InterDomainTrunkStateRoundTrips) {
  ChainOptions opt;
  opt.hops = 3;
  opt.prefix = "T";
  opt.capacity = 1.5e6;
  InterDomainOrchestrator orch;
  ChainOptions src = opt, dst = opt;
  src.prefix = "A";
  src.hops = 2;
  dst.prefix = "B";
  dst.hops = 2;
  orch.add_domain("src", chain_topology(src), "A0", "A2");
  orch.add_domain("transit", chain_topology(opt), "T0", "T3");
  orch.add_domain("dst", chain_topology(dst), "B0", "B2");
  ASSERT_TRUE(orch.provision_trunk("transit", 600000, 120000).is_ok());
  ASSERT_TRUE(orch.request_service(type0(), 6.0).is_ok());

  BandwidthBroker& transit = orch.domain("transit");
  ASSERT_EQ(transit.flows().count(), 1u);  // the trunk itself
  auto frame = transit.snapshot();
  ASSERT_TRUE(frame.is_ok()) << frame.status().to_string();
  auto restored =
      BandwidthBroker::restore(chain_topology(opt), {}, frame.value());
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  EXPECT_EQ(restored.value()->flows().count(), 1u);
  expect_same_mibs(transit, *restored.value());
  // The restored trunk reservation carries the same id and rate.
  for (const auto& [id, rec] : transit.flows().all()) {
    auto got = restored.value()->flows().get(id);
    ASSERT_TRUE(got.is_ok());
    EXPECT_DOUBLE_EQ(got.value().reservation.rate, rec.reservation.rate);
    EXPECT_TRUE(restored.value()->release_service(id).is_ok());
  }
  EXPECT_DOUBLE_EQ(restored.value()->nodes().total_reserved(), 0.0);
}

// An inter-domain federated admit leaves each member broker holding pinned
// segment reservations on its slice of the edge-aggregate graph. That state
// is ordinary per-flow state to the member, so a per-member snapshot
// round-trips it: identical link accounting, same pinned rate, and the
// restored segment is live (releasable).
TEST(Snapshot, FederatedSegmentAggregateStateRoundTripsPerMember) {
  MultiDomainOptions topo;
  topo.domains = 3;
  topo.edge_pairs = 2;
  const FederationPlan plan =
      partition_multi_domain(multi_domain_topology(topo), topo.domains);
  std::vector<std::unique_ptr<InProcessMember>> members;
  std::vector<FederationMember*> raw;
  for (int d = 0; d < plan.num_domains; ++d) {
    members.push_back(std::make_unique<InProcessMember>(
        d, plan.members[d], BrokerOptions{}));
    raw.push_back(members.back().get());
  }
  FederatedFront front(plan, raw);

  const FederatedOutcome out =
      front.request_service({type0(), 2.0, "D0I0", "D2E0"});
  ASSERT_TRUE(out.result.is_ok()) << out.detail;
  ASSERT_TRUE(out.inter_domain);
  ASSERT_EQ(out.segments, 3);

  for (int d = 0; d < plan.num_domains; ++d) {
    BandwidthBroker& member = members[static_cast<std::size_t>(d)]->broker();
    ASSERT_EQ(member.flows().count(), 1u) << "domain " << d;
    auto frame = member.snapshot();
    ASSERT_TRUE(frame.is_ok())
        << "domain " << d << ": " << frame.status().to_string();
    auto restored = BandwidthBroker::restore(
        plan.members[static_cast<std::size_t>(d)], {}, frame.value());
    ASSERT_TRUE(restored.is_ok())
        << "domain " << d << ": " << restored.status().to_string();
    expect_same_mibs(member, *restored.value());
    // The pinned segment survives with the federation rate r* and can be
    // torn down on the restored member.
    for (const auto& [id, rec] : member.flows().all()) {
      auto got = restored.value()->flows().get(id);
      ASSERT_TRUE(got.is_ok()) << "domain " << d << " flow " << id;
      EXPECT_DOUBLE_EQ(got.value().reservation.rate, out.segment_rate)
          << "domain " << d;
      EXPECT_TRUE(restored.value()->release_service(id).is_ok())
          << "domain " << d;
    }
    EXPECT_DOUBLE_EQ(restored.value()->nodes().total_reserved(), 0.0)
        << "domain " << d;
  }
}

// The e2e legs of an inter-domain reservation live in the source and
// destination domain brokers as per-flow state (complementing the transit
// trunk test above): each endpoint BB snapshot round-trips its leg and the
// restored leg is releasable.
TEST(Snapshot, InterDomainEndpointLegStateRoundTrips) {
  ChainOptions transit;
  transit.hops = 3;
  transit.prefix = "T";
  transit.capacity = 1.5e6;
  ChainOptions src = transit, dst = transit;
  src.prefix = "A";
  src.hops = 2;
  dst.prefix = "B";
  dst.hops = 2;
  InterDomainOrchestrator orch;
  orch.add_domain("src", chain_topology(src), "A0", "A2");
  orch.add_domain("transit", chain_topology(transit), "T0", "T3");
  orch.add_domain("dst", chain_topology(dst), "B0", "B2");
  ASSERT_TRUE(orch.provision_trunk("transit", 600000, 120000).is_ok());
  auto e2e = orch.request_service(type0(), 6.0);
  ASSERT_TRUE(e2e.is_ok()) << e2e.status().to_string();

  const struct {
    const char* name;
    ChainOptions opt;
    FlowId leg;
  } endpoints[] = {{"src", src, e2e.value().source_leg},
                   {"dst", dst, e2e.value().destination_leg}};
  for (const auto& ep : endpoints) {
    BandwidthBroker& bb = orch.domain(ep.name);
    ASSERT_EQ(bb.flows().count(), 1u) << ep.name;  // the leg itself
    auto frame = bb.snapshot();
    ASSERT_TRUE(frame.is_ok())
        << ep.name << ": " << frame.status().to_string();
    auto restored =
        BandwidthBroker::restore(chain_topology(ep.opt), {}, frame.value());
    ASSERT_TRUE(restored.is_ok())
        << ep.name << ": " << restored.status().to_string();
    expect_same_mibs(bb, *restored.value());
    auto got = restored.value()->flows().get(ep.leg);
    ASSERT_TRUE(got.is_ok()) << ep.name << " leg " << ep.leg;
    EXPECT_DOUBLE_EQ(got.value().reservation.rate,
                     bb.flows().get(ep.leg).value().reservation.rate)
        << ep.name;
    EXPECT_TRUE(restored.value()->release_service(ep.leg).is_ok()) << ep.name;
    EXPECT_DOUBLE_EQ(restored.value()->nodes().total_reserved(), 0.0)
        << ep.name;
  }
}

TEST(Snapshot, HostileFramesAreCleanErrors) {
  auto original = populated_broker();
  const auto frame = original->snapshot().value();
  const DomainSpec spec = fig8_topology(Fig8Setting::kMixed);
  // Truncations.
  for (std::size_t n : {0ul, 4ul, 8ul, 20ul, frame.size() - 1}) {
    std::vector<std::uint8_t> cut(frame.begin(),
                                  frame.begin() + static_cast<long>(n));
    EXPECT_FALSE(BandwidthBroker::restore(spec, {}, cut).is_ok()) << n;
  }
  // Wrong message type.
  EXPECT_FALSE(BandwidthBroker::restore(
                   spec, {}, encode(TeardownRequest{1}))
                   .is_ok());
  // Random mutations must never crash (they may fail decode or trip a
  // booking REQUIRE, both reported as exceptions or Status; catch both).
  Rng rng(5);
  int clean = 0;
  for (int i = 0; i < 200; ++i) {
    auto mutated = frame;
    mutated[static_cast<std::size_t>(rng.uniform_int(
        8, static_cast<std::int64_t>(mutated.size()) - 1))] ^= 0xff;
    try {
      auto out = BandwidthBroker::restore(spec, {}, mutated);
      if (!out.is_ok()) ++clean;
    } catch (const std::logic_error&) {
      ++clean;  // booking invariant tripped: detected, not corrupted
    }
  }
  EXPECT_GT(clean, 0);
}

}  // namespace
}  // namespace qosbb
