// Unit tests for the VTRS layer: delay-bound formulas (eqs. 2–4, 18), path
// abstraction, edge conditioner shaping/stamping, per-hop update rule.

#include <gtest/gtest.h>

#include <vector>

#include "sim/meter.h"
#include "sim/network.h"
#include "topo/fig8.h"
#include "vtrs/core_hop.h"
#include "vtrs/delay_bounds.h"
#include "vtrs/edge_conditioner.h"

namespace qosbb {
namespace {

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

TEST(PathAbstract, Fig8RateOnlyGeometry) {
  const DomainSpec spec = fig8_topology(Fig8Setting::kRateBasedOnly);
  const PathAbstract pa = path_abstract(spec, fig8_path_s1());
  EXPECT_EQ(pa.hop_count(), 5);
  EXPECT_EQ(pa.rate_based_count(), 5);
  EXPECT_EQ(pa.delay_based_count(), 0);
  // D_tot = 5 · Ψ = 5 · 12000/1.5e6 = 0.04 s (zero propagation).
  EXPECT_NEAR(pa.total_error_and_prop(), 0.04, 1e-12);
  EXPECT_DOUBLE_EQ(pa.min_capacity(), 1.5e6);
}

TEST(PathAbstract, Fig8MixedGeometry) {
  const DomainSpec spec = fig8_topology(Fig8Setting::kMixed);
  const PathAbstract s1 = path_abstract(spec, fig8_path_s1());
  EXPECT_EQ(s1.rate_based_count(), 3);  // I1->R2, R2->R3, R5->E1
  EXPECT_EQ(s1.delay_based_count(), 2);
  const PathAbstract s2 = path_abstract(spec, fig8_path_s2());
  EXPECT_EQ(s2.rate_based_count(), 2);
  EXPECT_EQ(s2.delay_based_count(), 3);
}

TEST(DelayBounds, PaperE2eNumbersRateOnly) {
  // With r = ρ = 50 kb/s on the all-rate-based S1 path, the end-to-end
  // bound is exactly the paper's loose type-0 bound: 2.44 s.
  const DomainSpec spec = fig8_topology(Fig8Setting::kRateBasedOnly);
  const PathAbstract pa = path_abstract(spec, fig8_path_s1());
  EXPECT_NEAR(e2e_delay_bound(pa, type0(), 50000, 0.0, 12000), 2.44, 1e-12);
  // Edge and core split: 1.2 + 1.24.
  EXPECT_NEAR(edge_delay_bound(type0(), 50000), 1.2, 1e-12);
  EXPECT_NEAR(core_delay_bound(pa, 50000, 0.0, 12000), 1.24, 1e-12);
}

TEST(DelayBounds, MinRateRateOnlyInvertsBound) {
  const DomainSpec spec = fig8_topology(Fig8Setting::kRateBasedOnly);
  const PathAbstract pa = path_abstract(spec, fig8_path_s1());
  // The minimal rate for D = 2.44 must be exactly ρ.
  EXPECT_NEAR(min_rate_rate_only(pa, type0(), 2.44), 50000, 1e-6);
  // For D = 2.19: r_min = 168000/3.11 ≈ 54019.29 (Section 5 narrative).
  const double r219 = min_rate_rate_only(pa, type0(), 2.19);
  EXPECT_NEAR(r219, 168000.0 / 3.11, 1e-6);
  // Round trip: bound at r_min equals the requirement.
  EXPECT_NEAR(e2e_delay_bound(pa, type0(), r219, 0.0, 12000), 2.19, 1e-9);
  // A requirement below what even the peak rate can deliver: r_min > P, so
  // the admission test must reject (the formula itself stays finite as long
  // as D_req > D_tot − T_on).
  EXPECT_GT(min_rate_rate_only(pa, type0(), 0.01), type0().peak);
}

TEST(DelayBounds, MixedBoundUsesDelayParam) {
  const DomainSpec spec = fig8_topology(Fig8Setting::kMixed);
  const PathAbstract pa = path_abstract(spec, fig8_path_s1());
  // q = 3, h−q = 2: d_core = 3·L/r + 2·d + D_tot.
  const double d = core_delay_bound(pa, 50000, 0.1, 12000);
  EXPECT_NEAR(d, 3 * 0.24 + 2 * 0.1 + 0.04, 1e-12);
}

TEST(DelayBounds, RateChangeBoundUsesMinRate) {
  const DomainSpec spec = fig8_topology(Fig8Setting::kRateBasedOnly);
  const PathAbstract pa = path_abstract(spec, fig8_path_s1());
  const double up = core_delay_bound_rate_change(pa, 50000, 100000, 0, 12000);
  EXPECT_DOUBLE_EQ(up, core_delay_bound(pa, 50000, 0, 12000));
  const double down =
      core_delay_bound_rate_change(pa, 100000, 50000, 0, 12000);
  EXPECT_DOUBLE_EQ(down, core_delay_bound(pa, 50000, 0, 12000));
}

TEST(EdgeConditioner, EnforcesSpacingAtReservedRate) {
  Network net;
  net.add_node("I");
  struct Capture final : PacketSink {
    std::vector<Packet> packets;
    void deliver(Seconds, const Packet& p) override { packets.push_back(p); }
  } sink;
  net.node("I").set_sink(1, &sink);
  EdgeConditioner cond(net.events(), net.node("I"), 1, 50000, 0.0);
  // Three packets dumped at t = 0 must leave at 0, 0.24, 0.48.
  net.events().schedule(0.0, [&] {
    cond.submit(0.0, 12000, 101);
    cond.submit(0.0, 12000, 102);
    cond.submit(0.0, 12000, 103);
  });
  net.run_all();
  ASSERT_EQ(sink.packets.size(), 3u);
  EXPECT_DOUBLE_EQ(sink.packets[0].edge_time, 0.0);
  EXPECT_DOUBLE_EQ(sink.packets[1].edge_time, 0.24);
  EXPECT_DOUBLE_EQ(sink.packets[2].edge_time, 0.48);
  // Packet state stamped: ω̃ = â_1, rate carried, microflow preserved.
  EXPECT_DOUBLE_EQ(sink.packets[1].state.virtual_time, 0.24);
  EXPECT_DOUBLE_EQ(sink.packets[1].state.rate, 50000);
  EXPECT_EQ(sink.packets[2].microflow, 103);
  EXPECT_EQ(cond.packets_released(), 3u);
  EXPECT_TRUE(cond.idle());
}

TEST(EdgeConditioner, RateChangeTakesEffect) {
  Network net;
  net.add_node("I");
  struct Capture final : PacketSink {
    std::vector<Packet> packets;
    void deliver(Seconds, const Packet& p) override { packets.push_back(p); }
  } sink;
  net.node("I").set_sink(1, &sink);
  EdgeConditioner cond(net.events(), net.node("I"), 1, 50000, 0.0);
  net.events().schedule(0.0, [&] {
    for (int i = 0; i < 4; ++i) cond.submit(0.0, 12000, 1);
  });
  // Double the rate at t = 0.3: subsequent spacing halves to 0.12.
  net.events().schedule(0.3, [&] { cond.set_rate(0.3, 100000); });
  net.run_all();
  ASSERT_EQ(sink.packets.size(), 4u);
  EXPECT_DOUBLE_EQ(sink.packets[0].edge_time, 0.0);
  EXPECT_DOUBLE_EQ(sink.packets[1].edge_time, 0.24);
  // Third packet: earliest 0.24 + 12000/100000 = 0.36 under the new rate,
  // but not before the change takes effect at 0.3 → 0.36.
  EXPECT_NEAR(sink.packets[2].edge_time, 0.36, 1e-9);
  EXPECT_NEAR(sink.packets[3].edge_time, 0.48, 1e-9);
  EXPECT_DOUBLE_EQ(sink.packets[3].state.rate, 100000);
}

TEST(EdgeConditioner, BacklogAndDrainCallback) {
  Network net;
  net.add_node("I");
  struct Null final : PacketSink {
    void deliver(Seconds, const Packet&) override {}
  } sink;
  net.node("I").set_sink(1, &sink);
  EdgeConditioner cond(net.events(), net.node("I"), 1, 50000, 0.0);
  Seconds drained_at = -1.0;
  cond.set_drain_callback([&](Seconds t) { drained_at = t; });
  net.events().schedule(0.0, [&] {
    cond.submit(0.0, 12000, 1);
    cond.submit(0.0, 12000, 1);
    EXPECT_DOUBLE_EQ(cond.backlog(), 24000.0);
  });
  net.run_all();
  EXPECT_DOUBLE_EQ(cond.backlog(), 0.0);
  EXPECT_DOUBLE_EQ(drained_at, 0.24);  // second packet released
}

TEST(EdgeConditioner, DeltaStaysZeroForEqualSizes) {
  Network net;
  net.add_node("I");
  struct Capture final : PacketSink {
    std::vector<Packet> packets;
    void deliver(Seconds, const Packet& p) override { packets.push_back(p); }
  } sink;
  net.node("I").set_sink(1, &sink);
  EdgeConditioner cond(net.events(), net.node("I"), 1, 50000, 0.0);
  net.events().schedule(0.0, [&] {
    for (int i = 0; i < 3; ++i) cond.submit(0.0, 12000, 1);
  });
  net.run_all();
  for (const auto& p : sink.packets) EXPECT_DOUBLE_EQ(p.state.delta, 0.0);
}

TEST(EdgeConditioner, DeltaCompensatesShrinkingPackets) {
  Network net;
  net.add_node("I");
  struct Capture final : PacketSink {
    std::vector<Packet> packets;
    void deliver(Seconds, const Packet& p) override { packets.push_back(p); }
  } sink;
  net.node("I").set_sink(1, &sink);
  EdgeConditioner cond(net.events(), net.node("I"), 1, 50000, 0.0);
  net.events().schedule(0.0, [&] {
    cond.submit(0.0, 12000, 1);
    cond.submit(0.0, 6000, 1);  // smaller: δ = (12000−6000)/50000 = 0.12
  });
  net.run_all();
  ASSERT_EQ(sink.packets.size(), 2u);
  EXPECT_DOUBLE_EQ(sink.packets[0].state.delta, 0.0);
  EXPECT_NEAR(sink.packets[1].state.delta, 0.12, 1e-12);
}

TEST(VtrsHop, AppliesConcatenationRule) {
  // eq. (1): ω̃_{i+1} = ω̃_i + d̃_i + Ψ_i + π_i.
  VtrsHop hop(SchedulerKind::kRateBased, 0.008, 0.001);
  Packet p;
  p.flow = 1;
  p.size = 12000;
  p.state.rate = 50000;
  p.state.virtual_time = 1.0;
  p.hop_arrival = 0.9;
  hop.on_departure(1.1, p);  // departs within ν̃ + Ψ = 1.248
  EXPECT_NEAR(p.state.virtual_time, 1.0 + 0.24 + 0.008 + 0.001, 1e-12);
  EXPECT_EQ(p.hop_index, 1);
  EXPECT_NEAR(p.hop_arrival, 1.101, 1e-12);
  EXPECT_EQ(hop.reality_check_violations(), 0u);
  EXPECT_EQ(hop.guarantee_violations(), 0u);
}

TEST(VtrsHop, FlagsRealityCheckViolation) {
  VtrsHop hop(SchedulerKind::kRateBased, 0.008, 0.0);
  Packet p;
  p.flow = 1;
  p.size = 12000;
  p.state.rate = 50000;
  p.state.virtual_time = 1.0;
  p.hop_arrival = 2.0;  // arrived after its virtual arrival time
  hop.on_departure(2.1, p);
  EXPECT_EQ(hop.reality_check_violations(), 1u);
}

TEST(VtrsHop, FlagsGuaranteeViolation) {
  VtrsHop hop(SchedulerKind::kDelayBased, 0.008, 0.0);
  Packet p;
  p.flow = 1;
  p.size = 12000;
  p.state.rate = 50000;
  p.state.delay_param = 0.1;
  p.state.virtual_time = 1.0;
  p.hop_arrival = 1.0;
  hop.on_departure(5.0, p);  // way past ν̃ + Ψ = 1.108
  EXPECT_EQ(hop.guarantee_violations(), 1u);
  EXPECT_NEAR(hop.max_lateness(), 5.0 - 1.108, 1e-9);
}

TEST(VtrsHop, FlagsSpacingViolation) {
  VtrsHop hop(SchedulerKind::kRateBased, 0.008, 0.0);
  Packet a;
  a.flow = 1;
  a.size = 12000;
  a.state.rate = 50000;
  a.state.virtual_time = 1.0;
  a.hop_arrival = 0.0;
  hop.on_departure(1.0, a);
  Packet b = a;
  b.state.virtual_time = 1.1;  // spacing 0.1 < L/r = 0.24
  hop.on_departure(1.2, b);
  EXPECT_EQ(hop.spacing_violations(), 1u);
}

TEST(VtrsInstrumentation, InstallsOnAllLinks) {
  const DomainSpec spec = fig8_topology(Fig8Setting::kMixed);
  Network net;
  build_network(spec, net);
  auto inst = VtrsInstrumentation::install(net, spec);
  EXPECT_NO_THROW(inst.hop("I1->R2"));
  EXPECT_NO_THROW(inst.hop("R5->E2"));
  EXPECT_THROW(inst.hop("Z->Q"), std::logic_error);
  EXPECT_EQ(inst.total_reality_check_violations(), 0u);
}

}  // namespace
}  // namespace qosbb
