// Tests for the two-level bandwidth broker hierarchy: quota leases and
// restores, local-vs-central decision accounting, proxying of delay-based
// paths, fragmentation behavior, and conservation invariants.

#include <gtest/gtest.h>

#include "core/hierarchical.h"
#include "topo/fig8.h"

namespace qosbb {
namespace {

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

FlowServiceRequest req(const char* in, const char* out, double bound = 2.44) {
  return FlowServiceRequest{type0(), bound, in, out};
}

TEST(CentralBroker, LeaseClampsToResidual) {
  CentralBroker central(fig8_topology(Fig8Setting::kRateBasedOnly));
  const PathId path = central.domain().provision_path("I1", "E1").value();
  EXPECT_DOUBLE_EQ(central.lease("edge1", path, 1.0e6), 1.0e6);
  // Only 0.5 Mb/s left: a 1 Mb/s ask is partially granted.
  EXPECT_DOUBLE_EQ(central.lease("edge1", path, 1.0e6), 0.5e6);
  EXPECT_DOUBLE_EQ(central.lease("edge1", path, 1.0e6), 0.0);
  EXPECT_DOUBLE_EQ(central.leased_to("edge1", path), 1.5e6);
  EXPECT_DOUBLE_EQ(central.domain().nodes().link("R2->R3").reserved(), 1.5e6);
  central.restore("edge1", path, 1.5e6);
  EXPECT_DOUBLE_EQ(central.total_leased(), 0.0);
  EXPECT_DOUBLE_EQ(central.domain().nodes().link("R2->R3").reserved(), 0.0);
}

TEST(CentralBroker, RestoreMoreThanLeasedIsContractViolation) {
  CentralBroker central(fig8_topology(Fig8Setting::kRateBasedOnly));
  const PathId path = central.domain().provision_path("I1", "E1").value();
  central.lease("edge1", path, 100000);
  EXPECT_THROW(central.restore("edge1", path, 200000), std::logic_error);
  EXPECT_THROW(central.restore("edge2", path, 1.0), std::logic_error);
}

TEST(EdgeBroker, FirstRequestLeasesThenRunsLocally) {
  CentralBroker central(fig8_topology(Fig8Setting::kRateBasedOnly));
  EdgeBroker edge("I1", central, /*chunk=*/500000);
  // First request: one lease contact. Next nine: pure local decisions
  // (10 · 50 kb/s = 500 kb/s fits one chunk).
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(edge.request_service(req("I1", "E1")).is_ok()) << i;
  }
  EXPECT_EQ(edge.admitted(), 10u);
  EXPECT_EQ(edge.local_decisions(), 9u);
  // Path provisioning + one lease.
  EXPECT_GE(edge.central_contacts(), 1u);
  EXPECT_LE(edge.central_contacts(), 2u);
  const PathId path = central.domain().paths().find("I1", "E1");
  EXPECT_DOUBLE_EQ(edge.quota_held(path), 500000);
  EXPECT_DOUBLE_EQ(edge.quota_used(path), 500000);
}

TEST(EdgeBroker, ReservationCarriesCorrectBound) {
  CentralBroker central(fig8_topology(Fig8Setting::kRateBasedOnly));
  EdgeBroker edge("I1", central, 500000);
  auto res = edge.request_service(req("I1", "E1", 2.44));
  ASSERT_TRUE(res.is_ok());
  EXPECT_NEAR(res.value().params.rate, 50000, 1e-6);
  EXPECT_NEAR(res.value().e2e_bound, 2.44, 1e-9);
}

TEST(EdgeBroker, ReleaseRestoresWithHysteresis) {
  CentralBroker central(fig8_topology(Fig8Setting::kRateBasedOnly));
  EdgeBroker edge("I1", central, /*chunk=*/100000);
  std::vector<FlowId> flows;
  for (int i = 0; i < 6; ++i) {
    auto r = edge.request_service(req("I1", "E1"));
    ASSERT_TRUE(r.is_ok());
    flows.push_back(r.value().flow);
  }
  const PathId path = central.domain().paths().find("I1", "E1");
  EXPECT_DOUBLE_EQ(edge.quota_held(path), 300000);  // 3 chunks
  // Release everything: hysteresis keeps exactly one chunk of headroom.
  for (FlowId f : flows) ASSERT_TRUE(edge.release_service(f).is_ok());
  EXPECT_DOUBLE_EQ(edge.quota_used(path), 0.0);
  EXPECT_DOUBLE_EQ(edge.quota_held(path), 100000);
  EXPECT_DOUBLE_EQ(central.leased_to("I1", path), 100000);
}

TEST(EdgeBroker, QuotaExhaustionRejects) {
  CentralBroker central(fig8_topology(Fig8Setting::kRateBasedOnly));
  EdgeBroker edge("I1", central, 500000);
  int admitted = 0;
  while (edge.request_service(req("I1", "E1")).is_ok()) ++admitted;
  // Same capacity as the centralized broker: 30 mean-rate flows.
  EXPECT_EQ(admitted, 30);
  EXPECT_EQ(edge.rejected(), 1u);
}

TEST(EdgeBroker, MixedPathIsProxiedToCenter) {
  CentralBroker central(fig8_topology(Fig8Setting::kMixed));
  EdgeBroker edge("I1", central, 500000);
  auto res = edge.request_service(req("I1", "E1", 2.19));
  ASSERT_TRUE(res.is_ok());
  // The reservation lives in the central flow MIB, with a delay parameter.
  EXPECT_EQ(central.domain().flows().count(), 1u);
  EXPECT_GT(res.value().params.delay, 0.0);
  EXPECT_EQ(edge.local_decisions(), 0u);
  ASSERT_TRUE(edge.release_service(res.value().flow).is_ok());
  EXPECT_EQ(central.domain().flows().count(), 0u);
}

TEST(Hierarchy, TwoEdgesShareTheCore) {
  // S1 and S2 funnel through the same R2->R5 core: the quota ledger must
  // arbitrate between the edges exactly like the centralized broker would.
  CentralBroker central(fig8_topology(Fig8Setting::kRateBasedOnly));
  EdgeBroker e1("I1", central, 250000);
  EdgeBroker e2("I2", central, 250000);
  int admitted = 0;
  for (int i = 0; i < 60; ++i) {
    EdgeBroker& edge = (i % 2 == 0) ? e1 : e2;
    const char* in = (i % 2 == 0) ? "I1" : "I2";
    const char* out = (i % 2 == 0) ? "E1" : "E2";
    if (edge.request_service(req(in, out)).is_ok()) ++admitted;
  }
  // Chunked quotas can strand at most (2 edges · 1 chunk) of headroom:
  // 30 flows fit centrally; the hierarchy admits within one chunk of that.
  EXPECT_GE(admitted, 25);
  EXPECT_LE(admitted, 30);
  // Conservation: everything reserved in the central MIB is either leased
  // out or zero (no per-flow reservations at the center for local flows).
  EXPECT_NEAR(central.domain().nodes().link("R2->R3").reserved(),
              central.total_leased(), 1e-6);
}

TEST(Hierarchy, LocalDecisionRatioDominates) {
  CentralBroker central(fig8_topology(Fig8Setting::kRateBasedOnly));
  EdgeBroker edge("I1", central, 750000);
  std::vector<FlowId> live;
  std::uint64_t requests = 0;
  // Churn: admissions and releases in waves.
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 12; ++i) {
      auto r = edge.request_service(req("I1", "E1"));
      ++requests;
      if (r.is_ok()) live.push_back(r.value().flow);
    }
    for (int i = 0; i < 6 && !live.empty(); ++i) {
      ASSERT_TRUE(edge.release_service(live.back()).is_ok());
      live.pop_back();
    }
  }
  // The hierarchy's point: the overwhelming majority of decisions never
  // touch the central broker.
  EXPECT_GT(edge.local_decisions(), requests * 3 / 4);
  EXPECT_LT(edge.central_contacts(), requests / 4);
}

TEST(Hierarchy, FragmentationCanBlockWhatCentralWouldAdmit) {
  // Quota fragmentation: an edge that admitted and then released a burst of
  // flows retains one chunk of idle headroom (hysteresis). That chunk is
  // invisible to the other edge, which therefore carries less than the
  // centralized broker would admit.
  CentralBroker central(fig8_topology(Fig8Setting::kRateBasedOnly));
  EdgeBroker hog("I1", central, /*chunk=*/500000);
  EdgeBroker other("I2", central, /*chunk=*/100000);
  std::vector<FlowId> burst;
  while (true) {
    auto r = hog.request_service(req("I1", "E1"));
    if (!r.is_ok()) break;
    burst.push_back(r.value().flow);
  }
  EXPECT_EQ(burst.size(), 30u);
  for (FlowId f : burst) ASSERT_TRUE(hog.release_service(f).is_ok());
  // Hysteresis strands exactly one idle chunk at the hog.
  const PathId p1 = central.domain().paths().find("I1", "E1");
  EXPECT_DOUBLE_EQ(hog.quota_held(p1), 500000);
  EXPECT_DOUBLE_EQ(hog.quota_used(p1), 0.0);
  // A centralized broker would now admit 30 flows from I2; the hierarchy
  // admits only what the non-stranded 1.0 Mb/s allows: 20.
  int admitted = 0;
  while (other.request_service(req("I2", "E2")).is_ok()) ++admitted;
  EXPECT_EQ(admitted, 20);
}

}  // namespace
}  // namespace qosbb
