// Tests for the federated control plane: partitioning, intra/inter
// classification, the 2PC prepare/commit path with boundary contingency,
// exact rollback of failed prepares, and cross-federation
// snapshot/restore. All members run in-process; the socket transport is
// exercised by net_test and ci/e2e_federation.sh.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "federation/federated_front.h"
#include "federation/member.h"
#include "federation/partition.h"
#include "topo/builders.h"
#include "topo/routing.h"
#include "vtrs/delay_bounds.h"

namespace qosbb {
namespace {

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

FlowServiceRequest req(const std::string& ingress, const std::string& egress,
                       Seconds bound = 2.0) {
  return FlowServiceRequest{type0(), bound, ingress, egress};
}

/// A federation of in-process members over a chain of dumbbells.
struct Fed {
  explicit Fed(MultiDomainOptions topo_options = {},
               FederatedFrontOptions front_options = {},
               BrokerOptions broker_options = {})
      : plan(partition_multi_domain(multi_domain_topology(topo_options),
                                    topo_options.domains)) {
    for (int d = 0; d < plan.num_domains; ++d) {
      members.push_back(std::make_unique<InProcessMember>(
          d, plan.members[d], broker_options));
    }
    std::vector<FederationMember*> raw;
    for (auto& m : members) raw.push_back(m.get());
    front = std::make_unique<FederatedFront>(plan, raw, front_options);
  }

  std::vector<std::uint32_t> digest_values() {
    auto ds = front->digests();
    EXPECT_TRUE(ds.is_ok()) << ds.status().to_string();
    std::vector<std::uint32_t> out;
    for (const auto& d : ds.value()) out.push_back(d.digest);
    return out;
  }

  FederationPlan plan;
  std::vector<std::unique_ptr<InProcessMember>> members;
  std::unique_ptr<FederatedFront> front;
};

TEST(Partition, MultiDomainIsRouteClosedWithOwnedBoundaries) {
  MultiDomainOptions topo;
  topo.domains = 3;
  topo.edge_pairs = 2;
  const Fed fed(topo);
  const FederationPlan& plan = fed.plan;
  ASSERT_EQ(plan.num_domains, 3);
  ASSERT_EQ(plan.members.size(), 3u);
  // One boundary link per adjacent domain pair, owned upstream.
  ASSERT_EQ(plan.boundaries.size(), 2u);
  for (std::size_t i = 0; i < plan.boundaries.size(); ++i) {
    const BoundaryLink& b = plan.boundaries[i];
    EXPECT_EQ(b.owner, static_cast<int>(i));
    EXPECT_EQ(b.downstream, static_cast<int>(i) + 1);
    EXPECT_EQ(plan.domain_of(b.from), b.owner);
    EXPECT_EQ(plan.domain_of(b.to), b.downstream);
  }
  EXPECT_EQ(plan.domain_of("D0I1"), 0);
  EXPECT_EQ(plan.domain_of("D2E0"), 2);

  // Segmenting the full-span route yields one segment per domain, in path
  // order, with the boundary hop closing each non-final segment.
  const auto route = multi_domain_path(0, 0, 2, 1);
  const auto segments = segment_path(plan, route);
  ASSERT_EQ(segments.size(), 3u);
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(segments[d].domain, d);
    EXPECT_EQ(segments[d].has_boundary, d < 2);
  }
  EXPECT_EQ(segments[0].nodes.front(), "D0I0");
  EXPECT_EQ(segments[0].nodes.back(), "D1L");  // downstream mirror
  EXPECT_EQ(segments[0].boundary_from, "D0R");
  EXPECT_EQ(segments[0].boundary_to, "D1L");
  EXPECT_EQ(segments[2].nodes.front(), "D2L");
  EXPECT_EQ(segments[2].nodes.back(), "D2E1");

  // Route closure: each member routes its segment exactly as the global
  // route does.
  for (const PathSegment& seg : segments) {
    const Graph local = plan.members[seg.domain].to_graph();
    const auto sub = k_shortest_paths(local, seg.nodes.front(),
                                      seg.nodes.back(), 1);
    ASSERT_FALSE(sub.empty());
    EXPECT_EQ(sub.front(), seg.nodes);
  }
}

TEST(Federation, SegmentRateRecoversFlatFormulaAtOneSegment) {
  const DomainSpec spec = multi_domain_topology({});
  const auto route = multi_domain_path(0, 0, 0, 1);  // intra-domain
  const PathAbstract abstract = path_abstract(spec, route);
  const TrafficProfile p = type0();
  const Seconds d_req = 2.0;
  const BitsPerSecond flat = min_rate_rate_only(abstract, p, d_req);
  const BitsPerSecond fed =
      FederatedFront::inter_domain_segment_rate(abstract, p, d_req, 1);
  ASSERT_TRUE(std::isfinite(flat));
  EXPECT_DOUBLE_EQ(fed, std::max(p.rho, flat));
  // Each extra segment strictly raises the pinned rate (one more L/r
  // resynchronization), and an unattainable bound is +infinity.
  const BitsPerSecond fed3 =
      FederatedFront::inter_domain_segment_rate(abstract, p, d_req, 3);
  EXPECT_GT(fed3, fed);
  EXPECT_FALSE(std::isfinite(
      FederatedFront::inter_domain_segment_rate(abstract, p, 1e-9, 1)));
}

TEST(Federation, IntraDomainIsDelegatedWholeAndBitIdentical) {
  Fed fed;
  BandwidthBroker flat(fed.plan.global);

  const auto request = req("D1I0", "D1E1");
  const FederatedOutcome out = fed.front->request_service(request);
  ASSERT_TRUE(out.result.is_ok()) << out.result.status().to_string();
  EXPECT_FALSE(out.inter_domain);

  const auto mirror = flat.request_service(request);
  ASSERT_TRUE(mirror.is_ok());
  EXPECT_EQ(out.result.value().params.rate, mirror.value().params.rate);
  EXPECT_EQ(out.result.value().params.delay, mirror.value().params.delay);
  EXPECT_EQ(out.result.value().e2e_bound, mirror.value().e2e_bound);

  const FederationStats stats = fed.front->stats();
  EXPECT_EQ(stats.intra_requests, 1u);
  EXPECT_EQ(stats.intra_admitted, 1u);
  EXPECT_EQ(stats.inter_requests, 0u);
  EXPECT_EQ(fed.front->live_flows(), 1u);
  // Only the owning member was touched.
  EXPECT_EQ(fed.members[1]->broker().flows().count(), 1u);
  EXPECT_EQ(fed.members[0]->broker().flows().count(), 0u);
  EXPECT_EQ(fed.members[2]->broker().flows().count(), 0u);

  EXPECT_TRUE(fed.front->release_service(out.result.value().flow).is_ok());
  EXPECT_EQ(fed.front->live_flows(), 0u);
  EXPECT_EQ(fed.members[1]->broker().flows().count(), 0u);
}

TEST(Federation, InterDomainBooksPinnedSegmentsAndReleasesContingency) {
  MultiDomainOptions topo;
  topo.domains = 3;
  Fed fed(topo);

  const auto request = req("D0I0", "D2E0", 2.0);
  const auto route = multi_domain_path(0, 0, 2, 0);
  const PathAbstract abstract = path_abstract(fed.plan.global, route);
  const BitsPerSecond r_star = FederatedFront::inter_domain_segment_rate(
      abstract, request.profile, request.e2e_delay_req, 3);
  ASSERT_TRUE(std::isfinite(r_star));

  const FederatedOutcome out = fed.front->request_service(request);
  ASSERT_TRUE(out.result.is_ok()) << out.result.status().to_string();
  EXPECT_TRUE(out.inter_domain);
  EXPECT_EQ(out.segments, 3);
  EXPECT_DOUBLE_EQ(out.segment_rate, r_star);
  EXPECT_GE(out.result.value().e2e_bound, 0.0);
  EXPECT_LE(out.result.value().e2e_bound, request.e2e_delay_req + 1e-9);

  // Every hop of the global route carries exactly r*; the transient
  // boundary contingency is gone after commit (so boundary links carry r*
  // too, not r* + (P − r*)).
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    const std::string name = route[i] + "->" + route[i + 1];
    const int owner = fed.plan.domain_of(route[i]);
    const auto& link = fed.members[owner]->broker().nodes().link(name);
    EXPECT_NEAR(link.reserved(), r_star, 1e-6) << name;
  }

  const FederationStats stats = fed.front->stats();
  EXPECT_EQ(stats.inter_requests, 1u);
  EXPECT_EQ(stats.inter_admitted, 1u);
  EXPECT_EQ(stats.prepares, 3u);
  EXPECT_EQ(stats.prepare_failures, 0u);
  EXPECT_EQ(stats.aborts, 0u);
  EXPECT_EQ(stats.poisoned_txns, 0u);
  EXPECT_EQ(stats.ack_failures, 0u);

  // Release tears down every segment on every member.
  ASSERT_TRUE(fed.front->release_service(out.result.value().flow).is_ok());
  EXPECT_EQ(fed.front->live_flows(), 0u);
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(fed.members[d]->broker().flows().count(), 0u) << "domain " << d;
  }
}

// Satellite regression: a failed inter-domain prepare must leave every
// member broker's digest untouched — including the upstream members whose
// prepares succeeded and were rolled back.
TEST(Federation, FailedPrepareLeavesEveryMemberDigestUntouched) {
  MultiDomainOptions topo;
  topo.domains = 3;
  Fed fed(topo);

  // Saturate domain 2's core link so the LAST segment's prepare fails
  // after domains 0 and 1 already hold theirs.
  const BitsPerSecond filler = 1.45e6;  // core capacity is 1.5e6
  FlowServiceRequest fat;
  fat.profile = TrafficProfile::make(12000, filler, filler, 12000);
  fat.e2e_delay_req = 1e6;
  fat.ingress = "D2I0";
  fat.egress = "D2E0";
  const FederatedOutcome pre = fed.front->request_service(fat);
  ASSERT_TRUE(pre.result.is_ok()) << pre.result.status().to_string();

  // First doomed attempt warms the members' lazy path provisioning (the
  // path MIB is part of the snapshot digest and provisioning legitimately
  // survives a rollback — only reservations must not).
  const FederatedOutcome warm = fed.front->request_service(req("D0I0", "D2E0"));
  ASSERT_FALSE(warm.result.is_ok());
  EXPECT_TRUE(warm.inter_domain);
  EXPECT_EQ(warm.reason, RejectReason::kInsufficientBandwidth) << warm.detail;

  const auto before = fed.digest_values();
  const std::uint64_t flows_before = fed.front->live_flows();

  const FederatedOutcome out = fed.front->request_service(req("D0I0", "D2E0"));
  ASSERT_FALSE(out.result.is_ok());
  EXPECT_TRUE(out.inter_domain);
  EXPECT_EQ(out.reason, RejectReason::kInsufficientBandwidth) << out.detail;

  const auto after = fed.digest_values();
  EXPECT_EQ(before, after)
      << "rolled-back prepare left residue on some member";
  EXPECT_EQ(fed.front->live_flows(), flows_before);

  const FederationStats stats = fed.front->stats();
  EXPECT_EQ(stats.prepare_failures, 2u);
  EXPECT_EQ(stats.aborts, 2u);
  EXPECT_EQ(stats.poisoned_txns, 0u);
  EXPECT_EQ(stats.ack_failures, 0u);
  // Per attempt: domains 0 and 1 prepared and aborted; domain 2 refused.
  EXPECT_EQ(stats.prepares, 6u);

  // The federation remains serviceable: the same span admits once the
  // filler is gone.
  ASSERT_TRUE(fed.front->release_service(pre.result.value().flow).is_ok());
  const FederatedOutcome retry = fed.front->request_service(req("D0I0", "D2E0"));
  EXPECT_TRUE(retry.result.is_ok()) << retry.result.status().to_string();
}

TEST(Federation, DelayBasedHopRejectsInterButServesIntra) {
  MultiDomainOptions topo;
  topo.domains = 3;
  topo.delay_based_domain = 1;
  Fed fed(topo);

  // Crossing the VT-EDF hop needs whole-path knot state no member owns:
  // reject, conservatively, without touching any member.
  const auto before = fed.digest_values();
  const FederatedOutcome inter = fed.front->request_service(req("D0I0", "D2E0"));
  ASSERT_FALSE(inter.result.is_ok());
  EXPECT_EQ(inter.reason, RejectReason::kNoFeasibleRate);
  EXPECT_EQ(fed.digest_values(), before);
  EXPECT_EQ(fed.front->stats().inter_rejected_local, 1u);
  EXPECT_EQ(fed.front->stats().prepares, 0u);

  // Intra-domain requests through the same hop ride the member's full
  // §3.2 pipeline unchanged.
  const FederatedOutcome intra = fed.front->request_service(req("D1I0", "D1E0", 2.44));
  EXPECT_TRUE(intra.result.is_ok()) << intra.result.status().to_string();
}

TEST(Federation, EndpointOutsideFederationAndUnknownReleaseAreClean) {
  Fed fed;
  const FederatedOutcome out = fed.front->request_service(req("D0I0", "NOPE"));
  EXPECT_FALSE(out.result.is_ok());
  EXPECT_EQ(out.reason, RejectReason::kNoPath);
  EXPECT_EQ(fed.front->release_service(1234).code(), StatusCode::kNotFound);
}

TEST(Federation, SnapshotRestoreRoundTripsCoordinatorAndMembers) {
  MultiDomainOptions topo;
  topo.domains = 3;
  Fed fed(topo);

  const FederatedOutcome intra = fed.front->request_service(req("D0I0", "D0E0"));
  ASSERT_TRUE(intra.result.is_ok());
  const FederatedOutcome inter = fed.front->request_service(req("D0I1", "D2E1"));
  ASSERT_TRUE(inter.result.is_ok()) << inter.result.status().to_string();

  const auto at_snapshot = fed.digest_values();
  auto frame = fed.front->snapshot();
  ASSERT_TRUE(frame.is_ok()) << frame.status().to_string();

  // Mutate past the checkpoint: one more admission, one release.
  const FederatedOutcome extra = fed.front->request_service(req("D1I0", "D1E0"));
  ASSERT_TRUE(extra.result.is_ok());
  ASSERT_TRUE(fed.front->release_service(intra.result.value().flow).is_ok());
  EXPECT_NE(fed.digest_values(), at_snapshot);

  ASSERT_TRUE(fed.front->restore(frame.value()).is_ok());
  EXPECT_EQ(fed.digest_values(), at_snapshot);
  EXPECT_EQ(fed.front->live_flows(), 2u);

  // The restored coordinator still maps federation ids to the right
  // member flows: both pre-snapshot reservations release cleanly.
  EXPECT_TRUE(fed.front->release_service(intra.result.value().flow).is_ok());
  EXPECT_TRUE(fed.front->release_service(inter.result.value().flow).is_ok());
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(fed.members[d]->broker().flows().count(), 0u) << "domain " << d;
  }

  // Hostile frames are rejected without touching state.
  WireBuffer junk = frame.value();
  junk[0] ^= 0xff;
  EXPECT_FALSE(fed.front->restore(junk).is_ok());
  WireBuffer truncated(frame.value().begin(), frame.value().end() - 1);
  EXPECT_FALSE(fed.front->restore(truncated).is_ok());
}

}  // namespace
}  // namespace qosbb
