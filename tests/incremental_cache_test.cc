// Property tests for the incremental MIB caches (PR: admission hot path).
//
// The cached EDF knot-prefix arrays (LinkQosState::knot_prefixes) and the
// cached per-path bottleneck C_res^P (PathMib::min_residual) must be
// indistinguishable from from-scratch recomputation after ANY churn history
// of admissions, releases, renegotiations, and class joins/leaves across
// mixed paths. The lazy rebuild performs the exact arithmetic of the
// reference walk, so all comparisons here are EXACT (EXPECT_EQ on doubles),
// not approximate — any drift is a bug in the invalidation logic.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/broker.h"
#include "core/perflow_admission.h"
#include "topo/fig8.h"
#include "util/rng.h"

namespace qosbb {
namespace {

TrafficProfile random_profile(Rng& rng) {
  const double l_max = 12000.0;
  const double rho = rng.uniform(20000.0, 60000.0);
  const double peak = rho * rng.uniform(1.2, 2.5);
  const double sigma = l_max + rng.uniform(10000.0, 60000.0);
  return TrafficProfile::make(sigma, rho, peak, l_max);
}

/// From-scratch (d^k, S^k) reference: one ascending walk over the raw
/// edf_buckets() multiset, independent of the knot cache.
std::vector<std::pair<Seconds, double>> reference_knots(
    const LinkQosState& link) {
  std::vector<std::pair<Seconds, double>> out;
  double rate_sum = 0.0;
  double fixed_sum = 0.0;
  for (const auto& [d, b] : link.edf_buckets()) {
    rate_sum += b.sum_rate;
    fixed_sum += b.sum_l - b.sum_rate * d;
    out.emplace_back(d, link.capacity() * d - (rate_sum * d + fixed_sum));
  }
  return out;
}

/// Every delay-based link's cached knot array must EXACTLY equal the
/// reference recomputation, and every provisioned path's cached C_res^P
/// must EXACTLY equal the uncached evaluation.
void expect_caches_exact(const BandwidthBroker& bb, const DomainSpec& spec) {
  for (const auto& l : spec.links) {
    const LinkQosState& link = bb.nodes().link(l.from + "->" + l.to);
    if (!link.delay_based()) continue;
    const auto cached = link.residual_service_at_knots();
    const auto ref = reference_knots(link);
    ASSERT_EQ(cached.size(), ref.size()) << link.name();
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(cached[i].first, ref[i].first) << link.name() << " knot " << i;
      EXPECT_EQ(cached[i].second, ref[i].second)
          << link.name() << " S at knot " << i;
    }
  }
  for (PathId id = 0; id < static_cast<PathId>(bb.paths().path_count());
       ++id) {
    EXPECT_EQ(bb.paths().min_residual(id, bb.nodes()),
              bb.paths().min_residual_uncached(id, bb.nodes()))
        << "path " << id;
  }
}

/// Force every delay-based link's knot cache dirty without changing the MIB:
/// add then remove a sentinel entry at a delay beyond any real knot. The
/// bucket is created and erased, leaving edf_buckets() bit-identical, but
/// the dirty flag makes the next read a full from-scratch rebuild.
void force_dirty_all_knot_caches(BandwidthBroker& bb, const DomainSpec& spec) {
  constexpr Seconds kSentinelDelay = 1.0e6;
  for (const auto& l : spec.links) {
    LinkQosState& link = bb.nodes().link(l.from + "->" + l.to);
    if (!link.delay_based()) continue;
    link.add_edf_entry(1.0, kSentinelDelay, 1.0);
    link.remove_edf_entry(1.0, kSentinelDelay, 1.0);
  }
}

class IncrementalCacheChurn : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalCacheChurn, CachesMatchFromScratchRecomputation) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const DomainSpec spec = fig8_topology(Fig8Setting::kMixed);
  BandwidthBroker bb(spec, BrokerOptions{ContingencyMethod::kFeedback});
  const ClassId cls = bb.define_class(2.19, 0.10, "cls");

  std::vector<FlowId> per_flow, micro;
  Seconds now = 0.0;
  for (int round = 0; round < 60; ++round) {
    now += 1.0;
    switch (rng.uniform_int(0, 4)) {
      case 0: {  // per-flow admission on a random endpoint pair
        const bool s1 = rng.bernoulli(0.5);
        auto res = bb.request_service(
            {random_profile(rng), rng.uniform(1.8, 4.0),
             s1 ? "I1" : "I2", s1 ? "E1" : "E2"},
            now);
        if (res.is_ok()) per_flow.push_back(res.value().flow);
        break;
      }
      case 1: {  // class-based join (books through the same links)
        auto j = bb.request_class_service(
            cls, TrafficProfile::make(60000, 50000, 100000, 12000), "I1",
            "E1", now, 0.0);
        if (j.admitted) {
          micro.push_back(j.microflow);
          if (j.grant != kInvalidGrantId) {
            bb.expire_contingency(j.grant, j.contingency_expires_at);
          }
        }
        break;
      }
      case 2: {  // per-flow release
        if (per_flow.empty()) break;
        ASSERT_TRUE(bb.release_service(per_flow.back()).is_ok());
        per_flow.pop_back();
        break;
      }
      case 3: {  // renegotiation: unbook + re-admit + rebook, same flow id
        if (per_flow.empty()) break;
        const std::size_t idx = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(per_flow.size()) - 1));
        (void)bb.renegotiate_service(per_flow[idx], rng.uniform(1.8, 4.0),
                                     now);
        break;
      }
      default: {  // class-based leave
        if (micro.empty()) break;
        auto l = bb.leave_class_service(micro.back(), now, 0.0);
        ASSERT_TRUE(l.is_ok());
        if (l.value().grant != kInvalidGrantId) {
          bb.expire_contingency(l.value().grant,
                                l.value().contingency_expires_at);
        }
        micro.pop_back();
        break;
      }
    }
    expect_caches_exact(bb, spec);
  }

  // Cached vs from-scratch admission decision: probe on warm caches, force
  // a full rebuild of every knot cache, probe again. The §3 algorithms are
  // deterministic in the knot arrays and C_res^P, so the two outcomes must
  // be bit-identical.
  const PathId path = bb.paths().find("I1", "E1");
  ASSERT_NE(path, kInvalidPathId);
  const TrafficProfile probe = TrafficProfile::make(60000, 50000, 100000,
                                                    12000);
  const AdmissionOutcome warm =
      admit_per_flow(bb.path_view(path), probe, 2.19);
  force_dirty_all_knot_caches(bb, spec);
  const AdmissionOutcome cold =
      admit_per_flow(bb.path_view(path), probe, 2.19);
  EXPECT_EQ(warm.admitted, cold.admitted);
  EXPECT_EQ(warm.reason, cold.reason);
  EXPECT_EQ(warm.params.rate, cold.params.rate);
  EXPECT_EQ(warm.params.delay, cold.params.delay);
  EXPECT_EQ(warm.e2e_bound, cold.e2e_bound);
  expect_caches_exact(bb, spec);

  // Direct link mutation (no broker involvement) must be picked up by the
  // version-counter revalidation of the path cache.
  LinkQosState& mutated = bb.nodes().link(spec.links.front().from + "->" +
                                          spec.links.front().to);
  ASSERT_TRUE(mutated.reserve(1000.0).is_ok());
  for (PathId id = 0; id < static_cast<PathId>(bb.paths().path_count());
       ++id) {
    EXPECT_EQ(bb.paths().min_residual(id, bb.nodes()),
              bb.paths().min_residual_uncached(id, bb.nodes()))
        << "path " << id << " after direct mutation";
  }
  mutated.release(1000.0);
  expect_caches_exact(bb, spec);
}

TEST_P(IncrementalCacheChurn, SnapshotRestoreRebuildsConsistentCaches) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const DomainSpec spec = fig8_topology(Fig8Setting::kMixed);
  BandwidthBroker bb(spec, BrokerOptions{ContingencyMethod::kFeedback});

  std::vector<FlowId> per_flow;
  Seconds now = 0.0;
  for (int round = 0; round < 40; ++round) {
    now += 1.0;
    if (rng.bernoulli(0.65) || per_flow.empty()) {
      const bool s1 = rng.bernoulli(0.5);
      auto res = bb.request_service(
          {random_profile(rng), rng.uniform(1.8, 4.0),
           s1 ? "I1" : "I2", s1 ? "E1" : "E2"},
          now);
      if (res.is_ok()) per_flow.push_back(res.value().flow);
    } else {
      ASSERT_TRUE(bb.release_service(per_flow.back()).is_ok());
      per_flow.pop_back();
    }
  }

  auto frame = bb.snapshot();
  ASSERT_TRUE(frame.is_ok()) << frame.status().to_string();
  auto restored = BandwidthBroker::restore(
      spec, BrokerOptions{ContingencyMethod::kFeedback}, frame.value());
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  BandwidthBroker& rb = *restored.value();

  // The restored broker's caches must be internally exact (its own
  // from-scratch reference), and match the original's observable state to
  // float tolerance (restore re-books in flow-id order, so sums may differ
  // in the last ulp).
  expect_caches_exact(rb, spec);
  for (const auto& l : spec.links) {
    const std::string name = l.from + "->" + l.to;
    const LinkQosState& a = bb.nodes().link(name);
    const LinkQosState& b = rb.nodes().link(name);
    if (!a.delay_based()) continue;
    const auto ka = a.residual_service_at_knots();
    const auto kb = b.residual_service_at_knots();
    ASSERT_EQ(ka.size(), kb.size()) << name;
    for (std::size_t i = 0; i < ka.size(); ++i) {
      EXPECT_EQ(ka[i].first, kb[i].first) << name << " knot " << i;
      EXPECT_NEAR(ka[i].second, kb[i].second, 1e-6)
          << name << " S at knot " << i;
    }
  }
  for (PathId id = 0; id < static_cast<PathId>(rb.paths().path_count());
       ++id) {
    EXPECT_EQ(rb.paths().min_residual(id, rb.nodes()),
              rb.paths().min_residual_uncached(id, rb.nodes()))
        << "restored path " << id;
  }

  // Identical next decision on a probe request.
  const TrafficProfile probe =
      TrafficProfile::make(60000, 50000, 100000, 12000);
  auto a = bb.request_service({probe, 2.19, "I1", "E1"}, now + 1.0);
  auto b = rb.request_service({probe, 2.19, "I1", "E1"}, now + 1.0);
  ASSERT_EQ(a.is_ok(), b.is_ok());
  if (a.is_ok()) {
    EXPECT_NEAR(a.value().params.rate, b.value().params.rate, 1e-6);
    EXPECT_NEAR(a.value().params.delay, b.value().params.delay, 1e-9);
  }
}

// Regression guard for stale-cache-after-restore: snapshot a broker, keep
// mutating the ORIGINAL, then restore — the restored broker's caches must
// reflect the snapshot-time state (internally exact against its own
// from-scratch reference), not the mutations that happened after the
// frame was taken, and must stay exact under further churn of their own.
TEST_P(IncrementalCacheChurn, RestoredCachesAreNotStale) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 3);
  const DomainSpec spec = fig8_topology(Fig8Setting::kMixed);
  BandwidthBroker bb(spec, BrokerOptions{ContingencyMethod::kFeedback});

  std::vector<FlowId> per_flow;
  Seconds now = 0.0;
  for (int round = 0; round < 25; ++round) {
    now += 1.0;
    auto res = bb.request_service({random_profile(rng), rng.uniform(1.8, 4.0),
                                   rng.bernoulli(0.5) ? "I1" : "I2",
                                   rng.bernoulli(0.5) ? "E1" : "E2"},
                                  now);
    if (res.is_ok()) per_flow.push_back(res.value().flow);
  }
  // Warm every cache so the snapshot is taken from cached (not freshly
  // rebuilt) state — the interesting starting point for staleness bugs.
  expect_caches_exact(bb, spec);

  auto frame = bb.snapshot();
  ASSERT_TRUE(frame.is_ok()) << frame.status().to_string();

  // Mutate the original AFTER the frame: the restored broker must not see
  // any of this, cached or otherwise.
  const BitsPerSecond reserved_before =
      bb.nodes().link("R3->R4").reserved();
  for (int round = 0; round < 10 && !per_flow.empty(); ++round) {
    ASSERT_TRUE(bb.release_service(per_flow.back()).is_ok());
    per_flow.pop_back();
  }

  auto restored = BandwidthBroker::restore(
      spec, BrokerOptions{ContingencyMethod::kFeedback}, frame.value());
  ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
  BandwidthBroker& rb = *restored.value();

  // Restored caches are exact against their own from-scratch reference...
  expect_caches_exact(rb, spec);
  // ...and reflect snapshot-time state, not the post-snapshot releases.
  EXPECT_NEAR(rb.nodes().link("R3->R4").reserved(), reserved_before, 1e-6);
  EXPECT_GT(rb.nodes().link("R3->R4").reserved(),
            bb.nodes().link("R3->R4").reserved());

  // Further churn on the restored broker keeps its caches exact (its
  // version counters and dirty flags restarted from scratch).
  std::vector<FlowId> rb_flows;
  for (int round = 0; round < 20; ++round) {
    now += 1.0;
    if (rng.bernoulli(0.6) || rb_flows.empty()) {
      auto res = rb.request_service(
          {random_profile(rng), rng.uniform(1.8, 4.0),
           rng.bernoulli(0.5) ? "I1" : "I2",
           rng.bernoulli(0.5) ? "E1" : "E2"},
          now);
      if (res.is_ok()) rb_flows.push_back(res.value().flow);
    } else {
      ASSERT_TRUE(rb.release_service(rb_flows.back()).is_ok());
      rb_flows.pop_back();
    }
    expect_caches_exact(rb, spec);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalCacheChurn,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace qosbb
