// Differential fuzz suite: broker fast path vs. the from-scratch oracle
// (core/oracle.h) under long randomized operation sequences. See
// tools/fuzz_harness.h for the operation model. The seed set here is the
// repository's standing corpus — CI runs it on every configuration of the
// build matrix, sanitized included.

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "core/broker.h"
#include "core/oracle.h"
#include "tools/fuzz_harness.h"
#include "topo/fig8.h"

namespace qosbb {
namespace {

using fuzz::FuzzConfig;
using fuzz::FuzzResult;
using fuzz::FuzzTopology;

class FuzzDifferential
    : public ::testing::TestWithParam<std::tuple<int, FuzzTopology>> {};

// The acceptance corpus: 10 seeds × 2000 ops on every topology, zero
// divergences allowed. A failure prints the full divergence description
// plus a minimized replayable repro.
TEST_P(FuzzDifferential, BrokerMatchesOracle) {
  FuzzConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(std::get<0>(GetParam()));
  cfg.ops = 2000;
  cfg.topology = std::get<1>(GetParam());
  const FuzzResult result = fuzz::run_fuzz(cfg);
  ASSERT_TRUE(result.ok) << result.summary() << "\n--- minimized repro ---\n"
                         << fuzz::dump_repro(
                                cfg, fuzz::minimize(cfg, result.ops));
  EXPECT_EQ(result.ops_executed, cfg.ops);
  // The corpus must actually exercise the broker, not just bounce off it —
  // including the durability layer (crash/recover and duplicate delivery).
  EXPECT_GT(result.admits, 0);
  EXPECT_GT(result.rejects, 0);
  EXPECT_GT(result.snapshots, 0);
  EXPECT_GT(result.recoveries, 0);
  EXPECT_GT(result.redeliveries, 0);
  EXPECT_GT(result.batch_admits, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FuzzDifferential,
    ::testing::Combine(::testing::Range(1, 11),
                       ::testing::Values(FuzzTopology::kFig8Mixed,
                                         FuzzTopology::kFig8RateOnly,
                                         FuzzTopology::kDumbbellEdf)));

// Preemption + widest-residual path selection: the decision comparison is
// necessarily looser (see harness), but state equivalence stays strict.
TEST(FuzzDifferentialConfigs, PreemptionAndWidestResidual) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    FuzzConfig cfg;
    cfg.seed = seed;
    cfg.ops = 1000;
    cfg.topology = FuzzTopology::kFig8Mixed;
    cfg.allow_preemption = true;
    cfg.widest_residual = true;
    const FuzzResult result = fuzz::run_fuzz(cfg);
    ASSERT_TRUE(result.ok) << "seed " << seed << ": " << result.summary();
  }
}

// CANARY (acceptance criterion): an intentionally-broken cache
// invalidation — the knot-cache dirty flag silently dropped after every
// operation — must be caught by the harness within the default seed set.
// If this test ever fails, the differential harness has lost its teeth.
TEST(FuzzDifferentialCanary, MissedKnotInvalidationIsCaught) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    FuzzConfig cfg;
    cfg.seed = seed;
    cfg.ops = 2000;
    cfg.topology = FuzzTopology::kFig8Mixed;
    cfg.sabotage_knot_cache = true;
    const FuzzResult result = fuzz::run_fuzz(cfg);
    EXPECT_FALSE(result.ok)
        << "seed " << seed
        << ": sabotaged invalidation went undetected for " << cfg.ops
        << " ops";
    EXPECT_NE(result.divergence.find("knot"), std::string::npos)
        << result.divergence;
  }
}

// Direct canary at the MIB level: a stale knot cache (dirty flag dropped
// between an EDF mutation and the read) must fail oracle_check_state.
TEST(FuzzDifferentialCanary, OracleStateCheckFlagsStaleKnotCache) {
  const DomainSpec spec = fig8_topology(Fig8Setting::kMixed);
  BandwidthBroker bb(spec);
  ASSERT_TRUE(bb.provision_path("I2", "E2").is_ok());
  auto res = bb.request_service(
      {TrafficProfile::make(60000, 50000, 100000, 12000), 2.19, "I2", "E2"},
      0.0);
  ASSERT_TRUE(res.is_ok());
  ASSERT_TRUE(oracle_check_state(bb).ok);

  LinkQosState& link = bb.nodes().link("R3->R4");
  (void)link.knot_prefixes();  // warm + clean
  link.add_edf_entry(5000.0, 0.5, 9000.0);  // sets the dirty flag...
  link.testonly_mark_knots_clean();         // ...which a buggy path drops
  const OracleStateReport report = oracle_check_state(bb);
  EXPECT_FALSE(report.ok);
  link.remove_edf_entry(5000.0, 0.5, 9000.0);
  EXPECT_TRUE(oracle_check_state(bb).ok);
}

// Batched admission, sequential differential: every kBatchAdmit op runs
// the batch against a journal-clone executing its members one at a time in
// batch_grouped_order, requiring identical per-member decisions, identical
// state digests, AND byte-identical journal contents (the group frame is
// the same records as member-at-a-time appends, in one flush). batch_heavy
// widens the slice to ~24% of the mix.
TEST(FuzzBatched, BatchHeavyMixMatchesOneAtATime) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    for (const FuzzTopology topo :
         {FuzzTopology::kFig8Mixed, FuzzTopology::kFig8RateOnly,
          FuzzTopology::kDumbbellEdf}) {
      FuzzConfig cfg;
      cfg.seed = seed;
      cfg.ops = 1000;
      cfg.topology = topo;
      cfg.batch_heavy = true;
      const FuzzResult result = fuzz::run_fuzz(cfg);
      ASSERT_TRUE(result.ok) << "seed " << seed << ": " << result.summary();
      EXPECT_GT(result.batch_admits, 100) << "seed " << seed;
    }
  }
}

// Batched admission through the CONCURRENT front: submit_batch must be
// bit-identical to the monolith executing the members one at a time, and
// the utilization pre-filter must agree with the full admission test on
// every prediction (asserted inside run_fuzz_threaded).
TEST(FuzzBatched, ThreadedBatchHeavyMatchesMonolith) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    for (const FuzzTopology topo :
         {FuzzTopology::kFig8Mixed, FuzzTopology::kFig8RateOnly,
          FuzzTopology::kDumbbellEdf}) {
      FuzzConfig cfg;
      cfg.seed = seed;
      cfg.ops = 1000;
      cfg.topology = topo;
      cfg.batch_heavy = true;
      const FuzzResult result = fuzz::run_fuzz_threaded(cfg, 4);
      ASSERT_TRUE(result.ok) << "seed " << seed << ": " << result.summary();
      EXPECT_GT(result.batch_admits, 100) << "seed " << seed;
    }
  }
}

// Crash-point sweep: recover at every record boundary, inside every
// record, and under single-bit corruption; zero divergences allowed. With
// kBatchAdmit in the mix, multi-record group frames are cut at EVERY byte
// (hence the much larger mid-cut floor).
TEST(FuzzCrashSweep, EveryCrashPointRecoversExactly) {
  for (const FuzzTopology topo :
       {FuzzTopology::kFig8Mixed, FuzzTopology::kDumbbellEdf}) {
    fuzz::FuzzConfig cfg;
    cfg.seed = 7;
    cfg.ops = 150;
    cfg.topology = topo;
    const fuzz::CrashSweepResult sweep = fuzz::run_crash_sweep(cfg);
    EXPECT_TRUE(sweep.ok) << sweep.summary();
    EXPECT_GT(sweep.boundaries, 0);
    EXPECT_GT(sweep.mid_cuts, 1000);
    EXPECT_GT(sweep.bit_flips, 0);
    EXPECT_GT(sweep.redeliveries, 0);
  }
}

// CANARY (acceptance criterion): a silently dropped journal append — the
// broker acknowledges an op that never reached the log — must be detected
// by recovery in every run. If this fails, a crash could silently lose an
// acknowledged reservation.
TEST(FuzzDifferentialCanary, DroppedJournalAppendIsCaught) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    FuzzConfig cfg;
    cfg.seed = seed;
    cfg.ops = 400;
    cfg.topology = FuzzTopology::kFig8Mixed;
    cfg.sabotage_drop_append = true;
    const FuzzResult result = fuzz::run_fuzz(cfg);
    EXPECT_FALSE(result.ok)
        << "seed " << seed << ": dropped append went undetected for "
        << cfg.ops << " ops";
    EXPECT_NE(result.divergence.find("recovery"), std::string::npos)
        << result.divergence;
  }
}

// Repro files must round-trip exactly: %.17g serialization preserves every
// double bit-for-bit, and replay of a dumped run reproduces its result.
TEST(FuzzRepro, DumpParseReplayRoundTrip) {
  FuzzConfig cfg;
  cfg.seed = 42;
  cfg.ops = 300;
  cfg.topology = FuzzTopology::kDumbbellEdf;
  const FuzzResult first = fuzz::run_fuzz(cfg);
  ASSERT_TRUE(first.ok) << first.summary();

  const std::string text = fuzz::dump_repro(cfg, first.ops);
  auto parsed = fuzz::parse_repro(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first.seed, cfg.seed);
  EXPECT_EQ(parsed->first.topology, cfg.topology);
  ASSERT_EQ(parsed->second.size(), first.ops.size());
  for (std::size_t i = 0; i < first.ops.size(); ++i) {
    EXPECT_EQ(parsed->second[i].kind, first.ops[i].kind) << "op " << i;
    EXPECT_EQ(parsed->second[i].sigma, first.ops[i].sigma) << "op " << i;
    EXPECT_EQ(parsed->second[i].d_req, first.ops[i].d_req) << "op " << i;
    EXPECT_EQ(parsed->second[i].target, first.ops[i].target) << "op " << i;
  }
  const FuzzResult second = fuzz::replay(parsed->first, parsed->second);
  EXPECT_TRUE(second.ok);
  EXPECT_EQ(second.admits, first.admits);
  EXPECT_EQ(second.snapshots, first.snapshots);
}

// Minimization must shrink a diverging sequence and keep it diverging.
TEST(FuzzRepro, MinimizationPreservesDivergence) {
  FuzzConfig cfg;
  cfg.seed = 1;
  cfg.ops = 400;
  cfg.topology = FuzzTopology::kFig8Mixed;
  cfg.sabotage_knot_cache = true;  // guaranteed, early divergence
  const FuzzResult result = fuzz::run_fuzz(cfg);
  ASSERT_FALSE(result.ok);
  const auto minimized = fuzz::minimize(cfg, result.ops);
  ASSERT_FALSE(minimized.empty());
  EXPECT_LE(minimized.size(),
            static_cast<std::size_t>(result.divergence_op) + 1);
  EXPECT_FALSE(fuzz::replay(cfg, minimized).ok);
}

// The per-flow oracle agrees with the §3 fast path on a fresh broker too —
// a direct unit-level check independent of the fuzz loop.
TEST(OracleUnit, AgreesOnFreshMixedPath) {
  const DomainSpec spec = fig8_topology(Fig8Setting::kMixed);
  BandwidthBroker bb(spec);
  auto path = bb.provision_path("I2", "E2");
  ASSERT_TRUE(path.is_ok());
  const TrafficProfile probe = TrafficProfile::make(60000, 50000, 100000,
                                                    12000);
  const AdmissionOutcome fast =
      admit_per_flow(bb.path_view(path.value()), probe, 2.19);
  const AdmissionOutcome oracle =
      oracle_admit_per_flow(bb.paths(), bb.nodes(), path.value(), probe,
                            2.19);
  std::string why;
  EXPECT_TRUE(oracle_outcomes_equivalent(fast, oracle, &why)) << why;
  ASSERT_TRUE(fast.admitted);
  EXPECT_EQ(fast.params.rate, oracle.params.rate);
  EXPECT_EQ(fast.params.delay, oracle.params.delay);
}

}  // namespace
}  // namespace qosbb
