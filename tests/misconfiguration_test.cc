// Negative end-to-end tests: when the data plane DISAGREES with the control
// plane — an unreserved sender, inflated packet state, a mis-configured
// conditioner — the VTRS property auditors must light up. (The paper's
// guarantees are conditional on edge conditioning; these tests prove the
// instrumentation catches the conditions being broken, which is what an
// operator would alarm on.)

#include <gtest/gtest.h>

#include <memory>

#include "core/broker.h"
#include "topo/fig8.h"
#include "vtrs/provisioned_network.h"

namespace qosbb {
namespace {

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

/// Fill the S1 path with legitimate, BB-admitted greedy flows.
std::vector<Reservation> fill_legit(BandwidthBroker& bb,
                                    ProvisionedNetwork& pn,
                                    Seconds horizon) {
  std::vector<Reservation> out;
  while (true) {
    auto res = bb.request_service({type0(), 2.44, "I1", "E1"});
    if (!res.is_ok()) break;
    const Reservation& r = res.value();
    pn.install_flow(r.flow, fig8_path_s1(), r.params.rate, r.params.delay);
    pn.attach_source(r.flow, std::make_unique<GreedySource>(type0(), 0.0),
                     r.flow, horizon)
        .start();
    pn.expect_bounds(r.flow, 1e9, r.e2e_bound);
    out.push_back(r);
  }
  return out;
}

TEST(Misconfiguration, UnreservedSenderTripsTheGuaranteeAudit) {
  // An attacker injects a full extra flow's worth of traffic with forged
  // packet state (claiming a rate the BB never granted). The aggregate now
  // exceeds capacity; the per-hop guarantee audit must fire.
  const DomainSpec spec = fig8_topology(Fig8Setting::kRateBasedOnly);
  BandwidthBroker bb(spec);
  ProvisionedNetwork pn(spec);
  const Seconds horizon = 30.0;
  auto legit = fill_legit(bb, pn, horizon);
  ASSERT_EQ(legit.size(), 30u);

  // Rogue flow 999: never admitted, but wired straight into the ingress
  // with forged ⟨r = 100 kb/s⟩ state at greedy load.
  const FlowId rogue = 999;
  pn.install_flow(rogue, fig8_path_s1(), 100000, 0.0);
  pn.attach_source(rogue, std::make_unique<GreedySource>(type0(), 0.0),
                   rogue, horizon)
      .start();

  pn.run_until(horizon + 10.0);
  // 1.5 Mb/s of legitimate load + ~50 kb/s of theft: the schedulers cannot
  // honor every stamped deadline any more.
  EXPECT_GT(pn.vtrs().total_guarantee_violations(), 0u);
}

TEST(Misconfiguration, InflatedPacketStateTripsTheSpacingAudit) {
  // A conditioner shapes at the granted 50 kb/s but stamps packets with a
  // forged 100 kb/s rate (halving their virtual deadlines to jump queues).
  // Virtual spacing — ω̃ must advance by L/r_claimed — is then violated at
  // the first hop. Craft the packets by hand to simulate the forgery.
  const DomainSpec spec = fig8_topology(Fig8Setting::kRateBasedOnly);
  ProvisionedNetwork pn(spec);
  struct Null final : PacketSink {
    void deliver(Seconds, const Packet&) override {}
  } sink;
  pn.network().install_flow_path(7, fig8_path_s1(), &sink);
  for (int k = 0; k < 20; ++k) {
    const Seconds t = 0.24 * k;  // honest 50 kb/s spacing...
    pn.events().schedule(t, [&pn, t, k] {
      Packet p;
      p.flow = 7;
      p.seq = static_cast<std::uint64_t>(k);
      p.size = 12000;
      p.source_time = p.edge_time = p.hop_arrival = t;
      p.state.rate = 100000;  // ...with a forged rate claim
      p.state.virtual_time = t;
      pn.network().node("I1").receive(t, p);
    });
  }
  pn.run_until(20.0);
  // ω̃ stamped by the forger advances at the honest pace (0.24 s), which is
  // fine for r = 50k but violates spacing for the claimed r = 100k?
  // No: spacing requires ω̃^{k+1} − ω̃^k >= L/r_claimed = 0.12 <= 0.24 — the
  // forgery PASSES spacing at hop 1. But the concatenation rule compounds
  // the under-sized deadline downstream: the per-hop guarantee still holds
  // only because the path is underloaded here. The detectable signature of
  // this forgery is the inflated claimed rate vs the BB's records — an
  // audit the broker side runs. What the data plane CAN detect is spacing
  // forged BELOW the claimed rate:
  EXPECT_EQ(pn.vtrs().total_spacing_violations(), 0u);

  // Same sender now bursts back-to-back (0.01 s apart) while claiming
  // 100 kb/s — spacing violation, caught at once.
  for (int k = 0; k < 20; ++k) {
    const Seconds t = 20.0 + 0.01 * k;
    pn.events().schedule(t, [&pn, t, k] {
      Packet p;
      p.flow = 7;
      p.seq = static_cast<std::uint64_t>(100 + k);
      p.size = 12000;
      p.source_time = p.edge_time = p.hop_arrival = t;
      p.state.rate = 100000;
      p.state.virtual_time = t;
      pn.network().node("I1").receive(t, p);
    });
  }
  pn.run_until(40.0);
  EXPECT_GT(pn.vtrs().total_spacing_violations(), 0u);
}

TEST(Misconfiguration, ConditionerRateAboveGrantIsCaughtUnderLoad) {
  // The edge conditioner is configured at twice the granted rate (a COPS
  // push gone wrong) while the path is otherwise full: the extra injection
  // overloads the core and the guarantee audit fires.
  const DomainSpec spec = fig8_topology(Fig8Setting::kRateBasedOnly);
  BandwidthBroker bb(spec);
  ProvisionedNetwork pn(spec);
  const Seconds horizon = 30.0;
  // 29 correct flows.
  std::vector<Reservation> legit;
  for (int i = 0; i < 29; ++i) {
    auto res = bb.request_service({type0(), 2.44, "I1", "E1"});
    ASSERT_TRUE(res.is_ok());
    pn.install_flow(res.value().flow, fig8_path_s1(),
                    res.value().params.rate, 0.0);
    pn.attach_source(res.value().flow,
                     std::make_unique<GreedySource>(type0(), 0.0),
                     res.value().flow, horizon)
        .start();
    legit.push_back(res.value());
  }
  // The 30th is granted 50 kb/s but its conditioner is configured at
  // 150 kb/s and fed enough traffic to use it.
  auto res = bb.request_service({type0(), 2.44, "I1", "E1"});
  ASSERT_TRUE(res.is_ok());
  pn.install_flow(res.value().flow, fig8_path_s1(), /*rate=*/150000, 0.0);
  const TrafficProfile fat =
      TrafficProfile::make(180000, 150000, 300000, 12000);
  pn.attach_source(res.value().flow,
                   std::make_unique<GreedySource>(fat, 0.0),
                   res.value().flow, horizon)
      .start();

  pn.run_until(horizon + 10.0);
  EXPECT_GT(pn.vtrs().total_guarantee_violations(), 0u);
}

TEST(Misconfiguration, HonestDomainStaysClean) {
  // Control: the identical setup minus the misbehavior reports zero
  // violations — the alarms in the tests above are real signals.
  const DomainSpec spec = fig8_topology(Fig8Setting::kRateBasedOnly);
  BandwidthBroker bb(spec);
  ProvisionedNetwork pn(spec);
  auto legit = fill_legit(bb, pn, 30.0);
  ASSERT_EQ(legit.size(), 30u);
  pn.run_until(40.0);
  EXPECT_EQ(pn.vtrs().total_guarantee_violations(), 0u);
  EXPECT_EQ(pn.vtrs().total_spacing_violations(), 0u);
  EXPECT_EQ(pn.vtrs().total_reality_check_violations(), 0u);
}

}  // namespace
}  // namespace qosbb
