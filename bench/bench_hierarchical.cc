// Ablation for the two-level BB hierarchy (the paper's Section-6 future
// work): how much central-broker load does edge-local admission remove, and
// what does quota fragmentation cost in carried flows?
//
//  * BM_CentralizedAdmitRelease vs BM_HierarchicalAdmitRelease — per-request
//    cost, with the hierarchy's central-contact ratio as a counter.
//  * The main() epilogue prints a capacity table: flows carried at
//    saturation, centralized vs hierarchical, across lease chunk sizes —
//    the fragmentation cost in the worst (adversarial churn) pattern.

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/hierarchical.h"
#include "topo/fig8.h"
#include "util/table.h"

namespace {

using namespace qosbb;

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

FlowServiceRequest s1_request() {
  return FlowServiceRequest{type0(), 2.44, "I1", "E1"};
}

void BM_CentralizedAdmitRelease(benchmark::State& state) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly));
  for (auto _ : state) {
    auto res = bb.request_service(s1_request());
    if (!res.is_ok()) {
      state.SkipWithError("admission failed");
      return;
    }
    // qosbb-lint: allow(discarded-status)
    (void)bb.release_service(res.value().flow);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CentralizedAdmitRelease);

void BM_HierarchicalAdmitRelease(benchmark::State& state) {
  const double chunk = static_cast<double>(state.range(0));
  CentralBroker central(fig8_topology(Fig8Setting::kRateBasedOnly));
  EdgeBroker edge("I1", central, chunk);
  std::uint64_t contacts_before = 0;
  for (auto _ : state) {
    auto res = edge.request_service(s1_request());
    if (!res.is_ok()) {
      state.SkipWithError("admission failed");
      return;
    }
    // qosbb-lint: allow(discarded-status)
    (void)edge.release_service(res.value().flow);
  }
  (void)contacts_before;
  state.SetItemsProcessed(state.iterations());
  state.counters["central_contacts/req"] = benchmark::Counter(
      static_cast<double>(edge.central_contacts()),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_HierarchicalAdmitRelease)
    ->Arg(100000)
    ->Arg(500000)
    ->Arg(1500000);

void print_fragmentation_table() {
  using qosbb::TextTable;
  TextTable table({"lease chunk (b/s)", "carried flows (hier)",
                   "carried flows (central)", "loss", "ledger calls"});
  for (double chunk : {50000.0, 100000.0, 250000.0, 500000.0}) {
    CentralBroker central(fig8_topology(Fig8Setting::kRateBasedOnly));
    EdgeBroker e1("I1", central, chunk);
    EdgeBroker e2("I2", central, chunk);
    // Adversarial churn: each edge bursts up, releases half, bursts again.
    std::vector<FlowId> f1, f2;
    auto drive = [&](EdgeBroker& e, const char* in, const char* out,
                     std::vector<FlowId>& live) {
      while (true) {
        auto r = e.request_service({type0(), 2.44, in, out});
        if (!r.is_ok()) break;
        live.push_back(r.value().flow);
      }
    };
    drive(e1, "I1", "E1", f1);
    for (std::size_t i = 0; i + 1 < f1.size(); i += 2) {
      (void)e1.release_service(f1[i]);  // qosbb-lint: allow(discarded-status)
    }
    drive(e2, "I2", "E2", f2);
    const int carried = static_cast<int>(f1.size() / 2 + f2.size());
    table.add_row({TextTable::fmt(chunk, 0), TextTable::fmt_int(carried),
                   "30", TextTable::fmt_int(30 - carried),
                   TextTable::fmt_int(static_cast<long long>(
                       central.ledger_calls()))});
  }
  std::cout << "\n=== Hierarchy fragmentation at saturation (adversarial "
               "churn) ===\n";
  table.print(std::cout);
  std::cout << "Smaller chunks waste less bandwidth but cost more central "
               "ledger traffic.\n";
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  print_fragmentation_table();
  return 0;
}
