// Reproduces Table 2: maximum number of calls admitted under IntServ/GS,
// per-flow BB/VTRS, and aggregate BB/VTRS (cd ∈ {0.10, 0.24, 0.50}), for
// end-to-end delay bounds 2.44 s and 2.19 s, in the rate-based-only and
// mixed rate/delay-based scheduler settings.
//
// Paper reference values:
//                         Rate-Based Only    Mixed Rate/Delay-Based
//                         2.44   2.19        2.44   2.19
//   IntServ/GS            30     27          30     27
//   Per-flow BB/VTRS      30     27          30     27
//   Aggr BB/VTRS cd=0.10  29     29          29     29
//   Aggr BB/VTRS cd=0.24  29     29          29     29
//   Aggr BB/VTRS cd=0.50  29     29          29     28

#include <iostream>

#include "bench_common.h"
#include "util/table.h"

int main() {
  using namespace qosbb;
  using namespace qosbb::bench;

  std::cout << "=== Table 2: number of calls admitted ===\n"
            << "Workload: type-0 flows (sigma=60kb rho=50kb/s P=100kb/s "
               "L=1500B), S1->D1 only, infinite lifetime.\n\n";

  TextTable table({"Scheme", "RateOnly D=2.44", "RateOnly D=2.19",
                   "Mixed D=2.44", "Mixed D=2.19"});

  auto row = [&](const std::string& name, auto&& fill) {
    table.add_row({name,
                   TextTable::fmt_int(fill(Fig8Setting::kRateBasedOnly, 2.44)),
                   TextTable::fmt_int(fill(Fig8Setting::kRateBasedOnly, 2.19)),
                   TextTable::fmt_int(fill(Fig8Setting::kMixed, 2.44)),
                   TextTable::fmt_int(fill(Fig8Setting::kMixed, 2.19))});
  };

  row("IntServ/GS", [](Fig8Setting s, double d) {
    return fill_intserv_gs(s, d);
  });
  row("Per-flow BB/VTRS", [](Fig8Setting s, double d) {
    return fill_perflow_bb(s, d);
  });
  for (double cd : {0.10, 0.24, 0.50}) {
    row("Aggr BB/VTRS cd=" + TextTable::fmt(cd, 2),
        [cd](Fig8Setting s, double d) {
          return fill_aggregate_bb(s, d, cd);
        });
  }

  table.print(std::cout);
  std::cout << "\nPaper: IntServ/GS == Per-flow BB/VTRS (30 / 27); Aggr 29 "
               "everywhere except 28 at (Mixed, 2.19, cd=0.50).\n";

  // Extension: the same fill for Table 1's other traffic types. The loose
  // bounds are calibrated so the minimal rate is exactly the mean rate
  // (type 1: 40 kb/s -> 37 flows; type 2: 30 kb/s -> 50; type 3: 20 kb/s
  // -> 75); the tight bounds push the rate above the mean.
  std::cout << "\n=== Extension: per-flow BB/VTRS capacity per Table-1 type "
               "(rate-based setting) ===\n";
  TextTable ext({"type", "delay bound (s)", "min rate (b/s)", "admitted"});
  for (int type = 0; type < kPaperTrafficTypes; ++type) {
    for (bool tight : {false, true}) {
      const double bound =
          tight ? paper_delay_tight(type) : paper_delay_loose(type);
      BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly));
      FlowServiceRequest req{paper_traffic_type(type), bound, "I1", "E1"};
      int n = 0;
      double rate = 0.0;
      while (true) {
        auto res = bb.request_service(req);
        if (!res.is_ok()) break;
        rate = res.value().params.rate;
        ++n;
      }
      ext.add_row({TextTable::fmt_int(type), TextTable::fmt(bound, 2),
                   TextTable::fmt(rate, 1), TextTable::fmt_int(n)});
    }
  }
  ext.print(std::cout);
  return 0;
}
