// Multipath ablation: carried capacity and load balance vs the number of
// candidate routes k (Yen) and the selection policy, on a three-route
// domain. Min-hop-only leaves the alternates dark; admission fallback uses
// them when the primary fills; widest-residual keeps them balanced from the
// start (useful when transient load spikes would otherwise concentrate).

#include <iostream>

#include "core/broker.h"
#include "topo/fig8.h"
#include "util/table.h"

namespace {

using namespace qosbb;

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

/// I -> E via a 2-hop route (A), a 3-hop route (B1,B2), and a 4-hop route
/// (C1..C3); all links 1.5 Mb/s C̸SVC.
DomainSpec three_route_spec() {
  DomainSpec spec;
  spec.nodes = {"I", "A", "B1", "B2", "C1", "C2", "C3", "E"};
  spec.l_max = 12000.0;
  auto add = [&](const char* f, const char* t) {
    spec.links.push_back(
        LinkSpec{f, t, 1.5e6, 0.0, SchedPolicy::kCsvc,
                 std::numeric_limits<double>::infinity()});
  };
  add("I", "A");
  add("A", "E");
  add("I", "B1");
  add("B1", "B2");
  add("B2", "E");
  add("I", "C1");
  add("C1", "C2");
  add("C2", "C3");
  add("C3", "E");
  return spec;
}

struct RunResult {
  int admitted = 0;
  /// Load imbalance after 30 admissions (one route's worth): max − min
  /// reserved among the three exit links. Min-hop piles everything on the
  /// shortest route (1.5 Mb/s spread); widest-residual spreads it.
  double spread_at_30 = 0.0;
};

RunResult fill(int k, PathSelection policy) {
  BrokerOptions opt;
  opt.k_paths = k;
  opt.path_selection = policy;
  BandwidthBroker bb(three_route_spec(), opt);
  FlowServiceRequest req{type0(), 5.0, "I", "E"};
  RunResult out;
  while (bb.request_service(req).is_ok()) {
    ++out.admitted;
    if (out.admitted == 30) {
      const double a = bb.nodes().link("A->E").reserved();
      const double b = bb.nodes().link("B2->E").reserved();
      const double c = bb.nodes().link("C3->E").reserved();
      out.spread_at_30 = std::max({a, b, c}) - std::min({a, b, c});
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace qosbb;

  std::cout << "=== Multipath ablation: 3-route domain, mean-rate type-0 "
               "flows ===\n"
            << "Single-route ceiling: 30 flows; three routes: 90.\n\n";

  TextTable table({"k paths", "selection", "admitted",
                   "spread after 30 flows (b/s)"});
  for (int k : {1, 2, 3}) {
    for (PathSelection policy :
         {PathSelection::kMinHop, PathSelection::kWidestResidual}) {
      const RunResult r = fill(k, policy);
      table.add_row({TextTable::fmt_int(k),
                     policy == PathSelection::kMinHop ? "min-hop"
                                                      : "widest-residual",
                     TextTable::fmt_int(r.admitted),
                     TextTable::fmt(r.spread_at_30, 0)});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape: capacity scales with k (30 -> 60 -> 90); widest-"
               "residual keeps the routes balanced (small spread) while "
               "min-hop fills them sequentially.\n";
  return 0;
}
