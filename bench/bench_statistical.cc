// Statistical-multiplexing extension study (Section 6 future work):
// admitted type-0 flows and realized overflow probability vs the overflow
// target ε, on a 15 Mb/s core where flows are small relative to the pipe.
//
// Baselines: LOW-DELAY deterministic service needs near-peak reservations
// (the edge shaping delay T_on·(P−r)/r blows up below the peak), carrying
// C/P = 150 flows; Σρ = C bounds ANY scheme at 300. Statistical admission
// books Σρ + sqrt(ln(1/ε)·ΣP²/2) and lands in between — trading a small
// overflow probability for up to ~1.8x the peak-allocated capacity.
//
// Realized overflow is Monte-Carlo over the stationary on–off aggregate
// (each flow ON with probability ρ/P at its peak rate). Hoeffding is
// conservative, so the realized rate sits well below ε — the admitted-count
// column shows what that conservatism costs against the 300 ceiling.

#include <cmath>
#include <iostream>

#include "core/stat_admission.h"
#include "topo/fig8.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace qosbb;

  const TrafficProfile type0 =
      TrafficProfile::make(60000, 50000, 100000, 12000);
  const double capacity = 15e6;
  const double p_on = type0.rho / type0.peak;

  std::cout << "=== Statistical admission: ε sweep (type-0 flows, 15 Mb/s "
               "core) ===\n"
            << "Baselines: peak-rate deterministic (low delay) = 150 flows; "
               "mean-rate ceiling = 300 flows.\n\n";

  TextTable table({"epsilon", "admitted", "vs peak-det (x)",
                   "utilization Srho/C", "headroom (b/s)",
                   "realized overflow p"});

  Rng rng(20260707);
  for (double eps : {1e-1, 1e-2, 1e-3, 1e-4, 1e-6}) {
    StatisticalAdmission stat(
        fig8_topology(Fig8Setting::kRateBasedOnly, capacity), eps);
    int n = 0;
    while (stat.request_service(type0, "I1", "E1").is_ok()) ++n;
    const StatLinkState& s = stat.link_state("R2->R3");
    const double headroom =
        StatisticalAdmission::headroom(s.sum_peak_sq, eps);

    const int trials = 50000;
    int overflow = 0;
    for (int t = 0; t < trials; ++t) {
      double load = 0.0;
      for (int j = 0; j < n; ++j) {
        if (rng.bernoulli(p_on)) load += type0.peak;
      }
      if (load > capacity) ++overflow;
    }
    table.add_row({"1e" + TextTable::fmt(std::log10(eps), 0),
                   TextTable::fmt_int(n),
                   TextTable::fmt(n / 150.0, 2),
                   TextTable::fmt(s.sum_mean / capacity, 3),
                   TextTable::fmt(headroom, 0),
                   TextTable::fmt(static_cast<double>(overflow) / trials,
                                  6)});
  }
  table.print(std::cout);

  std::cout << "\nShape: every ε admits well above the 150-flow peak-rate "
               "baseline and below the 300-flow ceiling; realized overflow "
               "stays under ε.\n";
  return 0;
}
