// Reproduces Figure 10: flow blocking rate vs offered load for the per-flow
// BB/VTRS scheme and the two aggregate BB/VTRS variants (contingency-period
// bounding and feedback). Each point is the average of 5 independent runs
// (as in the paper); flows arrive Poisson at each source with exponential
// holding times of mean 200 s, drawn uniformly from the four Table-1 types
// with their loose delay bounds.
//
// Paper shape: per-flow BB/VTRS has the lowest blocking; the bounding
// method the highest (worst-case backlog bound holds contingency bandwidth
// long); feedback sits between and close to per-flow; the curves converge
// as the network saturates.

#include <iostream>

#include "flowsim/blocking.h"
#include "util/table.h"

int main() {
  using namespace qosbb;

  BlockingSweepConfig sweep;
  sweep.base.setting = Fig8Setting::kRateBasedOnly;
  sweep.base.workload.mean_holding = 200.0;
  sweep.base.workload.horizon = 4000.0;
  sweep.base.workload.types = {0, 1, 2, 3};
  sweep.base.tight_delay = false;
  sweep.arrival_rates = {0.01, 0.02, 0.03, 0.04, 0.06, 0.08, 0.12, 0.18};
  sweep.runs_per_point = 5;

  std::cout << "=== Figure 10: flow blocking rate vs offered load ===\n"
            << "Poisson arrivals per source, exp(200 s) holding, Table-1 "
               "types 0-3, 5 runs per point.\n\n";

  TextTable table({"lambda/src", "offered load", "Per-flow BB",
                   "Aggr BB (feedback)", "Aggr BB (bounding)"});

  std::vector<std::vector<BlockingPoint>> series;
  for (AdmissionScheme scheme :
       {AdmissionScheme::kPerFlowBB, AdmissionScheme::kAggrFeedback,
        AdmissionScheme::kAggrBounding}) {
    BlockingSweepConfig cfg = sweep;
    cfg.base.scheme = scheme;
    series.push_back(blocking_sweep(cfg));
    std::cerr << "swept " << admission_scheme_name(scheme) << "\n";
  }

  for (std::size_t i = 0; i < sweep.arrival_rates.size(); ++i) {
    table.add_row({TextTable::fmt(sweep.arrival_rates[i], 3),
                   TextTable::fmt(series[0][i].offered_load, 3),
                   TextTable::fmt(series[0][i].blocking_rate, 4),
                   TextTable::fmt(series[1][i].blocking_rate, 4),
                   TextTable::fmt(series[2][i].blocking_rate, 4)});
  }
  table.print(std::cout);
  std::cout << "\nPaper shape: per-flow <= feedback <= bounding, converging "
               "at saturation.\n";

  // Robustness check: the same ordering must hold on the mixed
  // rate/delay-based setting (classes use cd = 0.10 at VT-EDF hops).
  std::cout << "\n--- mixed rate/delay-based setting (cd = 0.10) ---\n";
  TextTable mixed({"lambda/src", "Per-flow BB", "Aggr BB (feedback)",
                   "Aggr BB (bounding)"});
  std::vector<std::vector<BlockingPoint>> mseries;
  for (AdmissionScheme scheme :
       {AdmissionScheme::kPerFlowBB, AdmissionScheme::kAggrFeedback,
        AdmissionScheme::kAggrBounding}) {
    BlockingSweepConfig cfg = sweep;
    cfg.base.scheme = scheme;
    cfg.base.setting = Fig8Setting::kMixed;
    cfg.base.class_delay_param = 0.10;
    cfg.arrival_rates = {0.04, 0.08, 0.12, 0.18};
    mseries.push_back(blocking_sweep(cfg));
  }
  for (std::size_t i = 0; i < mseries[0].size(); ++i) {
    mixed.add_row(
        {TextTable::fmt(mseries[0][i].arrival_rate_per_source, 3),
         TextTable::fmt(mseries[0][i].blocking_rate, 4),
         TextTable::fmt(mseries[1][i].blocking_rate, 4),
         TextTable::fmt(mseries[2][i].blocking_rate, 4)});
  }
  mixed.print(std::cout);
  return 0;
}
