// Scalability of the bandwidth broker itself (Section 2's motivation): how
// many flow service requests per second can one BB process?
//
//  * BM_PerFlowAdmitRelease — full request_service + release_service cycle
//    (policy check, routing, §3 test, bookkeeping) on a warm MIB.
//  * BM_ClassJoinLeave — class-based join + leave cycle: the paper's
//    scalability argument is that aggregation shrinks BB state and speeds
//    up admission; compare ns/op against the per-flow rows.
//  * BM_PolicyCheckOnly / BM_PathViewOnly — pipeline stage breakdown.
//  * BM_JournalAppend / BM_JournalReplay — durability overhead: the cost of
//    write-ahead logging per request, and crash-recovery time as a function
//    of journal tail length (the knob anchor_every trades against).

#include <benchmark/benchmark.h>

#include "core/broker.h"
#include "core/durable_broker.h"
#include "core/journal.h"
#include "topo/fig8.h"

namespace {

using namespace qosbb;

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

void BM_PerFlowAdmitRelease(benchmark::State& state) {
  const int warm = static_cast<int>(state.range(0));
  const bool mixed = state.range(1) != 0;
  BandwidthBroker bb(fig8_topology(
      mixed ? Fig8Setting::kMixed : Fig8Setting::kRateBasedOnly,
      60000.0 * (warm + 10)));
  FlowServiceRequest req{type0(), mixed ? 2.19 : 2.44, "I1", "E1"};
  for (int i = 0; i < warm; ++i) {
    if (!bb.request_service(req).is_ok()) {
      state.SkipWithError("warmup admission failed");
      return;
    }
  }
  for (auto _ : state) {
    auto res = bb.request_service(req);
    if (!res.is_ok()) {
      state.SkipWithError("admission unexpectedly rejected");
      return;
    }
    (void)bb.release_service(res.value().flow);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(mixed ? "mixed path" : "rate-only path");
}
BENCHMARK(BM_PerFlowAdmitRelease)
    ->ArgsProduct({{0, 64, 512}, {0, 1}});

void BM_ClassJoinLeave(benchmark::State& state) {
  const int warm = static_cast<int>(state.range(0));
  BandwidthBroker bb(
      fig8_topology(Fig8Setting::kMixed, 60000.0 * (warm + 10)),
      BrokerOptions{ContingencyMethod::kFeedback});
  const ClassId cls = bb.define_class(2.19, 0.10);
  Seconds now = 0.0;
  for (int i = 0; i < warm; ++i) {
    auto join =
        bb.request_class_service(cls, type0(), "I1", "E1", now, 0.0);
    if (!join.admitted) {
      state.SkipWithError("warmup join failed");
      return;
    }
    now += 1.0;
  }
  for (auto _ : state) {
    auto join = bb.request_class_service(cls, type0(), "I1", "E1", now, 0.0);
    if (!join.admitted) {
      state.SkipWithError("join unexpectedly rejected");
      return;
    }
    now += 1.0;
    (void)bb.leave_class_service(join.microflow, now, 0.0);
    now += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassJoinLeave)->Arg(0)->Arg(64)->Arg(512);

void BM_PolicyCheckOnly(benchmark::State& state) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly));
  PolicyRule rule;
  rule.max_peak_rate = 1e6;
  rule.max_burst = 1e6;
  rule.min_delay_req = 0.1;
  bb.policy().set_default_rule(rule);
  FlowServiceRequest req{type0(), 2.44, "I1", "E1"};
  for (auto _ : state) {
    auto s = bb.policy().check(req, 10);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_PolicyCheckOnly);

void BM_PathViewOnly(benchmark::State& state) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kMixed));
  const PathId path = bb.provision_path("I1", "E1").value();
  for (auto _ : state) {
    auto view = bb.path_view(path);
    benchmark::DoNotOptimize(view);
  }
}
BENCHMARK(BM_PathViewOnly);

// Journaled admit/release cycle: BM_PerFlowAdmitRelease plus the WAL append
// and idempotency bookkeeping — the durability tax per request.
void BM_JournalAppend(benchmark::State& state) {
  MemoryJournalFile file;
  auto db = DurableBroker::open(
      fig8_topology(Fig8Setting::kRateBasedOnly, 60000.0 * 10), {}, file);
  if (!db.is_ok()) {
    state.SkipWithError("durable open failed");
    return;
  }
  if (!db.value()->provision_path(1, "I1", "E1").is_ok()) {
    state.SkipWithError("provisioning failed");
    return;
  }
  FlowServiceRequest req{type0(), 2.44, "I1", "E1"};
  RequestId rid = 2;
  for (auto _ : state) {
    auto res = db.value()->request_service(rid++, req, 0.0);
    if (!res.is_ok()) {
      state.SkipWithError("admission unexpectedly rejected");
      return;
    }
    (void)db.value()->release_service(rid++, res.value().flow);
    // Keep the journal from growing unboundedly across iterations.
    if (rid % 2048 == 0) {
      state.PauseTiming();
      (void)db.value()->checkpoint();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JournalAppend);

// Crash recovery: re-open a broker from a journal with `range(0)` logged
// admit/release records after the last anchor. Linear in tail length —
// this is the curve that sizes anchor_every for a recovery-time budget.
void BM_JournalReplay(benchmark::State& state) {
  const int tail_ops = static_cast<int>(state.range(0));
  const DomainSpec spec =
      fig8_topology(Fig8Setting::kRateBasedOnly, 60000.0 * 10);
  MemoryJournalFile file;
  {
    auto db = DurableBroker::open(spec, {}, file);
    if (!db.is_ok()) {
      state.SkipWithError("durable open failed");
      return;
    }
    if (!db.value()->provision_path(1, "I1", "E1").is_ok()) {
      state.SkipWithError("provisioning failed");
      return;
    }
    FlowServiceRequest req{type0(), 2.44, "I1", "E1"};
    RequestId rid = 2;
    for (int i = 0; i < tail_ops / 2; ++i) {
      auto res = db.value()->request_service(rid++, req, 0.0);
      if (!res.is_ok()) {
        state.SkipWithError("admission unexpectedly rejected");
        return;
      }
      (void)db.value()->release_service(rid++, res.value().flow);
    }
  }
  std::uint64_t replayed = 0;
  for (auto _ : state) {
    auto db = DurableBroker::open(spec, {}, file);
    if (!db.is_ok()) {
      state.SkipWithError("recovery failed");
      return;
    }
    replayed += db.value()->stats().replayed;
    benchmark::DoNotOptimize(db);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(replayed));
  state.SetLabel("records replayed per open");
}
BENCHMARK(BM_JournalReplay)->Arg(16)->Arg(256)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
