// Scalability of the bandwidth broker itself (Section 2's motivation): how
// many flow service requests per second can one BB process?
//
//  * BM_PerFlowAdmitRelease — full request_service + release_service cycle
//    (policy check, routing, §3 test, bookkeeping) on a warm MIB.
//  * BM_ClassJoinLeave — class-based join + leave cycle: the paper's
//    scalability argument is that aggregation shrinks BB state and speeds
//    up admission; compare ns/op against the per-flow rows.
//  * BM_PolicyCheckOnly / BM_PathViewOnly — pipeline stage breakdown.
//  * BM_JournalAppend / BM_JournalReplay — durability overhead: the cost of
//    write-ahead logging per request, and crash-recovery time as a function
//    of journal tail length (the knob anchor_every trades against).

//  * BM_ConcurrentAdmit — aggregate admit/release throughput of the
//    ConcurrentBrokerFront at 1/2/4/8 threads on fully DISJOINT paths (the
//    decomposition's scalability claim: requests that share no link only
//    contend on their shard mutexes and the flow-table lock).
//  * BM_BatchAdmit — amortized cost per admit through submit_batch: one
//    PathSnapshot + one OCC validate/commit per batch instead of one per
//    request. Manual time covers only the batch call (releases run off the
//    clock), so items_per_second is the amortized admit rate.
//  * BM_JournalGroupCommit — durable batched admission: K fresh admits
//    logged as ONE multi-record frame (one append, one flush) versus the
//    per-request append of BM_JournalAppend. appends_per_batch must be 1.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/broker.h"
#include "core/concurrent_front.h"
#include "core/durable_broker.h"
#include "core/journal.h"
#include "topo/fig8.h"

namespace {

using namespace qosbb;

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

void BM_PerFlowAdmitRelease(benchmark::State& state) {
  const int warm = static_cast<int>(state.range(0));
  const bool mixed = state.range(1) != 0;
  BandwidthBroker bb(fig8_topology(
      mixed ? Fig8Setting::kMixed : Fig8Setting::kRateBasedOnly,
      60000.0 * (warm + 10)));
  FlowServiceRequest req{type0(), mixed ? 2.19 : 2.44, "I1", "E1"};
  for (int i = 0; i < warm; ++i) {
    if (!bb.request_service(req).is_ok()) {
      state.SkipWithError("warmup admission failed");
      return;
    }
  }
  for (auto _ : state) {
    auto res = bb.request_service(req);
    if (!res.is_ok()) {
      state.SkipWithError("admission unexpectedly rejected");
      return;
    }
    // qosbb-lint: allow(discarded-status)
    (void)bb.release_service(res.value().flow);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(mixed ? "mixed path" : "rate-only path");
}
BENCHMARK(BM_PerFlowAdmitRelease)
    ->ArgsProduct({{0, 64, 512}, {0, 1}});

void BM_ClassJoinLeave(benchmark::State& state) {
  const int warm = static_cast<int>(state.range(0));
  BandwidthBroker bb(
      fig8_topology(Fig8Setting::kMixed, 60000.0 * (warm + 10)),
      BrokerOptions{ContingencyMethod::kFeedback});
  const ClassId cls = bb.define_class(2.19, 0.10);
  Seconds now = 0.0;
  for (int i = 0; i < warm; ++i) {
    auto join =
        bb.request_class_service(cls, type0(), "I1", "E1", now, 0.0);
    if (!join.admitted) {
      state.SkipWithError("warmup join failed");
      return;
    }
    now += 1.0;
  }
  for (auto _ : state) {
    auto join = bb.request_class_service(cls, type0(), "I1", "E1", now, 0.0);
    if (!join.admitted) {
      state.SkipWithError("join unexpectedly rejected");
      return;
    }
    now += 1.0;
    // qosbb-lint: allow(discarded-status)
    (void)bb.leave_class_service(join.microflow, now, 0.0);
    now += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassJoinLeave)->Arg(0)->Arg(64)->Arg(512);

void BM_PolicyCheckOnly(benchmark::State& state) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly));
  PolicyRule rule;
  rule.max_peak_rate = 1e6;
  rule.max_burst = 1e6;
  rule.min_delay_req = 0.1;
  bb.policy().set_default_rule(rule);
  FlowServiceRequest req{type0(), 2.44, "I1", "E1"};
  for (auto _ : state) {
    auto s = bb.policy().check(req, 10);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_PolicyCheckOnly);

void BM_PathViewOnly(benchmark::State& state) {
  BandwidthBroker bb(fig8_topology(Fig8Setting::kMixed));
  const PathId path = bb.provision_path("I1", "E1").value();
  for (auto _ : state) {
    auto view = bb.path_view(path);
    benchmark::DoNotOptimize(view);
  }
}
BENCHMARK(BM_PathViewOnly);

// K fully disjoint two-hop VT-EDF chains I<k> -> M<k> -> E<k>: every bench
// thread admits and releases on its own chain, so the only shared state on
// the hot path is the flow-table mutex and the stats counters.
DomainSpec disjoint_chains(int k) {
  DomainSpec spec;
  spec.l_max = 12000.0;
  for (int i = 0; i < k; ++i) {
    const std::string in = "I" + std::to_string(i);
    const std::string mid = "M" + std::to_string(i);
    const std::string out = "E" + std::to_string(i);
    spec.nodes.insert(spec.nodes.end(), {in, mid, out});
    spec.links.push_back({in, mid, 1.5e6, 0.0, SchedPolicy::kVtEdf});
    spec.links.push_back({mid, out, 1.5e6, 0.0, SchedPolicy::kVtEdf});
  }
  return spec;
}

// Concurrent admission throughput: one broker + front shared by all bench
// threads, thread k driving chain k. items_per_second aggregates across
// threads (UseRealTime), so the 4-thread row versus the 1-thread row is the
// disjoint-path scaling factor of the OCC fast path.
void BM_ConcurrentAdmit(benchmark::State& state) {
  static BandwidthBroker* bb = nullptr;
  static ConcurrentBrokerFront* front = nullptr;
  constexpr int kChains = 8;
  if (state.thread_index() == 0) {
    bb = new BandwidthBroker(disjoint_chains(kChains));
    front = new ConcurrentBrokerFront(*bb, 1);
    front->exclusive([&](BandwidthBroker& b) {
      for (int i = 0; i < kChains; ++i) {
        if (!b.provision_path("I" + std::to_string(i),
                              "E" + std::to_string(i))
                 .is_ok()) {
          state.SkipWithError("provisioning failed");
        }
      }
    });
  }
  const int chain = state.thread_index() % kChains;
  FlowServiceRequest req;
  req.profile = type0();
  req.e2e_delay_req = 2.4;
  req.ingress = "I" + std::to_string(chain);
  req.egress = "E" + std::to_string(chain);
  for (auto _ : state) {
    FrontOutcome out = front->request_service(req);
    if (!out.result.is_ok()) {
      state.SkipWithError("admission unexpectedly rejected");
      break;
    }
    if (!front->release_service(out.result.value().flow).is_ok()) {
      state.SkipWithError("release failed");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.SetLabel("disjoint VT-EDF chains, OCC fast path");
    delete front;
    front = nullptr;
    delete bb;
    bb = nullptr;
  }
}
BENCHMARK(BM_ConcurrentAdmit)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Batched admission through the concurrent front: all range(1) requests
// share the provisioned I1->E1 path, so submit_batch runs them as one
// group — one snapshot capture, members tested against a locally evolved
// snapshot, one shard-locked OCC commit. Only submit_batch is on the
// manual clock; the releases that reset capacity for the next iteration
// are not. The warm=512 / batch=32 row is the ISSUE 6 target: ≤ 1 µs
// amortized per admit.
void BM_BatchAdmit(benchmark::State& state) {
  const int warm = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  BandwidthBroker bb(
      fig8_topology(Fig8Setting::kMixed, 60000.0 * (warm + k + 10)));
  ConcurrentBrokerFront front(bb, 1);
  front.exclusive([&](BandwidthBroker& b) {
    if (!b.provision_path("I1", "E1").is_ok()) {
      state.SkipWithError("provisioning failed");
    }
  });
  FlowServiceRequest req{type0(), 2.19, "I1", "E1"};
  for (int i = 0; i < warm; ++i) {
    if (!front.request_service(req).result.is_ok()) {
      state.SkipWithError("warmup admission failed");
      return;
    }
  }
  const std::vector<FlowServiceRequest> reqs(static_cast<std::size_t>(k),
                                             req);
  std::vector<FlowId> admitted;
  admitted.reserve(reqs.size());
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<FrontOutcome> outs = front.submit_batch(reqs);
    const auto t1 = std::chrono::steady_clock::now();
    state.SetIterationTime(
        std::chrono::duration<double>(t1 - t0).count());
    admitted.clear();
    for (const FrontOutcome& out : outs) {
      if (!out.result.is_ok()) {
        state.SkipWithError("batch admission unexpectedly rejected");
        return;
      }
      admitted.push_back(out.result.value().flow);
    }
    for (const FlowId flow : admitted) (void)front.release_service(flow);
  }
  state.SetItemsProcessed(state.iterations() * k);
  state.SetLabel("mixed path, single-group batch");
}
BENCHMARK(BM_BatchAdmit)
    ->ArgsProduct({{0, 512}, {1, 8, 32}})
    ->ArgNames({"", "batch"})
    ->UseManualTime();

// MemoryJournalFile that counts appends, to surface the one-frame-per-batch
// property of request_service_batch as a bench counter.
class CountingJournalFile : public MemoryJournalFile {
 public:
  Status append(const WireBuffer& bytes) override {
    ++appends_;
    return MemoryJournalFile::append(bytes);
  }
  std::uint64_t appends() const { return appends_; }

 private:
  std::uint64_t appends_ = 0;
};

// Durable batched admission: K fresh members journaled as ONE multi-record
// frame with consecutive LSNs — one append (one flush on a real file)
// regardless of K. Manual time covers only request_service_batch; the
// releases and the periodic checkpoint that keep the journal bounded run
// off the clock. Compare ns/admit against BM_JournalAppend's per-request
// append cost.
void BM_JournalGroupCommit(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  CountingJournalFile file;
  auto db = DurableBroker::open(
      fig8_topology(Fig8Setting::kRateBasedOnly, 60000.0 * (k + 10)), {},
      file);
  if (!db.is_ok()) {
    state.SkipWithError("durable open failed");
    return;
  }
  if (!db.value()->provision_path(1, "I1", "E1").is_ok()) {
    state.SkipWithError("provisioning failed");
    return;
  }
  FlowServiceRequest req{type0(), 2.44, "I1", "E1"};
  const std::vector<FlowServiceRequest> reqs(static_cast<std::size_t>(k),
                                             req);
  std::vector<RequestId> rids(static_cast<std::size_t>(k));
  RequestId rid = 2;
  std::uint64_t batch_appends = 0;
  RequestId next_checkpoint = 4096;
  for (auto _ : state) {
    for (RequestId& r : rids) r = rid++;
    const std::uint64_t appends_before = file.appends();
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = db.value()->request_service_batch(rids, reqs, 0.0);
    const auto t1 = std::chrono::steady_clock::now();
    state.SetIterationTime(
        std::chrono::duration<double>(t1 - t0).count());
    batch_appends += file.appends() - appends_before;
    for (const auto& res : results) {
      if (!res.is_ok()) {
        state.SkipWithError("batch admission unexpectedly rejected");
        return;
      }
      // qosbb-lint: allow(discarded-status)
      (void)db.value()->release_service(rid++, res.value().flow);
    }
    // Keep the journal from growing unboundedly across iterations.
    if (rid >= next_checkpoint) {
      (void)db.value()->checkpoint();  // qosbb-lint: allow(discarded-status)
      next_checkpoint += 4096;
    }
  }
  state.SetItemsProcessed(state.iterations() * k);
  if (state.iterations() > 0) {
    state.counters["appends_per_batch"] = benchmark::Counter(
        static_cast<double>(batch_appends) /
        static_cast<double>(state.iterations()));
  }
  state.SetLabel("one frame per batch");
}
BENCHMARK(BM_JournalGroupCommit)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->ArgNames({"batch"})
    ->UseManualTime();

// Journaled admit/release cycle: BM_PerFlowAdmitRelease plus the WAL append
// and idempotency bookkeeping — the durability tax per request.
void BM_JournalAppend(benchmark::State& state) {
  MemoryJournalFile file;
  auto db = DurableBroker::open(
      fig8_topology(Fig8Setting::kRateBasedOnly, 60000.0 * 10), {}, file);
  if (!db.is_ok()) {
    state.SkipWithError("durable open failed");
    return;
  }
  if (!db.value()->provision_path(1, "I1", "E1").is_ok()) {
    state.SkipWithError("provisioning failed");
    return;
  }
  FlowServiceRequest req{type0(), 2.44, "I1", "E1"};
  RequestId rid = 2;
  for (auto _ : state) {
    auto res = db.value()->request_service(rid++, req, 0.0);
    if (!res.is_ok()) {
      state.SkipWithError("admission unexpectedly rejected");
      return;
    }
    // qosbb-lint: allow(discarded-status)
    (void)db.value()->release_service(rid++, res.value().flow);
    // Keep the journal from growing unboundedly across iterations.
    if (rid % 2048 == 0) {
      state.PauseTiming();
      (void)db.value()->checkpoint();  // qosbb-lint: allow(discarded-status)
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JournalAppend);

// Crash recovery: re-open a broker from a journal with `range(0)` logged
// admit/release records after the last anchor. Linear in tail length —
// this is the curve that sizes anchor_every for a recovery-time budget.
void BM_JournalReplay(benchmark::State& state) {
  const int tail_ops = static_cast<int>(state.range(0));
  const DomainSpec spec =
      fig8_topology(Fig8Setting::kRateBasedOnly, 60000.0 * 10);
  MemoryJournalFile file;
  {
    auto db = DurableBroker::open(spec, {}, file);
    if (!db.is_ok()) {
      state.SkipWithError("durable open failed");
      return;
    }
    if (!db.value()->provision_path(1, "I1", "E1").is_ok()) {
      state.SkipWithError("provisioning failed");
      return;
    }
    FlowServiceRequest req{type0(), 2.44, "I1", "E1"};
    RequestId rid = 2;
    for (int i = 0; i < tail_ops / 2; ++i) {
      auto res = db.value()->request_service(rid++, req, 0.0);
      if (!res.is_ok()) {
        state.SkipWithError("admission unexpectedly rejected");
        return;
      }
      // qosbb-lint: allow(discarded-status)
      (void)db.value()->release_service(rid++, res.value().flow);
    }
  }
  std::uint64_t replayed = 0;
  for (auto _ : state) {
    auto db = DurableBroker::open(spec, {}, file);
    if (!db.is_ok()) {
      state.SkipWithError("recovery failed");
      return;
    }
    replayed += db.value()->stats().replayed;
    benchmark::DoNotOptimize(db);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(replayed));
  state.SetLabel("records replayed per open");
}
BENCHMARK(BM_JournalReplay)->Arg(16)->Arg(256)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
