// Reproduces Figure 9: mean reserved bandwidth per flow as a function of
// the number of flows admitted, under the mixed rate/delay-based scheduler
// setting with end-to-end delay requirement 2.19 s.
//
// Paper shape: IntServ/GS is flat (the WFQ reference model assigns every
// flow the same rate); per-flow BB/VTRS starts at the mean rate (minimum
// possible) and climbs as the feasible delay parameters grow; aggregate
// BB/VTRS (cd = 0.10) declines with aggregation and ends well below both.

#include <iostream>

#include "bench_common.h"
#include "util/table.h"

int main() {
  using namespace qosbb;
  using namespace qosbb::bench;

  const Fig8Setting setting = Fig8Setting::kMixed;
  const double bound = 2.19;
  const double cd = 0.10;

  std::vector<double> gs_rates, bb_rates, aggr_base;
  const int n_gs = fill_intserv_gs(setting, bound, &gs_rates);
  const int n_bb = fill_perflow_bb(setting, bound, &bb_rates);
  const int n_ag = fill_aggregate_bb(setting, bound, cd, &aggr_base);

  std::cout << "=== Figure 9: mean reserved bandwidth per flow (b/s) ===\n"
            << "Mixed setting, D = 2.19 s, type-0 flows, cd = 0.10.\n\n";

  TextTable table({"flows", "IntServ/GS", "Per-flow BB/VTRS",
                   "Aggr BB/VTRS"});
  const int n_max = std::max({n_gs, n_bb, n_ag});
  double gs_sum = 0.0, bb_sum = 0.0;
  for (int n = 1; n <= n_max; ++n) {
    std::string gs = "-", bb = "-", ag = "-";
    if (n <= n_gs) {
      gs_sum += gs_rates[static_cast<std::size_t>(n - 1)];
      gs = TextTable::fmt(gs_sum / n, 1);
    }
    if (n <= n_bb) {
      bb_sum += bb_rates[static_cast<std::size_t>(n - 1)];
      bb = TextTable::fmt(bb_sum / n, 1);
    }
    if (n <= n_ag) {
      // The aggregate reserves one macroflow rate: per-flow share.
      ag = TextTable::fmt(aggr_base[static_cast<std::size_t>(n - 1)] / n, 1);
    }
    table.add_row({TextTable::fmt_int(n), gs, bb, ag});
  }
  table.print(std::cout);

  std::cout << "\nadmitted: IntServ/GS=" << n_gs << "  Per-flow BB/VTRS="
            << n_bb << "  Aggr BB/VTRS=" << n_ag << "\n"
            << "Paper shape: GS flat ~54k; per-flow BB starts at 50k and "
               "rises (staying <= GS); aggregate declines toward the mean "
               "rate and admits the most flows.\n";
  return 0;
}
