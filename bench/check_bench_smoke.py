#!/usr/bin/env python3
"""CI gate for the benchmark smoke run.

Fails (exit 1) when the Google Benchmark JSON is missing any of the
repository's headline benchmarks, or when any reported benchmark ran zero
iterations — both are the signatures of a silently-broken bench binary
that a plain exit-code check would miss.

Two semantic gates ride along:

  * On machines with >= 4 detected cores (context.num_cpus), the
    BM_ConcurrentAdmit 4-thread row must aggregate >= 2x the 1-thread
    items_per_second — the disjoint-path scaling claim of the concurrent
    front. On smaller machines (CI runners often expose 1-2 cores) the
    check is skipped, not waved through: flat scaling there is expected,
    not fine.
  * Every BM_JournalGroupCommit row must report appends_per_batch == 1 —
    the group-commit invariant (K admits, one journal append).
  * When the JSON carries a "server_loadgen" section (bench/run_benchmarks.sh
    merges one from the qosbbd + loadgen end-to-end run), it must be
    healthy: admits_per_sec > 0, finite positive p50/p99 latency, zero
    decode errors, every admit request answered, and context.num_cpus
    stamped. Pass --require-loadgen to fail when the section is absent
    (the bench-smoke CI job does, since it runs via run_benchmarks.sh).
  * When the JSON carries a "server_overload" section (the same loadgen
    run against a budget-constrained qosbbd at 2x concurrency), the
    graceful-degradation claim is gated: the server SHED something
    (sheds > 0 — budgets that never fire are decorative), every request
    was still answered (admits + rejects + admit_sheds == requests, zero
    decode/protocol errors), the p99 of accepted admits stayed finite,
    and goodput (accepted admits/sec) stayed within GOODPUT_MIN_RATIO of
    the uncontended server_loadgen number — shedding must protect
    throughput, not replace it. --require-loadgen also requires this
    section.
  * When the JSON carries a "federation" section (fed_loadgen against
    fleets of socket-connected domain brokers at broker counts 1/2/4),
    every broker-count entry must be healthy: finite positive
    admits_per_sec, zero lost/duplicated acked admissions, zero poisoned
    transactions and ack failures, and every multi-broker entry must have
    actually exercised inter-domain 2PC (inter_admits > 0).
    --require-loadgen also requires this section.

Usage: check_bench_smoke.py [--require-loadgen] bench_smoke.json
"""

import json
import math
import sys

# Benchmark families that must appear in every smoke run (a JSON entry
# whose name starts with one of these prefixes counts).
REQUIRED_PREFIXES = [
    "BM_PerFlowAdmitRelease",
    "BM_ConcurrentAdmit",
    "BM_BatchAdmit",
    "BM_ClassJoinLeave",
    "BM_PolicyCheckOnly",
    "BM_PathViewOnly",
    "BM_JournalAppend",
    "BM_JournalGroupCommit",
    "BM_JournalReplay",
]

# Required aggregate speedup of BM_ConcurrentAdmit at 4 threads over 1
# thread on disjoint paths, asserted only when the machine has the cores
# to show it.
CONCURRENT_SCALING_MIN = 2.0
CONCURRENT_SCALING_CORES = 4


def check_concurrent_scaling(report, benchmarks) -> bool:
    """Return True on failure. Gated on detected core count."""
    num_cpus = int(report.get("context", {}).get("num_cpus", 0))
    if num_cpus < CONCURRENT_SCALING_CORES:
        print(f"SKIP: concurrent scaling check (num_cpus={num_cpus} < "
              f"{CONCURRENT_SCALING_CORES})")
        return False

    def rate(threads: int):
        for bench in benchmarks:
            name = bench.get("name", "")
            if (name.startswith("BM_ConcurrentAdmit")
                    and f"threads:{threads}" in name
                    and bench.get("run_type") != "aggregate"):
                return bench.get("items_per_second")
        return None

    base, scaled = rate(1), rate(CONCURRENT_SCALING_CORES)
    if not base or not scaled:
        print("FAIL: BM_ConcurrentAdmit rows for scaling check missing",
              file=sys.stderr)
        return True
    speedup = scaled / base
    if speedup < CONCURRENT_SCALING_MIN:
        print(f"FAIL: BM_ConcurrentAdmit {CONCURRENT_SCALING_CORES}-thread "
              f"speedup {speedup:.2f}x < {CONCURRENT_SCALING_MIN}x "
              f"(num_cpus={num_cpus})", file=sys.stderr)
        return True
    print(f"OK: BM_ConcurrentAdmit scales {speedup:.2f}x at "
          f"{CONCURRENT_SCALING_CORES} threads (num_cpus={num_cpus})")
    return False


def check_group_commit(benchmarks) -> bool:
    """Return True on failure: every group-commit row appends once."""
    failed = False
    for bench in benchmarks:
        name = bench.get("name", "")
        if (not name.startswith("BM_JournalGroupCommit")
                or bench.get("run_type") == "aggregate"):
            continue
        appends = bench.get("appends_per_batch")
        if appends is None or abs(appends - 1.0) > 1e-9:
            print(f"FAIL: {name}: appends_per_batch={appends} (expected 1)",
                  file=sys.stderr)
            failed = True
    return failed


def check_server_loadgen(report, required: bool) -> bool:
    """Return True on failure: validate the merged loadgen e2e section."""
    section = report.get("server_loadgen")
    if section is None:
        if required:
            print("FAIL: server_loadgen section missing (bench JSON not "
                  "produced by bench/run_benchmarks.sh?)", file=sys.stderr)
            return True
        print("SKIP: no server_loadgen section")
        return False

    failed = False

    def finite_positive(value) -> bool:
        return (isinstance(value, (int, float)) and math.isfinite(value)
                and value > 0)

    if not finite_positive(section.get("admits_per_sec")):
        print(f"FAIL: server_loadgen admits_per_sec="
              f"{section.get('admits_per_sec')} (want finite > 0)",
              file=sys.stderr)
        failed = True
    latency = section.get("latency_us", {})
    for q in ("p50", "p99"):
        if not finite_positive(latency.get(q)):
            print(f"FAIL: server_loadgen latency_us.{q}={latency.get(q)} "
                  "(want finite > 0)", file=sys.stderr)
            failed = True
    if section.get("decode_errors", -1) != 0:
        print(f"FAIL: server_loadgen decode_errors="
              f"{section.get('decode_errors')}", file=sys.stderr)
        failed = True
    requests = section.get("requests")
    answered = section.get("admits", 0) + section.get("rejects", 0)
    if requests is None or answered != requests:
        print(f"FAIL: server_loadgen admits+rejects={answered} != "
              f"requests={requests}", file=sys.stderr)
        failed = True
    if int(report.get("context", {}).get("num_cpus", 0)) <= 0:
        print("FAIL: context.num_cpus not stamped alongside server_loadgen",
              file=sys.stderr)
        failed = True
    if not failed:
        print(f"OK: server_loadgen {section.get('admits_per_sec'):.0f} "
              f"admits/sec, p50={latency.get('p50'):.1f}us "
              f"p99={latency.get('p99'):.1f}us over "
              f"{section.get('connections')} connections")
    return failed


# Accepted-admit throughput under 2x overload must stay within this factor
# of the uncontended run: shedding exists to PROTECT goodput.
GOODPUT_MIN_RATIO = 0.8


def check_server_overload(report, required: bool) -> bool:
    """Return True on failure: graceful degradation under 2x overload."""
    section = report.get("server_overload")
    if section is None:
        if required:
            print("FAIL: server_overload section missing (bench JSON not "
                  "produced by bench/run_benchmarks.sh?)", file=sys.stderr)
            return True
        print("SKIP: no server_overload section")
        return False

    failed = False

    def finite_positive(value) -> bool:
        return (isinstance(value, (int, float)) and math.isfinite(value)
                and value > 0)

    if int(section.get("sheds", 0)) <= 0:
        print("FAIL: server_overload sheds=0 — the budgets never fired "
              "under 2x offered load", file=sys.stderr)
        failed = True
    for key in ("decode_errors", "protocol_errors"):
        if section.get(key, -1) != 0:
            print(f"FAIL: server_overload {key}={section.get(key)}",
                  file=sys.stderr)
            failed = True
    requests = section.get("requests")
    answered = (section.get("admits", 0) + section.get("rejects", 0)
                + section.get("admit_sheds", 0))
    if requests is None or answered != requests:
        print(f"FAIL: server_overload admits+rejects+admit_sheds={answered} "
              f"!= requests={requests} — a request went unanswered",
              file=sys.stderr)
        failed = True
    if not finite_positive(section.get("latency_us", {}).get("p99")):
        print(f"FAIL: server_overload latency_us.p99="
              f"{section.get('latency_us', {}).get('p99')} "
              "(want finite > 0)", file=sys.stderr)
        failed = True
    goodput = section.get("admits_per_sec")
    baseline = report.get("server_loadgen", {}).get("admits_per_sec")
    num_cpus = int(report.get("context", {}).get("num_cpus", 0))
    if not finite_positive(goodput):
        print(f"FAIL: server_overload admits_per_sec={goodput} "
              "(want finite > 0)", file=sys.stderr)
        failed = True
    elif num_cpus < CONCURRENT_SCALING_CORES:
        # Same policy as the scaling check: on 1-2 core runners the server
        # and every loadgen thread fight for one core and BOTH numbers
        # swing ~25% run to run; a ratio of two noisy measurements is not
        # a signal. Skipped, not waved through — quiet >=4-core machines
        # (where the checked-in trajectory is refreshed) enforce it.
        print(f"SKIP: overload goodput ratio (num_cpus={num_cpus} < "
              f"{CONCURRENT_SCALING_CORES}); structural checks still "
              f"enforced (sheds={section.get('sheds')}, rate "
              f"{section.get('shed_rate', 0):.2f})")
    elif finite_positive(baseline):
        ratio = goodput / baseline
        if ratio < GOODPUT_MIN_RATIO:
            print(f"FAIL: overload goodput {goodput:.0f} admits/sec is "
                  f"{ratio:.2f}x the uncontended {baseline:.0f} "
                  f"(minimum {GOODPUT_MIN_RATIO}x)", file=sys.stderr)
            failed = True
        else:
            print(f"OK: server_overload sheds={section.get('sheds')} "
                  f"(rate {section.get('shed_rate', 0):.2f}), goodput "
                  f"{ratio:.2f}x of uncontended, "
                  f"p99={section.get('latency_us', {}).get('p99'):.1f}us")
    return failed


# Broker counts every federation section must report (the 1/2/4 scaling
# sweep of bench/run_benchmarks.sh).
FEDERATION_BROKER_COUNTS = [1, 2, 4]


def check_federation(report, required: bool) -> bool:
    """Return True on failure: validate the broker-count scaling sweep."""
    section = report.get("federation")
    if section is None:
        if required:
            print("FAIL: federation section missing (bench JSON not "
                  "produced by bench/run_benchmarks.sh?)", file=sys.stderr)
            return True
        print("SKIP: no federation section")
        return False

    failed = False
    entries = section.get("broker_counts", [])
    counts = [e.get("domains") for e in entries]
    if counts != FEDERATION_BROKER_COUNTS:
        print(f"FAIL: federation broker counts {counts} != "
              f"{FEDERATION_BROKER_COUNTS}", file=sys.stderr)
        return True
    for entry in entries:
        k = entry.get("domains")
        rate = entry.get("admits_per_sec")
        if not (isinstance(rate, (int, float)) and math.isfinite(rate)
                and rate > 0):
            print(f"FAIL: federation[{k}] admits_per_sec={rate} "
                  "(want finite > 0)", file=sys.stderr)
            failed = True
        for key in ("lost_acked", "orphans", "poisoned_txns",
                    "ack_failures", "release_errors"):
            if entry.get(key, -1) != 0:
                print(f"FAIL: federation[{k}] {key}={entry.get(key)}",
                      file=sys.stderr)
                failed = True
        if k > 1 and entry.get("inter_admits", 0) <= 0:
            print(f"FAIL: federation[{k}] never exercised inter-domain "
                  "2PC (inter_admits=0)", file=sys.stderr)
            failed = True
    if not failed:
        rates = ", ".join(f"{e['domains']}: {e['admits_per_sec']:.0f}/s"
                          for e in entries)
        print(f"OK: federation broker-count sweep clean ({rates})")
    return failed


def main() -> int:
    argv = sys.argv[1:]
    require_loadgen = "--require-loadgen" in argv
    argv = [a for a in argv if a != "--require-loadgen"]
    if len(argv) != 1:
        print(f"usage: {sys.argv[0]} [--require-loadgen] bench_smoke.json",
              file=sys.stderr)
        return 2
    try:
        with open(argv[0], encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL: cannot read benchmark JSON: {exc}", file=sys.stderr)
        return 1

    benchmarks = report.get("benchmarks", [])
    if not benchmarks:
        print("FAIL: benchmark JSON contains no benchmarks", file=sys.stderr)
        return 1

    failed = False
    for prefix in REQUIRED_PREFIXES:
        if not any(b.get("name", "").startswith(prefix) for b in benchmarks):
            print(f"FAIL: required benchmark missing: {prefix}",
                  file=sys.stderr)
            failed = True

    for bench in benchmarks:
        name = bench.get("name", "?")
        if bench.get("run_type") == "aggregate":
            continue
        if bench.get("error_occurred"):
            print(f"FAIL: {name}: {bench.get('error_message', 'error')}",
                  file=sys.stderr)
            failed = True
        elif int(bench.get("iterations", 0)) <= 0:
            print(f"FAIL: {name}: zero iterations", file=sys.stderr)
            failed = True

    failed |= check_concurrent_scaling(report, benchmarks)
    failed |= check_group_commit(benchmarks)
    failed |= check_server_loadgen(report, require_loadgen)
    failed |= check_server_overload(report, require_loadgen)
    failed |= check_federation(report, require_loadgen)

    if failed:
        return 1
    print(f"OK: {len(benchmarks)} benchmarks, all required present, "
          "all with iterations > 0")
    return 0


if __name__ == "__main__":
    sys.exit(main())
