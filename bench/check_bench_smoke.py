#!/usr/bin/env python3
"""CI gate for the benchmark smoke run.

Fails (exit 1) when the Google Benchmark JSON is missing any of the
repository's headline benchmarks, or when any reported benchmark ran zero
iterations — both are the signatures of a silently-broken bench binary
that a plain exit-code check would miss.

Two semantic gates ride along:

  * On machines with >= 4 detected cores (context.num_cpus), the
    BM_ConcurrentAdmit 4-thread row must aggregate >= 2x the 1-thread
    items_per_second — the disjoint-path scaling claim of the concurrent
    front. On smaller machines (CI runners often expose 1-2 cores) the
    check is skipped, not waved through: flat scaling there is expected,
    not fine.
  * Every BM_JournalGroupCommit row must report appends_per_batch == 1 —
    the group-commit invariant (K admits, one journal append).
  * When the JSON carries a "server_loadgen" section (bench/run_benchmarks.sh
    merges one from the qosbbd + loadgen end-to-end run), it must be
    healthy: admits_per_sec > 0, finite positive p50/p99 latency, zero
    decode errors, every admit request answered, and context.num_cpus
    stamped. Pass --require-loadgen to fail when the section is absent
    (the bench-smoke CI job does, since it runs via run_benchmarks.sh).

Usage: check_bench_smoke.py [--require-loadgen] bench_smoke.json
"""

import json
import math
import sys

# Benchmark families that must appear in every smoke run (a JSON entry
# whose name starts with one of these prefixes counts).
REQUIRED_PREFIXES = [
    "BM_PerFlowAdmitRelease",
    "BM_ConcurrentAdmit",
    "BM_BatchAdmit",
    "BM_ClassJoinLeave",
    "BM_PolicyCheckOnly",
    "BM_PathViewOnly",
    "BM_JournalAppend",
    "BM_JournalGroupCommit",
    "BM_JournalReplay",
]

# Required aggregate speedup of BM_ConcurrentAdmit at 4 threads over 1
# thread on disjoint paths, asserted only when the machine has the cores
# to show it.
CONCURRENT_SCALING_MIN = 2.0
CONCURRENT_SCALING_CORES = 4


def check_concurrent_scaling(report, benchmarks) -> bool:
    """Return True on failure. Gated on detected core count."""
    num_cpus = int(report.get("context", {}).get("num_cpus", 0))
    if num_cpus < CONCURRENT_SCALING_CORES:
        print(f"SKIP: concurrent scaling check (num_cpus={num_cpus} < "
              f"{CONCURRENT_SCALING_CORES})")
        return False

    def rate(threads: int):
        for bench in benchmarks:
            name = bench.get("name", "")
            if (name.startswith("BM_ConcurrentAdmit")
                    and f"threads:{threads}" in name
                    and bench.get("run_type") != "aggregate"):
                return bench.get("items_per_second")
        return None

    base, scaled = rate(1), rate(CONCURRENT_SCALING_CORES)
    if not base or not scaled:
        print("FAIL: BM_ConcurrentAdmit rows for scaling check missing",
              file=sys.stderr)
        return True
    speedup = scaled / base
    if speedup < CONCURRENT_SCALING_MIN:
        print(f"FAIL: BM_ConcurrentAdmit {CONCURRENT_SCALING_CORES}-thread "
              f"speedup {speedup:.2f}x < {CONCURRENT_SCALING_MIN}x "
              f"(num_cpus={num_cpus})", file=sys.stderr)
        return True
    print(f"OK: BM_ConcurrentAdmit scales {speedup:.2f}x at "
          f"{CONCURRENT_SCALING_CORES} threads (num_cpus={num_cpus})")
    return False


def check_group_commit(benchmarks) -> bool:
    """Return True on failure: every group-commit row appends once."""
    failed = False
    for bench in benchmarks:
        name = bench.get("name", "")
        if (not name.startswith("BM_JournalGroupCommit")
                or bench.get("run_type") == "aggregate"):
            continue
        appends = bench.get("appends_per_batch")
        if appends is None or abs(appends - 1.0) > 1e-9:
            print(f"FAIL: {name}: appends_per_batch={appends} (expected 1)",
                  file=sys.stderr)
            failed = True
    return failed


def check_server_loadgen(report, required: bool) -> bool:
    """Return True on failure: validate the merged loadgen e2e section."""
    section = report.get("server_loadgen")
    if section is None:
        if required:
            print("FAIL: server_loadgen section missing (bench JSON not "
                  "produced by bench/run_benchmarks.sh?)", file=sys.stderr)
            return True
        print("SKIP: no server_loadgen section")
        return False

    failed = False

    def finite_positive(value) -> bool:
        return (isinstance(value, (int, float)) and math.isfinite(value)
                and value > 0)

    if not finite_positive(section.get("admits_per_sec")):
        print(f"FAIL: server_loadgen admits_per_sec="
              f"{section.get('admits_per_sec')} (want finite > 0)",
              file=sys.stderr)
        failed = True
    latency = section.get("latency_us", {})
    for q in ("p50", "p99"):
        if not finite_positive(latency.get(q)):
            print(f"FAIL: server_loadgen latency_us.{q}={latency.get(q)} "
                  "(want finite > 0)", file=sys.stderr)
            failed = True
    if section.get("decode_errors", -1) != 0:
        print(f"FAIL: server_loadgen decode_errors="
              f"{section.get('decode_errors')}", file=sys.stderr)
        failed = True
    requests = section.get("requests")
    answered = section.get("admits", 0) + section.get("rejects", 0)
    if requests is None or answered != requests:
        print(f"FAIL: server_loadgen admits+rejects={answered} != "
              f"requests={requests}", file=sys.stderr)
        failed = True
    if int(report.get("context", {}).get("num_cpus", 0)) <= 0:
        print("FAIL: context.num_cpus not stamped alongside server_loadgen",
              file=sys.stderr)
        failed = True
    if not failed:
        print(f"OK: server_loadgen {section.get('admits_per_sec'):.0f} "
              f"admits/sec, p50={latency.get('p50'):.1f}us "
              f"p99={latency.get('p99'):.1f}us over "
              f"{section.get('connections')} connections")
    return failed


def main() -> int:
    argv = sys.argv[1:]
    require_loadgen = "--require-loadgen" in argv
    argv = [a for a in argv if a != "--require-loadgen"]
    if len(argv) != 1:
        print(f"usage: {sys.argv[0]} [--require-loadgen] bench_smoke.json",
              file=sys.stderr)
        return 2
    try:
        with open(argv[0], encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL: cannot read benchmark JSON: {exc}", file=sys.stderr)
        return 1

    benchmarks = report.get("benchmarks", [])
    if not benchmarks:
        print("FAIL: benchmark JSON contains no benchmarks", file=sys.stderr)
        return 1

    failed = False
    for prefix in REQUIRED_PREFIXES:
        if not any(b.get("name", "").startswith(prefix) for b in benchmarks):
            print(f"FAIL: required benchmark missing: {prefix}",
                  file=sys.stderr)
            failed = True

    for bench in benchmarks:
        name = bench.get("name", "?")
        if bench.get("run_type") == "aggregate":
            continue
        if bench.get("error_occurred"):
            print(f"FAIL: {name}: {bench.get('error_message', 'error')}",
                  file=sys.stderr)
            failed = True
        elif int(bench.get("iterations", 0)) <= 0:
            print(f"FAIL: {name}: zero iterations", file=sys.stderr)
            failed = True

    failed |= check_concurrent_scaling(report, benchmarks)
    failed |= check_group_commit(benchmarks)
    failed |= check_server_loadgen(report, require_loadgen)

    if failed:
        return 1
    print(f"OK: {len(benchmarks)} benchmarks, all required present, "
          "all with iterations > 0")
    return 0


if __name__ == "__main__":
    sys.exit(main())
