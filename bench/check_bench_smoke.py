#!/usr/bin/env python3
"""CI gate for the benchmark smoke run.

Fails (exit 1) when the Google Benchmark JSON is missing any of the
repository's headline benchmarks, or when any reported benchmark ran zero
iterations — both are the signatures of a silently-broken bench binary
that a plain exit-code check would miss.

Two semantic gates ride along:

  * On machines with >= 4 detected cores (context.num_cpus), the
    BM_ConcurrentAdmit 4-thread row must aggregate >= 2x the 1-thread
    items_per_second — the disjoint-path scaling claim of the concurrent
    front. On smaller machines (CI runners often expose 1-2 cores) the
    check is skipped, not waved through: flat scaling there is expected,
    not fine.
  * Every BM_JournalGroupCommit row must report appends_per_batch == 1 —
    the group-commit invariant (K admits, one journal append).

Usage: check_bench_smoke.py bench_smoke.json
"""

import json
import sys

# Benchmark families that must appear in every smoke run (a JSON entry
# whose name starts with one of these prefixes counts).
REQUIRED_PREFIXES = [
    "BM_PerFlowAdmitRelease",
    "BM_ConcurrentAdmit",
    "BM_BatchAdmit",
    "BM_ClassJoinLeave",
    "BM_PolicyCheckOnly",
    "BM_PathViewOnly",
    "BM_JournalAppend",
    "BM_JournalGroupCommit",
    "BM_JournalReplay",
]

# Required aggregate speedup of BM_ConcurrentAdmit at 4 threads over 1
# thread on disjoint paths, asserted only when the machine has the cores
# to show it.
CONCURRENT_SCALING_MIN = 2.0
CONCURRENT_SCALING_CORES = 4


def check_concurrent_scaling(report, benchmarks) -> bool:
    """Return True on failure. Gated on detected core count."""
    num_cpus = int(report.get("context", {}).get("num_cpus", 0))
    if num_cpus < CONCURRENT_SCALING_CORES:
        print(f"SKIP: concurrent scaling check (num_cpus={num_cpus} < "
              f"{CONCURRENT_SCALING_CORES})")
        return False

    def rate(threads: int):
        for bench in benchmarks:
            name = bench.get("name", "")
            if (name.startswith("BM_ConcurrentAdmit")
                    and f"threads:{threads}" in name
                    and bench.get("run_type") != "aggregate"):
                return bench.get("items_per_second")
        return None

    base, scaled = rate(1), rate(CONCURRENT_SCALING_CORES)
    if not base or not scaled:
        print("FAIL: BM_ConcurrentAdmit rows for scaling check missing",
              file=sys.stderr)
        return True
    speedup = scaled / base
    if speedup < CONCURRENT_SCALING_MIN:
        print(f"FAIL: BM_ConcurrentAdmit {CONCURRENT_SCALING_CORES}-thread "
              f"speedup {speedup:.2f}x < {CONCURRENT_SCALING_MIN}x "
              f"(num_cpus={num_cpus})", file=sys.stderr)
        return True
    print(f"OK: BM_ConcurrentAdmit scales {speedup:.2f}x at "
          f"{CONCURRENT_SCALING_CORES} threads (num_cpus={num_cpus})")
    return False


def check_group_commit(benchmarks) -> bool:
    """Return True on failure: every group-commit row appends once."""
    failed = False
    for bench in benchmarks:
        name = bench.get("name", "")
        if (not name.startswith("BM_JournalGroupCommit")
                or bench.get("run_type") == "aggregate"):
            continue
        appends = bench.get("appends_per_batch")
        if appends is None or abs(appends - 1.0) > 1e-9:
            print(f"FAIL: {name}: appends_per_batch={appends} (expected 1)",
                  file=sys.stderr)
            failed = True
    return failed


def main() -> int:
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} bench_smoke.json", file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1], encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL: cannot read benchmark JSON: {exc}", file=sys.stderr)
        return 1

    benchmarks = report.get("benchmarks", [])
    if not benchmarks:
        print("FAIL: benchmark JSON contains no benchmarks", file=sys.stderr)
        return 1

    failed = False
    for prefix in REQUIRED_PREFIXES:
        if not any(b.get("name", "").startswith(prefix) for b in benchmarks):
            print(f"FAIL: required benchmark missing: {prefix}",
                  file=sys.stderr)
            failed = True

    for bench in benchmarks:
        name = bench.get("name", "?")
        if bench.get("run_type") == "aggregate":
            continue
        if bench.get("error_occurred"):
            print(f"FAIL: {name}: {bench.get('error_message', 'error')}",
                  file=sys.stderr)
            failed = True
        elif int(bench.get("iterations", 0)) <= 0:
            print(f"FAIL: {name}: zero iterations", file=sys.stderr)
            failed = True

    failed |= check_concurrent_scaling(report, benchmarks)
    failed |= check_group_commit(benchmarks)

    if failed:
        return 1
    print(f"OK: {len(benchmarks)} benchmarks, all required present, "
          "all with iterations > 0")
    return 0


if __name__ == "__main__":
    sys.exit(main())
