#!/usr/bin/env python3
"""CI gate for the benchmark smoke run.

Fails (exit 1) when the Google Benchmark JSON is missing any of the
repository's headline benchmarks, or when any reported benchmark ran zero
iterations — both are the signatures of a silently-broken bench binary
that a plain exit-code check would miss.

Usage: check_bench_smoke.py bench_smoke.json
"""

import json
import sys

# Benchmark families that must appear in every smoke run (a JSON entry
# whose name starts with one of these prefixes counts).
REQUIRED_PREFIXES = [
    "BM_PerFlowAdmitRelease",
    "BM_ConcurrentAdmit",
    "BM_ClassJoinLeave",
    "BM_PolicyCheckOnly",
    "BM_PathViewOnly",
    "BM_JournalAppend",
    "BM_JournalReplay",
]


def main() -> int:
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} bench_smoke.json", file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1], encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL: cannot read benchmark JSON: {exc}", file=sys.stderr)
        return 1

    benchmarks = report.get("benchmarks", [])
    if not benchmarks:
        print("FAIL: benchmark JSON contains no benchmarks", file=sys.stderr)
        return 1

    failed = False
    for prefix in REQUIRED_PREFIXES:
        if not any(b.get("name", "").startswith(prefix) for b in benchmarks):
            print(f"FAIL: required benchmark missing: {prefix}",
                  file=sys.stderr)
            failed = True

    for bench in benchmarks:
        name = bench.get("name", "?")
        if bench.get("run_type") == "aggregate":
            continue
        if bench.get("error_occurred"):
            print(f"FAIL: {name}: {bench.get('error_message', 'error')}",
                  file=sys.stderr)
            failed = True
        elif int(bench.get("iterations", 0)) <= 0:
            print(f"FAIL: {name}: zero iterations", file=sys.stderr)
            failed = True

    if failed:
        return 1
    print(f"OK: {len(benchmarks)} benchmarks, all required present, "
          "all with iterations > 0")
    return 0


if __name__ == "__main__":
    sys.exit(main())
