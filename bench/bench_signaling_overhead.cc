// Control-plane signaling overhead: RSVP soft state vs the bandwidth
// broker (Section 1's motivation, quantified).
//
// N flows live for T seconds. RSVP pays setup (2 messages/hop) plus
// periodic refreshes (h messages per flow per period, RFC 2205-style) at
// every router; the BB pays 2 messages per flow TOTAL (request + reply to
// the broker) and zero router involvement. Sweep the refresh period R:
// shorter R means faster failure recovery but linearly more refresh load —
// the trade-off the state-reduction work cited in the paper ([6,16,17])
// tries to soften, and which the BB removes outright.

#include <iostream>

#include "gs/soft_state.h"
#include "topo/fig8.h"
#include "util/table.h"

int main() {
  using namespace qosbb;

  const TrafficProfile type0 =
      TrafficProfile::make(60000, 50000, 100000, 12000);
  const int flows = 30;
  const Seconds horizon = 600.0;

  std::cout << "=== Signaling overhead: RSVP soft state vs BB ===\n"
            << flows << " flows on the 5-hop S1 path, alive for " << horizon
            << " s.\n\n";

  TextTable table({"scheme", "refresh R (s)", "setup msgs", "refresh msgs",
                   "total msgs", "msgs/flow/min"});

  for (double period : {5.0, 15.0, 30.0, 90.0}) {
    EventQueue events;
    RsvpSoftStateDomain::Options opt;
    opt.refresh_period = period;
    opt.lifetime_refreshes = 3;
    opt.jitter = 0.5;
    RsvpSoftStateDomain rsvp(fig8_gs_topology(Fig8Setting::kRateBasedOnly),
                             events, opt, 7);
    std::uint64_t setup = 0;
    for (int i = 0; i < flows; ++i) {
      auto res = rsvp.reserve(fig8_path_s1(), type0, 2.44);
      if (!res.admitted) break;
      setup += static_cast<std::uint64_t>(res.messages);
    }
    events.run_until(horizon);
    const std::uint64_t total = setup + rsvp.refresh_messages();
    table.add_row(
        {"RSVP soft state", TextTable::fmt(period, 0),
         TextTable::fmt_int(static_cast<long long>(setup)),
         TextTable::fmt_int(static_cast<long long>(rsvp.refresh_messages())),
         TextTable::fmt_int(static_cast<long long>(total)),
         TextTable::fmt(static_cast<double>(total) / flows /
                            (horizon / 60.0),
                        2)});
  }

  // The BB: one request + one reply per flow, no refreshes, no routers.
  const std::uint64_t bb_total = 2 * flows;
  table.add_row({"BB/VTRS", "-", TextTable::fmt_int(bb_total), "0",
                 TextTable::fmt_int(bb_total),
                 TextTable::fmt(static_cast<double>(bb_total) / flows /
                                    (horizon / 60.0),
                                2)});
  table.print(std::cout);

  std::cout << "\nRSVP refresh load grows as h·N/R for the lifetime of every "
               "flow; the BB's control traffic is one round trip per flow "
               "event, independent of path length and holding time.\n";
  return 0;
}
