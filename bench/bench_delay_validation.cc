// Validates the analytic end-to-end delay bounds (eqs. 2–4) that underpin
// every admission decision: for each scheduler setting and delay bound, fill
// the S1 path to capacity with greedy (worst-case) type-0 flows, run the
// packet-level data plane, and report measured worst-case delay vs the
// bound, plus the VTRS property audit (reality check / virtual spacing /
// scheduler guarantee — all must be zero).

#include <iostream>
#include <memory>

#include "core/broker.h"
#include "topo/fig8.h"
#include "util/stats.h"
#include "util/table.h"
#include "vtrs/provisioned_network.h"

int main() {
  using namespace qosbb;

  struct Config {
    Fig8Setting setting;
    double bound;
    const char* name;
  };
  const Config configs[] = {
      {Fig8Setting::kRateBasedOnly, 2.44, "rate-only D=2.44"},
      {Fig8Setting::kRateBasedOnly, 2.19, "rate-only D=2.19"},
      {Fig8Setting::kMixed, 2.44, "mixed D=2.44"},
      {Fig8Setting::kMixed, 2.19, "mixed D=2.19"},
  };

  std::cout << "=== Delay-bound validation (eqs. 2-4) ===\n"
            << "Greedy type-0 sources, path filled to first reject, 30 s of "
               "traffic.\n\n";

  TextTable table({"config", "flows", "packets", "p50 (s)", "p99 (s)",
                   "max delay (s)", "tightest bound (s)",
                   "bound violations", "VTRS violations"});

  // Tee the egress deliveries into a per-config delay histogram on top of
  // the standard meter.
  struct HistSink final : PacketSink {
    DelayMeter* meter = nullptr;
    Histogram* hist = nullptr;
    void deliver(Seconds now, const Packet& p) override {
      meter->deliver(now, p);
      hist->add(now - p.source_time);
    }
  };

  bool all_ok = true;
  for (const Config& cfg : configs) {
    const DomainSpec spec = fig8_topology(cfg.setting);
    BandwidthBroker bb(spec);
    ProvisionedNetwork pn(spec);
    Histogram hist(0.0, 2.5, 500);
    HistSink sink;
    sink.meter = &pn.meter();
    sink.hist = &hist;
    const TrafficProfile type0 =
        TrafficProfile::make(60000, 50000, 100000, 12000);

    int flows = 0;
    double tightest_bound = 1e9;
    std::vector<FlowId> ids;
    while (true) {
      auto res = bb.request_service({type0, cfg.bound, "I1", "E1"});
      if (!res.is_ok()) break;
      const Reservation& r = res.value();
      pn.install_flow(r.flow, fig8_path_s1(), r.params.rate, r.params.delay);
      pn.network().node("E1").set_sink(r.flow, &sink);
      pn.attach_source(r.flow, std::make_unique<GreedySource>(type0, 0.0),
                       r.flow, 30.0)
          .start();
      pn.expect_bounds(r.flow, 1e9, r.e2e_bound);
      tightest_bound = std::min(tightest_bound, r.e2e_bound);
      ids.push_back(r.flow);
      ++flows;
    }
    pn.run_until(60.0);

    double max_delay = 0.0;
    std::uint64_t violations = 0;
    for (FlowId id : ids) {
      const auto& rec = pn.meter().record(id);
      max_delay = std::max(max_delay, rec.total_delay.max());
      violations += rec.total_violations;
    }
    const std::uint64_t vtrs = pn.vtrs().total_reality_check_violations() +
                               pn.vtrs().total_spacing_violations() +
                               pn.vtrs().total_guarantee_violations();
    all_ok = all_ok && violations == 0 && vtrs == 0;
    table.add_row(
        {cfg.name, TextTable::fmt_int(flows),
         TextTable::fmt_int(
             static_cast<long long>(pn.meter().total_packets())),
         TextTable::fmt(hist.quantile(0.5), 4),
         TextTable::fmt(hist.quantile(0.99), 4),
         TextTable::fmt(max_delay, 4), TextTable::fmt(tightest_bound, 4),
         TextTable::fmt_int(static_cast<long long>(violations)),
         TextTable::fmt_int(static_cast<long long>(vtrs))});
  }

  table.print(std::cout);
  std::cout << "\nExpected: zero violations in every row; measured max "
               "approaches but never exceeds the bound.\n";
  return all_ok ? 0 : 1;
}
