// Domain-scale ablation: how the BB's admission cost and the data plane's
// simulation throughput scale with topology size — long chains (path
// length) and wide dumbbells (flow-count pressure on one path MIB entry).
//
//  * BM_AdmissionVsPathLength — the §3.1 test is O(h) only through the
//    residual-min scan; the hop count is the entire cost driver.
//  * BM_AdmissionVsDumbbellWidth — many ingress pairs sharing a bottleneck:
//    per-request cost stays flat because the path MIB keys pairs
//    independently.
//  * BM_PacketSimThroughput — events/second of the packet-level data plane
//    on a loaded chain, the number that bounds every delay-validation run.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/broker.h"
#include "topo/builders.h"
#include "vtrs/provisioned_network.h"

namespace {

using namespace qosbb;

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

void BM_AdmissionVsPathLength(benchmark::State& state) {
  ChainOptions opt;
  opt.hops = static_cast<int>(state.range(0));
  opt.capacity = 1e9;  // capacity never binds; isolate the path-length cost
  BandwidthBroker bb(chain_topology(opt));
  FlowServiceRequest req{type0(), 1e3, "N0",
                         "N" + std::to_string(opt.hops)};
  for (auto _ : state) {
    auto res = bb.request_service(req);
    if (!res.is_ok()) {
      state.SkipWithError("admission failed");
      return;
    }
    // qosbb-lint: allow(discarded-status)
    (void)bb.release_service(res.value().flow);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdmissionVsPathLength)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_AdmissionVsDumbbellWidth(benchmark::State& state) {
  DumbbellOptions opt;
  opt.edge_pairs = static_cast<int>(state.range(0));
  opt.bottleneck_capacity = 1e9;
  BandwidthBroker bb(dumbbell_topology(opt));
  // Warm every pair's path (the realistic steady state).
  for (int k = 0; k < opt.edge_pairs; ++k) {
    // qosbb-lint: allow(discarded-status)
    (void)bb.provision_path("I" + std::to_string(k),
                            "E" + std::to_string(k));
  }
  int k = 0;
  for (auto _ : state) {
    const std::string in = "I" + std::to_string(k);
    const std::string out = "E" + std::to_string(k);
    k = (k + 1) % opt.edge_pairs;
    auto res = bb.request_service({type0(), 10.0, in, out});
    if (!res.is_ok()) {
      state.SkipWithError("admission failed");
      return;
    }
    // qosbb-lint: allow(discarded-status)
    (void)bb.release_service(res.value().flow);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdmissionVsDumbbellWidth)->Arg(2)->Arg(16)->Arg(128);

void BM_PacketSimThroughput(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ChainOptions opt;
    opt.hops = 5;
    const DomainSpec spec = chain_topology(opt);
    BandwidthBroker bb(spec);
    ProvisionedNetwork pn(spec);
    for (int i = 0; i < flows; ++i) {
      auto res = bb.request_service({type0(), 10.0, "N0", "N5"});
      if (!res.is_ok()) break;
      pn.install_flow(res.value().flow, chain_path(opt),
                      res.value().params.rate, res.value().params.delay);
      pn.attach_source(res.value().flow,
                       std::make_unique<GreedySource>(type0(), 0.0),
                       res.value().flow, 10.0)
          .start();
    }
    state.ResumeTiming();
    pn.run_until(20.0);
    events += pn.events().dispatched();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PacketSimThroughput)->Arg(5)->Arg(20);

}  // namespace

BENCHMARK_MAIN();
