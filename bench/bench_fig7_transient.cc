// Reproduces the Section-4.1 dynamic-aggregation transient (the Figure-7
// phenomenon) and its repair by contingency bandwidth.
//
// The paper shows that around a microflow join/leave, backlog accumulated
// under the OLD reservation can push edge delays past the NEW aggregate's
// bound d_edge^α'. The starkest instance is a microflow LEAVE with an
// immediate rate decrease (Section 4.1, last paragraph; Theorem 3):
//
//   * macroflow α = 2 greedy type-0 microflows from t = 0, shaped at
//     r^α = ρ^α = 100 kb/s; edge bound d_edge^α = 1.2 s;
//   * at t* = T_on^α = 0.96 s — when the conditioner backlog peaks at
//     Q = (P^α − r^α)·T_on + L^α = 120 kb — microflow 2 leaves;
//   * NAIVE policy: the rate drops to r^α' = 50 kb/s immediately. The old
//     120 kb backlog now drains at half speed: packets wait up to
//     Q/r^α' ≈ 2.4 s, double the new bound d_edge^α' = 1.2 s;
//   * CONTINGENCY policy (Thm 3): keep Δr^ν = r^α − r^α' for
//     τ = Q(t*)/Δr^ν, then drop. Delays stay within
//     max{d_edge^α, d_edge^α'} = 1.2 s (eq. 13).
//
// (The join-side transient of Figure 7 proper exists too but its violation
// margin for the paper's profiles is smaller than one packet transmission
// time, so the packetized data plane cannot resolve it; the leave-side
// transient exhibits the same mechanism at 2x magnitude.)

#include <iostream>
#include <memory>

#include "topo/fig8.h"
#include "util/table.h"
#include "vtrs/provisioned_network.h"

namespace {

using namespace qosbb;

struct RunResult {
  double max_edge_delay_after_leave = 0.0;
  std::uint64_t packets = 0;
};

RunResult run_scenario(bool with_contingency, double r_alpha,
                       double r_alpha_prime, Seconds t_star, Seconds tau) {
  const DomainSpec spec = fig8_topology(Fig8Setting::kRateBasedOnly);
  ProvisionedNetwork pn(spec);
  const FlowId macro = 1;
  EdgeConditioner& cond =
      pn.install_flow(macro, fig8_path_s1(), r_alpha, 0.0);

  const TrafficProfile type0 =
      TrafficProfile::make(60000, 50000, 100000, 12000);
  // Microflow 1 lives on; microflow 2 stops sending at the leave instant.
  pn.attach_source(macro, std::make_unique<GreedySource>(type0, 0.0), 101,
                   20.0)
      .start();
  pn.attach_source(macro, std::make_unique<GreedySource>(type0, 0.0), 102,
                   t_star)
      .start();

  if (with_contingency) {
    // Theorem 3: hold r^α for τ, then drop to r^α'.
    pn.events().schedule(t_star + tau, [&, t = t_star + tau] {
      cond.set_rate(t, r_alpha_prime);
    });
  } else {
    pn.events().schedule(t_star,
                         [&] { cond.set_rate(t_star, r_alpha_prime); });
  }

  // Track the worst edge delay among packets released after t*.
  struct LeaveMeter final : PacketSink {
    Seconds t_star;
    double worst = 0.0;
    std::uint64_t packets = 0;
    void deliver(Seconds, const Packet& p) override {
      ++packets;
      if (p.edge_time >= t_star) {
        worst = std::max(worst, p.edge_time - p.source_time);
      }
    }
  };
  // Replace the default sink with the leave-aware one.
  LeaveMeter meter;
  meter.t_star = t_star;
  pn.network().node("E1").set_sink(macro, &meter);

  pn.run_until(40.0);
  return RunResult{meter.worst, meter.packets};
}

}  // namespace

int main() {
  using namespace qosbb;

  const TrafficProfile type0 =
      TrafficProfile::make(60000, 50000, 100000, 12000);
  const TrafficProfile alpha = type0 + type0;

  const double r_alpha = alpha.rho;        // 100 kb/s
  const double r_alpha_prime = type0.rho;  // 50 kb/s after the leave
  const double delta_r = r_alpha - r_alpha_prime;  // Δr^ν = r^ν (Thm 3)
  const Seconds t_star = alpha.t_on();     // 0.96 s: backlog peak
  // Worst-case backlog at t*: E^α(T_on) − r^α·T_on.
  const double q_star =
      (alpha.peak - r_alpha) * alpha.t_on() + alpha.l_max;
  const Seconds tau = q_star / delta_r;  // Theorem 3: τ >= Q(t*)/Δr^ν

  const Seconds d_edge_old = alpha.edge_delay_bound(r_alpha);        // 1.2 s
  const Seconds d_edge_new = type0.edge_delay_bound(r_alpha_prime);  // 1.2 s
  const Seconds repaired_bound = std::max(d_edge_old, d_edge_new);

  std::cout << "=== Section 4.1 transient: microflow leave ===\n"
            << "macroflow: 2x type-0 greedy, r_alpha = " << r_alpha
            << " b/s; microflow 2 leaves at t* = " << t_star
            << " s with backlog Q(t*) = " << q_star << " b\n"
            << "naive: rate drops to " << r_alpha_prime
            << " b/s at t*; contingency: hold " << r_alpha << " b/s for tau = "
            << TextTable::fmt(tau, 2) << " s (Thm 3), then drop\n\n";

  auto naive =
      run_scenario(false, r_alpha, r_alpha_prime, t_star, tau);
  auto repaired =
      run_scenario(true, r_alpha, r_alpha_prime, t_star, tau);

  TextTable table({"policy", "edge bound (s)", "measured max after t* (s)",
                   "violated?", "packets"});
  table.add_row({"naive rate drop", TextTable::fmt(d_edge_new, 4),
                 TextTable::fmt(naive.max_edge_delay_after_leave, 4),
                 naive.max_edge_delay_after_leave > d_edge_new + 1e-9
                     ? "YES"
                     : "no",
                 TextTable::fmt_int(static_cast<long long>(naive.packets))});
  table.add_row(
      {"contingency (Thm 3)", TextTable::fmt(repaired_bound, 4),
       TextTable::fmt(repaired.max_edge_delay_after_leave, 4),
       repaired.max_edge_delay_after_leave > repaired_bound + 1e-9 ? "YES"
                                                                   : "no",
       TextTable::fmt_int(static_cast<long long>(repaired.packets))});
  table.print(std::cout);

  std::cout << "\nPaper claim (Sec 4.1-4.2): an immediate rate decrease lets "
               "old backlog violate the new edge bound (expected ~2x here); "
               "Theorem-3 contingency bandwidth restores eq. (13).\n";
  return naive.max_edge_delay_after_leave > d_edge_new + 1e-9 &&
                 repaired.max_edge_delay_after_leave <= repaired_bound + 1e-9
             ? 0
             : 1;
}
