// Ablation: cost of admission control as the QoS state grows.
//
//  * BM_PathOrientedRateOnly — the §3.1 O(1) test on a warm MIB with n
//    flows: cost must be flat in n.
//  * BM_PathOrientedMixed — the §3.2 Figure-4 scan: cost grows with the
//    number of DISTINCT delay values M, not the number of flows.
//  * BM_Fig4ScanVsDistinctDelays — M synthetic delay classes on the path's
//    VT-EDF links: near-linear in M (the paper's O(M) claim).
//  * BM_HopByHopSignaling — the IntServ/GS PATH/RESV walk for comparison:
//    per-request message count scales with the hop count, and every router
//    pays a local test.
//
// Domains are capacity-scaled so the warm state actually holds n flows.

#include <benchmark/benchmark.h>

#include "core/broker.h"
#include "core/perflow_admission.h"
#include "gs/gs_admission.h"
#include "topo/fig8.h"

namespace {

using namespace qosbb;

TrafficProfile type0() {
  return TrafficProfile::make(60000, 50000, 100000, 12000);
}

void BM_PathOrientedRateOnly(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  // Scale capacity so n flows fit with slack for the probe flow.
  BandwidthBroker bb(fig8_topology(Fig8Setting::kRateBasedOnly,
                                   50000.0 * (n + 10)));
  FlowServiceRequest req{type0(), 2.44, "I1", "E1"};
  for (int i = 0; i < n; ++i) {
    if (!bb.request_service(req).is_ok()) {
      state.SkipWithError("warmup admission failed");
      return;
    }
  }
  const PathId path = bb.paths().find("I1", "E1");
  for (auto _ : state) {
    auto view = bb.path_view(path);
    auto out = admit_rate_only(view, type0(), 2.44);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel("warm flows: " + std::to_string(n));
}
BENCHMARK(BM_PathOrientedRateOnly)->RangeMultiplier(8)->Range(8, 4096);

void BM_PathOrientedMixed(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BandwidthBroker bb(
      fig8_topology(Fig8Setting::kMixed, 60000.0 * (n + 10)));
  FlowServiceRequest req{type0(), 2.19, "I1", "E1"};
  for (int i = 0; i < n; ++i) {
    if (!bb.request_service(req).is_ok()) {
      state.SkipWithError("warmup admission failed");
      return;
    }
  }
  const PathId path = bb.paths().find("I1", "E1");
  for (auto _ : state) {
    auto view = bb.path_view(path);
    auto out = admit_mixed(view, type0(), 2.19);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_PathOrientedMixed)->RangeMultiplier(8)->Range(8, 4096);

void BM_Fig4ScanVsDistinctDelays(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  // Big pipe; install m distinct delay classes directly in the node MIB.
  BandwidthBroker bb(fig8_topology(Fig8Setting::kMixed, 1e9));
  (void)bb.provision_path("I1", "E1");  // qosbb-lint: allow(discarded-status)
  for (const char* ln : {"R3->R4", "R4->R5"}) {
    LinkQosState& link = bb.nodes().link(ln);
    for (int k = 0; k < m; ++k) {
      const double d = 0.02 + 0.002 * k;
      link.add_edf_entry(50000.0, d, 12000.0);
      (void)link.reserve(50000.0);
    }
  }
  const PathId path = bb.paths().find("I1", "E1");
  for (auto _ : state) {
    auto view = bb.path_view(path);
    auto out = admit_mixed(view, type0(), 2.19);
    benchmark::DoNotOptimize(out);
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_Fig4ScanVsDistinctDelays)
    ->RangeMultiplier(4)
    ->Range(4, 4096)
    ->Complexity();

void BM_HopByHopSignaling(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  GsAdmissionControl gs(fig8_gs_topology(Fig8Setting::kRateBasedOnly,
                                         50000.0 * (n + 10)));
  FlowServiceRequest req{type0(), 2.44, "I1", "E1"};
  for (int i = 0; i < n; ++i) {
    if (!gs.request_service(req).admitted) {
      state.SkipWithError("warmup admission failed");
      return;
    }
  }
  std::uint64_t messages = 0;
  for (auto _ : state) {
    auto res = gs.request_service(req);
    benchmark::DoNotOptimize(res);
    messages += static_cast<std::uint64_t>(res.messages);
    if (res.admitted) {
      state.PauseTiming();
      // qosbb-lint: allow(discarded-status)
      (void)gs.release_service(res.flow);
      state.ResumeTiming();
    }
  }
  state.counters["messages/req"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_HopByHopSignaling)->RangeMultiplier(8)->Range(8, 4096);

}  // namespace

BENCHMARK_MAIN();
