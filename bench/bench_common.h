// Shared helpers for the benchmark binaries reproducing the paper's
// evaluation (Section 5).

#ifndef QOSBB_BENCH_BENCH_COMMON_H_
#define QOSBB_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/broker.h"
#include "flowsim/workload.h"
#include "gs/gs_admission.h"
#include "topo/fig8.h"

namespace qosbb::bench {

/// Admit type-0 flows from S1 until the first reject (per-flow BB/VTRS).
/// Returns the admitted count; optionally records every reserved rate.
inline int fill_perflow_bb(Fig8Setting setting, Seconds bound,
                           std::vector<double>* rates = nullptr) {
  BandwidthBroker bb(fig8_topology(setting));
  FlowServiceRequest req{paper_traffic_type(0), bound, "I1", "E1"};
  int n = 0;
  while (true) {
    auto res = bb.request_service(req);
    if (!res.is_ok()) break;
    if (rates) rates->push_back(res.value().params.rate);
    ++n;
  }
  return n;
}

/// Admit type-0 flows until first reject (IntServ/GS hop-by-hop).
inline int fill_intserv_gs(Fig8Setting setting, Seconds bound,
                           std::vector<double>* rates = nullptr) {
  GsAdmissionControl gs(fig8_gs_topology(setting));
  FlowServiceRequest req{paper_traffic_type(0), bound, "I1", "E1"};
  int n = 0;
  while (true) {
    auto res = gs.request_service(req);
    if (!res.admitted) break;
    if (rates) rates->push_back(res.rate);
    ++n;
  }
  return n;
}

/// Admit type-0 microflows into one delay class until first reject
/// (aggregate BB/VTRS). Arrivals are spaced out (as in the paper's
/// infinite-lifetime setup), so each join's contingency period has lapsed
/// before the next join: we expire the grant right after the join. Records
/// the macroflow base rate after each join (per-flow share = base/n).
inline int fill_aggregate_bb(Fig8Setting setting, Seconds bound, Seconds cd,
                             std::vector<double>* base_rates = nullptr) {
  BandwidthBroker bb(fig8_topology(setting),
                     BrokerOptions{ContingencyMethod::kBounding});
  const ClassId cls = bb.define_class(bound, cd);
  int n = 0;
  Seconds now = 0.0;
  while (true) {
    JoinResult join = bb.request_class_service(cls, paper_traffic_type(0),
                                               "I1", "E1", now);
    if (!join.admitted) break;
    if (join.grant != kInvalidGrantId) {
      bb.expire_contingency(join.grant, join.contingency_expires_at);
      now = std::max(now, join.contingency_expires_at);
    }
    if (base_rates) base_rates->push_back(join.base_rate);
    ++n;
    now += 1.0;
  }
  return n;
}

}  // namespace qosbb::bench

#endif  // QOSBB_BENCH_BENCH_COMMON_H_
