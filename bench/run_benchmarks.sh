#!/usr/bin/env bash
# Run the admission-hot-path benchmark suite and emit Google Benchmark JSON.
#
# Usage:
#   bench/run_benchmarks.sh [output.json] [extra benchmark args...]
#
# Builds (if needed) and runs bench_bb_throughput with
# --benchmark_format=json. The checked-in trajectory lives in
# BENCH_bb_throughput.json at the repo root: a {"before": ..., "after": ...}
# pair of such runs bracketing the incremental-cache PR. To refresh the
# "after" side on a quiet machine:
#   bench/run_benchmarks.sh /tmp/after.json --benchmark_min_time=0.2
#
# NOTE: this container's Google Benchmark parses --benchmark_min_time as a
# plain double (no "s" suffix).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-bench_results/bb_throughput.json}"
shift || true

cmake -B "$repo_root/build" -S "$repo_root" >/dev/null
cmake --build "$repo_root/build" --target bench_bb_throughput qosbbd loadgen \
  fed_loadgen -j >/dev/null

mkdir -p "$(dirname "$out")"
"$repo_root/build/bench/bench_bb_throughput" \
  --benchmark_format=json \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  "$@"

# End-to-end server numbers: boot qosbbd on an ephemeral loopback port,
# drive it with the closed-loop loadgen, and merge the report into the
# benchmark JSON as the "server_loadgen" section — admits/sec and the
# p50/p99/p999 signaling latency through the real socket path. Scale with
# LOADGEN_REQUESTS; skip entirely with LOADGEN_REQUESTS=0 (e.g. profiling
# runs that only want the in-process numbers).
loadgen_requests="${LOADGEN_REQUESTS:-100000}"
loadgen_json=""
if [[ "$loadgen_requests" -gt 0 ]]; then
  tmp_dir="$(mktemp -d)"
  trap 'rm -rf "$tmp_dir"' EXIT
  "$repo_root/build/tools/qosbbd" --port=0 \
    --port-file="$tmp_dir/port" 2>"$tmp_dir/qosbbd.log" &
  server_pid=$!
  for _ in $(seq 1 100); do
    [[ -s "$tmp_dir/port" ]] && break
    sleep 0.1
  done
  loadgen_json="$tmp_dir/loadgen.json"
  "$repo_root/build/tools/loadgen" --port-file="$tmp_dir/port" \
    --connections="${LOADGEN_CONNECTIONS:-4}" \
    --pipeline="${LOADGEN_PIPELINE:-64}" \
    --requests="$loadgen_requests" \
    --teardown-every="${LOADGEN_TEARDOWN_EVERY:-8}" \
    --json-out="$loadgen_json"
  kill -TERM "$server_pid"
  wait "$server_pid"
fi

# Overload section: the SAME closed-loop load against a qosbbd with tight
# in-flight budgets, at 2x the concurrency of the uncontended run. The
# point is the degradation curve, not peak throughput: the server must
# SHED (explicit kOverloadedReply, counted by loadgen) while goodput —
# admits/sec of ACCEPTED requests — stays close to the uncontended number
# and the p99 of accepted admits stays finite. Merged as the
# "server_overload" section; gated by check_bench_smoke.py. Scale with
# OVERLOAD_REQUESTS; OVERLOAD_REQUESTS=0 skips.
overload_requests="${OVERLOAD_REQUESTS:-$((loadgen_requests / 2))}"
overload_json=""
if [[ "$overload_requests" -gt 0 ]]; then
  [[ -n "${tmp_dir:-}" ]] || { tmp_dir="$(mktemp -d)"; trap 'rm -rf "$tmp_dir"' EXIT; }
  # Budgets sized against the 8x64 offered load: the per-connection budget
  # (56) sits just under the pipeline depth (64), so every full burst
  # structurally sheds its tail (~12%) while the global budget stays above
  # the service pipeline's natural queue depth — shedding trims the excess
  # instead of starving accepted throughput.
  "$repo_root/build/tools/qosbbd" --port=0 \
    --port-file="$tmp_dir/overload_port" \
    --max-inflight=448 --max-inflight-conn=56 \
    --deadline-ms=200 --brownout-inflight=336 \
    2>"$tmp_dir/qosbbd_overload.log" &
  overload_pid=$!
  for _ in $(seq 1 100); do
    [[ -s "$tmp_dir/overload_port" ]] && break
    sleep 0.1
  done
  overload_json="$tmp_dir/overload.json"
  "$repo_root/build/tools/loadgen" --port-file="$tmp_dir/overload_port" \
    --connections="${OVERLOAD_CONNECTIONS:-8}" \
    --pipeline="${OVERLOAD_PIPELINE:-64}" \
    --requests="$overload_requests" \
    --teardown-every="${LOADGEN_TEARDOWN_EVERY:-8}" \
    --json-out="$overload_json"
  kill -TERM "$overload_pid"
  wait "$overload_pid"
fi

# Federation scaling section: the coordinator (fed_loadgen) against fleets
# of 1, 2, and 4 socket-connected domain brokers on the partitioned
# multi-domain topology — aggregate admits/sec per broker count, the
# decoupling claim of the federated control plane (intra-domain decisions
# stay member-local; only inter-domain flows pay the 2PC round trips).
# Merged as the "federation" section, gated by check_bench_smoke.py. Scale
# with FEDBENCH_REQUESTS; FEDBENCH_REQUESTS=0 skips.
fedbench_requests="${FEDBENCH_REQUESTS:-$((loadgen_requests / 25))}"
fed_jsons=()
if [[ "$fedbench_requests" -gt 0 ]]; then
  [[ -n "${tmp_dir:-}" ]] || { tmp_dir="$(mktemp -d)"; trap 'rm -rf "$tmp_dir"' EXIT; }
  for brokers in 1 2 4; do
    member_pids=()
    for ((d = 0; d < brokers; d++)); do
      "$repo_root/build/tools/qosbbd" --topo=multidomain \
        --domains="$brokers" --domain-index="$d" --port=0 \
        --port-file="$tmp_dir/fed$brokers.port.$d" \
        2>"$tmp_dir/fed$brokers.member$d.log" &
      member_pids+=($!)
    done
    for ((d = 0; d < brokers; d++)); do
      for _ in $(seq 1 100); do
        [[ -s "$tmp_dir/fed$brokers.port.$d" ]] && break
        sleep 0.1
      done
    done
    fed_json="$tmp_dir/fed$brokers.json"
    "$repo_root/build/tools/fed_loadgen" \
      --port-file-prefix="$tmp_dir/fed$brokers.port" --domains="$brokers" \
      --requests="$fedbench_requests" --audit=0 --json-out="$fed_json"
    kill -TERM "${member_pids[@]}"
    wait "${member_pids[@]}" 2>/dev/null || true
    fed_jsons+=("$fed_json")
  done
fi

# Stamp provenance into the context block so trajectory entries pasted into
# BENCH_bb_throughput.json stay attributable: the commit the numbers were
# measured at, and the core count they were measured on (num_cpus is
# already reported by Google Benchmark; ensure it survives even on builds
# that omit it). Merge the loadgen report while we are in here.
git_sha="$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)"
python3 - "$out" "$git_sha" "$loadgen_json" "$overload_json" \
  "${fed_jsons[@]:-}" <<'PY'
import json
import os
import sys

path, sha, loadgen_path, overload_path = sys.argv[1:5]
fed_paths = [p for p in sys.argv[5:] if p]
with open(path, encoding="utf-8") as fh:
    report = json.load(fh)
ctx = report.setdefault("context", {})
ctx["git_sha"] = sha
ctx.setdefault("num_cpus", os.cpu_count() or 1)
if loadgen_path:
    with open(loadgen_path, encoding="utf-8") as fh:
        report["server_loadgen"] = json.load(fh)
if overload_path:
    with open(overload_path, encoding="utf-8") as fh:
        report["server_overload"] = json.load(fh)
if fed_paths:
    broker_counts = []
    for fed_path in fed_paths:
        with open(fed_path, encoding="utf-8") as fh:
            broker_counts.append(json.load(fh))
    report["federation"] = {"broker_counts": broker_counts}
with open(path, "w", encoding="utf-8") as fh:
    json.dump(report, fh, indent=2)
    fh.write("\n")
PY

echo "wrote $out (git_sha=$git_sha)" >&2
