#!/usr/bin/env bash
# Run the admission-hot-path benchmark suite and emit Google Benchmark JSON.
#
# Usage:
#   bench/run_benchmarks.sh [output.json] [extra benchmark args...]
#
# Builds (if needed) and runs bench_bb_throughput with
# --benchmark_format=json. The checked-in trajectory lives in
# BENCH_bb_throughput.json at the repo root: a {"before": ..., "after": ...}
# pair of such runs bracketing the incremental-cache PR. To refresh the
# "after" side on a quiet machine:
#   bench/run_benchmarks.sh /tmp/after.json --benchmark_min_time=0.2
#
# NOTE: this container's Google Benchmark parses --benchmark_min_time as a
# plain double (no "s" suffix).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-bench_results/bb_throughput.json}"
shift || true

cmake -B "$repo_root/build" -S "$repo_root" >/dev/null
cmake --build "$repo_root/build" --target bench_bb_throughput -j >/dev/null

mkdir -p "$(dirname "$out")"
"$repo_root/build/bench/bench_bb_throughput" \
  --benchmark_format=json \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  "$@"

# Stamp provenance into the context block so trajectory entries pasted into
# BENCH_bb_throughput.json stay attributable: the commit the numbers were
# measured at, and the core count they were measured on (num_cpus is
# already reported by Google Benchmark; ensure it survives even on builds
# that omit it).
git_sha="$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)"
python3 - "$out" "$git_sha" <<'PY'
import json
import os
import sys

path, sha = sys.argv[1], sys.argv[2]
with open(path, encoding="utf-8") as fh:
    report = json.load(fh)
ctx = report.setdefault("context", {})
ctx["git_sha"] = sha
ctx.setdefault("num_cpus", os.cpu_count() or 1)
with open(path, "w", encoding="utf-8") as fh:
    json.dump(report, fh, indent=2)
    fh.write("\n")
PY

echo "wrote $out (git_sha=$git_sha)" >&2
