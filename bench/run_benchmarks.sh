#!/usr/bin/env bash
# Run the admission-hot-path benchmark suite and emit Google Benchmark JSON.
#
# Usage:
#   bench/run_benchmarks.sh [output.json] [extra benchmark args...]
#
# Builds (if needed) and runs bench_bb_throughput with
# --benchmark_format=json. The checked-in trajectory lives in
# BENCH_bb_throughput.json at the repo root: a {"before": ..., "after": ...}
# pair of such runs bracketing the incremental-cache PR. To refresh the
# "after" side on a quiet machine:
#   bench/run_benchmarks.sh /tmp/after.json --benchmark_min_time=0.2
#
# NOTE: this container's Google Benchmark parses --benchmark_min_time as a
# plain double (no "s" suffix).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-bench_results/bb_throughput.json}"
shift || true

cmake -B "$repo_root/build" -S "$repo_root" >/dev/null
cmake --build "$repo_root/build" --target bench_bb_throughput -j >/dev/null

mkdir -p "$(dirname "$out")"
"$repo_root/build/bench/bench_bb_throughput" \
  --benchmark_format=json \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  "$@"

echo "wrote $out" >&2
